"""Tests for race evidence records (HB witnesses, provenance, timelines)."""

from repro.core.hb.rules import ALL_RULES
from repro.explain import attach_evidence, build_race_evidence
from repro.obs import Instrumentation


def evidence_for(page_report):
    return attach_evidence(
        page_report.classified,
        page_report.trace,
        page_report.page.monitor.graph,
    )


class TestEvidenceStructure:
    def test_every_race_gets_a_record(self, page_report):
        records = evidence_for(page_report)
        assert len(records) == len(page_report.filtered_races) > 0
        for classified, record in zip(page_report.classified.races, records):
            assert classified.evidence is record
            assert record.race_type == classified.race_type
            assert record.harmful == classified.harmful
            assert record.reason == classified.reason

    def test_witness_paths_are_rule_labeled(self, backend_report):
        _backend, report = backend_report
        for record in evidence_for(report):
            assert record.nca is not None
            for side in (record.prior, record.current):
                assert side.path_from_nca, "racing op must descend from nca"
                for step in side.path_from_nca:
                    assert step["rule"] in ALL_RULES
                # The path really runs nca -> ... -> racing op.
                assert side.path_from_nca[0]["src"] == record.nca["op_id"]
                assert (
                    side.path_from_nca[-1]["dst"] == side.access["op_id"]
                )
                for first, second in zip(
                    side.path_from_nca, side.path_from_nca[1:]
                ):
                    assert first["dst"] == second["src"]

    def test_path_edges_exist_in_graph(self, page_report):
        graph = page_report.page.monitor.graph
        for record in evidence_for(page_report):
            for side in (record.prior, record.current):
                for step in side.path_from_nca:
                    assert graph.edge_rule(step["src"], step["dst"]) == step["rule"]

    def test_racing_pair_is_concurrent_not_ordered(self, page_report):
        graph = page_report.page.monitor.graph
        for record in evidence_for(page_report):
            a = record.prior.access["op_id"]
            b = record.current.access["op_id"]
            assert graph.concurrent(a, b)
            assert "can happen concurrently" in record.explanation

    def test_timeline_includes_both_racing_accesses(self, page_report):
        for record in evidence_for(page_report):
            for side in (record.prior, record.current):
                racing_seqs = {
                    entry["seq"]
                    for entry in side.timeline
                    if entry["racing"]
                }
                assert record.prior.access["seq"] in racing_seqs
                assert record.current.access["seq"] in racing_seqs
                seqs = [entry["seq"] for entry in side.timeline]
                assert seqs == sorted(seqs)

    def test_source_attribution_names_the_operation(self, page_report):
        trace = page_report.trace
        for record in evidence_for(page_report):
            for side in (record.prior, record.current):
                operation = trace.operation(side.access["op_id"])
                assert operation.describe() in side.source


def _normalized(value):
    """Erase volatile element-allocation counters (id_key tuples serialize as
    ["id", <alloc>, <name>]) so records from independent runs compare equal."""
    if isinstance(value, dict):
        return {key: _normalized(item) for key, item in value.items()}
    if isinstance(value, list):
        if (
            len(value) == 3
            and value[0] == "id"
            and isinstance(value[1], int)
        ):
            return ["id", "*", value[2]]
        return [_normalized(item) for item in value]
    return value


class TestBackendParity:
    def test_graph_and_chains_evidence_agree(self):
        from .conftest import check_page

        records = {}
        for backend in ("graph", "chains"):
            report = check_page(hb_backend=backend)
            records[backend] = [
                _normalized(record.to_dict())
                for record in evidence_for(report)
            ]
        assert records["graph"] == records["chains"]


class TestObsHook:
    def test_evidence_counts_reported(self, page_report):
        obs = Instrumentation()
        attach_evidence(
            page_report.classified,
            page_report.trace,
            page_report.page.monitor.graph,
            obs=obs,
        )
        totals = obs.counter_totals()
        assert totals["evidence.record"] == len(page_report.filtered_races)
        assert totals["evidence.path_edges"] > 0

    def test_null_sink_attaches_without_recording(self, page_report):
        records = attach_evidence(
            page_report.classified,
            page_report.trace,
            page_report.page.monitor.graph,
        )
        assert records


class TestJsonRoundTrip:
    def test_to_dict_is_json_serializable(self, page_report):
        import json

        for record in evidence_for(page_report):
            dumped = json.dumps(record.to_dict())
            assert record.fingerprint in dumped


class TestDisjointComponents:
    """A racing pair whose HB cones are disjoint (two independent root
    dispatches) must get a complete evidence record with an empty-prefix
    witness — nca None, empty paths — on every backend, never a raise."""

    @staticmethod
    def _disjoint_classified(backend):
        import pytest  # noqa: F401  (parametrize import kept local)

        from repro.core.access import READ, WRITE, Access
        from repro.core.detector import RaceDetector
        from repro.core.hb.backend import make_backend
        from repro.core.locations import VarLocation
        from repro.core.report import build_report
        from repro.core.trace import Trace

        trace = Trace()
        for _ in range(4):
            trace.operations.create("dispatch")
        hb = make_backend(backend)
        hb.add_edge(1, 2, "8:target-created-before-dispatch")
        hb.add_edge(3, 4, "8:target-created-before-dispatch")
        location = VarLocation(cell_id=1, name="x")
        detector = RaceDetector(hb)
        for access in (
            Access(kind=WRITE, op_id=2, location=location),
            Access(kind=READ, op_id=4, location=location),
        ):
            detector.on_access(trace.record(access))
        assert len(detector.races) == 1
        report = build_report(detector.races, trace)
        return report.races[0], trace, hb

    def test_empty_prefix_witness_on_every_backend(self):
        for backend in ("graph", "chains", "crosscheck", "shb"):
            classified, trace, hb = self._disjoint_classified(backend)
            record = build_race_evidence(classified, trace, hb)
            assert record.nca is None, backend
            assert record.common_ancestor_count == 0
            assert record.prior.path_from_nca == []
            assert record.current.path_from_nca == []
            assert "disjoint" in record.explanation

    def test_disjoint_record_serializes(self):
        import json

        classified, trace, hb = self._disjoint_classified("graph")
        record = build_race_evidence(classified, trace, hb)
        dumped = json.loads(json.dumps(record.to_dict()))
        assert dumped["nca"] is None
