"""Tests for the shipped report schema and its validator."""

import copy

import pytest

from repro.explain import build_report_document, validate_report
from repro.explain.schema import FORMAT_NAME, FORMAT_VERSION, REPORT_SCHEMA


@pytest.fixture(scope="module")
def document(page_report):
    return build_report_document([("racy.html", page_report)])


class TestDocumentValidates:
    def test_build_emits_valid_document(self, document):
        validate_report(document)  # must not raise

    def test_format_markers(self, document):
        assert document["format"] == FORMAT_NAME
        assert document["version"] == FORMAT_VERSION

    def test_totals_consistent(self, document):
        totals = document["totals"]
        assert totals["evidence_records"] == sum(
            len(page["evidence"]) for page in document["pages"]
        )
        assert totals["races"]["filtered"] == sum(
            page["races"]["filtered"] for page in document["pages"]
        )
        assert totals["distinct_fingerprints"] == len(document["clusters"])


class TestValidatorRejects:
    def test_missing_required_key(self, document):
        broken = copy.deepcopy(document)
        del broken["pages"]
        with pytest.raises(ValueError, match="pages"):
            validate_report(broken)

    def test_wrong_type(self, document):
        broken = copy.deepcopy(document)
        broken["totals"]["evidence_records"] = "three"
        with pytest.raises(ValueError, match="evidence_records"):
            validate_report(broken)

    def test_bool_is_not_an_integer(self, document):
        broken = copy.deepcopy(document)
        broken["totals"]["evidence_records"] = True
        with pytest.raises(ValueError, match="evidence_records"):
            validate_report(broken)

    def test_bad_enum_value(self, document):
        broken = copy.deepcopy(document)
        broken["mode"] = "nonsense"
        with pytest.raises(ValueError, match="mode"):
            validate_report(broken)

    def test_bad_evidence_entry(self, document):
        broken = copy.deepcopy(document)
        if not broken["pages"][0]["evidence"]:
            pytest.skip("page reported no races")
        del broken["pages"][0]["evidence"][0]["fingerprint"]
        with pytest.raises(ValueError, match="fingerprint"):
            validate_report(broken)

    def test_bad_witness_step(self, document):
        broken = copy.deepcopy(document)
        evidence = broken["pages"][0]["evidence"]
        if not evidence or not evidence[0]["prior"]["path_from_nca"]:
            pytest.skip("no witness path to corrupt")
        evidence[0]["prior"]["path_from_nca"][0]["src"] = "one"
        with pytest.raises(ValueError, match="src"):
            validate_report(broken)


class TestSchemaShape:
    def test_schema_is_self_consistent(self):
        """Every required key of every object schema has a property spec."""

        def walk(schema):
            if not isinstance(schema, dict):
                return
            properties = schema.get("properties", {})
            for key in schema.get("required", ()):
                assert key in properties, f"required {key!r} lacks a spec"
            for sub_schema in properties.values():
                walk(sub_schema)
            walk(schema.get("items"))

        walk(REPORT_SCHEMA)
