"""Tests for stable race fingerprints."""

from repro.core.access import READ, WRITE, Access
from repro.core.detector import READ_WRITE, WRITE_WRITE, Race
from repro.core.locations import (
    DomPropLocation,
    HandlerLocation,
    PropLocation,
    VarLocation,
    id_key,
)
from repro.core.operations import DISPATCH, EXE
from repro.core.trace import Trace
from repro.explain.fingerprint import location_token, race_fingerprint

from .conftest import check_page


def make_trace(labels):
    """A trace with one operation per (kind, label); returns (trace, ids)."""
    trace = Trace()
    ids = []
    for kind, label in labels:
        ids.append(trace.operations.create(kind, label).op_id)
    return trace, ids


def make_race(location, trace, op_a, op_b, kinds=(WRITE, WRITE)):
    prior = Access(kind=kinds[0], op_id=op_a, location=location)
    current = Access(kind=kinds[1], op_id=op_b, location=location)
    kind = WRITE_WRITE if kinds == (WRITE, WRITE) else READ_WRITE
    return Race(location=location, prior=prior, current=current, kind=kind)


class TestLocationToken:
    def test_var_token_drops_cell_id(self):
        assert location_token(VarLocation(3, "x")) == location_token(
            VarLocation(99, "x")
        )

    def test_prop_token_drops_object_id(self):
        assert location_token(PropLocation(1, "f")) == location_token(
            PropLocation(42, "f")
        )

    def test_dom_prop_token_keeps_id_and_tag(self):
        token = location_token(
            DomPropLocation(id_key(1, "search"), "value", tag="input")
        )
        assert "#search" in token and "value" in token and "input" in token

    def test_handler_token_names_event(self):
        token = location_token(HandlerLocation(id_key(1, "w"), "load"))
        assert "load" in token


class TestFingerprintStability:
    def test_op_ids_do_not_matter(self):
        """The same logical race reported at different operation ids (a
        different schedule) keeps its fingerprint."""
        labels = [(EXE, "exe(<script src=a.js>)"), (DISPATCH, "disp0(load, w)")]
        trace_a, ids_a = make_trace(labels)
        trace_b, ids_b = make_trace([(EXE, "pad"), (EXE, "pad")] + labels)
        location = VarLocation(5, "x")
        race_a = make_race(location, trace_a, *ids_a)
        race_b = make_race(VarLocation(17, "x"), trace_b, *ids_b[2:])
        assert race_fingerprint(race_a, trace_a) == race_fingerprint(
            race_b, trace_b
        )

    def test_prior_current_flip_keeps_fingerprint(self):
        labels = [(EXE, "exe(a)"), (EXE, "exe(b)")]
        trace, (op_a, op_b) = make_trace(labels)
        location = VarLocation(1, "x")
        forward = make_race(location, trace, op_a, op_b)
        flipped = make_race(location, trace, op_b, op_a)
        assert race_fingerprint(forward, trace) == race_fingerprint(
            flipped, trace
        )

    def test_different_location_changes_fingerprint(self):
        labels = [(EXE, "exe(a)"), (EXE, "exe(b)")]
        trace, ids = make_trace(labels)
        one = make_race(VarLocation(1, "x"), trace, *ids)
        other = make_race(VarLocation(1, "y"), trace, *ids)
        assert race_fingerprint(one, trace) != race_fingerprint(other, trace)

    def test_race_kind_changes_fingerprint(self):
        labels = [(EXE, "exe(a)"), (EXE, "exe(b)")]
        trace, ids = make_trace(labels)
        location = VarLocation(1, "x")
        ww = make_race(location, trace, *ids, kinds=(WRITE, WRITE))
        rw = make_race(location, trace, *ids, kinds=(READ, WRITE))
        assert race_fingerprint(ww, trace) != race_fingerprint(rw, trace)


class TestEndToEndStability:
    def test_identical_runs_produce_identical_fingerprints(self):
        reports = [check_page() for _ in range(2)]
        fingerprints = []
        for report in reports:
            fingerprints.append(sorted(
                race_fingerprint(race, report.trace)
                for race in report.filtered_races
            ))
        assert fingerprints[0] == fingerprints[1]
        assert fingerprints[0]  # the page does race

    def test_backends_produce_identical_fingerprints(self):
        per_backend = {}
        for backend in ("graph", "chains"):
            report = check_page(hb_backend=backend)
            per_backend[backend] = sorted(
                race_fingerprint(race, report.trace)
                for race in report.filtered_races
            )
        assert per_backend["graph"] == per_backend["chains"]
