"""Shared fixtures: one racy page checked once per HB backend."""

import pytest

from repro import WebRacer

#: The Fig. 2 + Fig. 5 page: a form race and an event-dispatch race.
PAGE_HTML = """
<input type="text" id="search" />
<iframe id="widget" src="widget.html"></iframe>
<script>
document.getElementById('widget').onload = function () { widgetReady = true; };
</script>
<script src="hint.js"></script>
"""

RESOURCES = {"hint.js": "document.getElementById('search').value = 'hint';"}


def check_page(hb_backend="graph", **kwargs):
    racer = WebRacer(seed=7, hb_backend=hb_backend, **kwargs)
    return racer.check_page(PAGE_HTML, resources=RESOURCES, url="racy.html")


@pytest.fixture(scope="module")
def page_report():
    return check_page()


@pytest.fixture(scope="module", params=["graph", "chains"])
def backend_report(request):
    return request.param, check_page(hb_backend=request.param)
