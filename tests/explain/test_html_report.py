"""Tests for the self-contained single-file HTML report."""

import html.parser
import re

import pytest

from repro.explain import build_report_document, render_html_report


@pytest.fixture(scope="module")
def rendered(page_report):
    document = build_report_document([("racy.html", page_report)])
    return document, render_html_report(document)


class _AttributeAudit(html.parser.HTMLParser):
    """Collects every attribute that could pull in an external asset."""

    def __init__(self):
        super().__init__()
        self.external = []

    def handle_starttag(self, tag, attrs):
        for name, value in attrs:
            if name in ("src", "href") and value is not None:
                self.external.append((tag, name, value))


class TestSelfContained:
    def test_no_external_references(self, rendered):
        _document, text = rendered
        audit = _AttributeAudit()
        audit.feed(text)
        assert audit.external == []

    def test_no_network_urls(self, rendered):
        _document, text = rendered
        # Escaped source labels may mention file names, but never a URL
        # scheme that a browser would fetch.
        assert not re.search(r"(https?:)?//[a-z0-9.-]+\.[a-z]{2,}/", text)

    def test_parses_as_html(self, rendered):
        _document, text = rendered
        parser = html.parser.HTMLParser()
        parser.feed(text)  # must not raise
        assert text.lstrip().lower().startswith("<!doctype html>")


class TestContent:
    def test_every_fingerprint_is_shown(self, rendered):
        document, text = rendered
        for page in document["pages"]:
            for evidence in page["evidence"]:
                assert evidence["fingerprint"] in text

    def test_rule_labels_are_shown(self, rendered):
        document, text = rendered
        for page in document["pages"]:
            for evidence in page["evidence"]:
                for side in (evidence["prior"], evidence["current"]):
                    for step in side["path_from_nca"]:
                        assert step["rule"] in text

    def test_timeline_svg_present(self, rendered):
        _document, text = rendered
        assert "<svg" in text

    def test_clusters_section_lists_counts(self, rendered):
        document, text = rendered
        assert document["clusters"]
        top = document["clusters"][0]
        assert top["fingerprint"] in text

    def test_markup_is_escaped(self, rendered):
        document, text = rendered
        # Operation labels contain <script ...>; they must never appear
        # unescaped in the rendered page.
        labels = [
            side["operation"]["label"]
            for page in document["pages"]
            for evidence in page["evidence"]
            for side in (evidence["prior"], evidence["current"])
        ]
        assert any("<" in label for label in labels)
        for label in labels:
            if "<" in label:
                assert label not in text
