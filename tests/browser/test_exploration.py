"""Tests for automatic exploration (Section 5.2.2)."""

from repro.browser.exploration import AUTO_EVENTS
from repro.browser.page import Browser


def run(html, auto=True, eager=False, **kwargs):
    browser = Browser(seed=0, **kwargs)
    page = browser.open(html)
    page.auto_explore = auto
    page.eager_explore = eager
    page.run()
    return page


def g(page, name):
    return page.interpreter.global_object.get_own(name)


class TestAutoDispatch:
    def test_paper_event_list(self):
        """The twelve event types from Section 5.2.2."""
        assert set(AUTO_EVENTS) == {
            "mouseover", "mousemove", "mouseout", "mouseup", "mousedown",
            "keydown", "keyup", "keypress", "change", "input", "focus", "blur",
        }

    def test_registered_handlers_dispatched(self):
        page = run(
            "<div id='d' onmouseover='hovered = 1;' onkeydown='keyed = 1;'></div>"
        )
        assert g(page, "hovered") == 1.0
        assert g(page, "keyed") == 1.0

    def test_unregistered_events_not_dispatched(self):
        page = run("<div id='d' onmouseover='x = 1;'></div>")
        mouseout = [
            op
            for op in page.trace.operations
            if op.meta.get("event") == "mouseout"
        ]
        assert mouseout == []

    def test_javascript_links_clicked(self):
        page = run("<a href='javascript:clicked = 1;'>go</a>")
        assert g(page, "clicked") == 1.0

    def test_plain_links_not_clicked(self):
        page = run("<a href='/normal'>go</a>")
        clicks = [
            op for op in page.trace.operations if op.meta.get("event") == "click"
        ]
        assert clicks == []

    def test_click_handlers_clicked(self):
        page = run("<button id='b' onclick='pressed = 1;'>ok</button>")
        assert g(page, "pressed") == 1.0

    def test_exploration_happens_after_load(self):
        """All automatically-dispatched events come after window load —
        'simplifying reasoning about WEBRACER's output'."""
        page = run("<div id='d' onmouseover='x = 1;'></div>")
        win_load_root = next(
            op.op_id
            for op in page.trace.operations
            if op.meta.get("event") == "load" and "window" in op.label
        )
        auto_roots = [
            op.op_id
            for op in page.trace.operations
            if op.meta.get("user") and op.meta.get("role") == "root"
        ]
        assert auto_roots
        assert all(op_id > win_load_root for op_id in auto_roots)

    def test_disabled_exploration_dispatches_nothing(self):
        page = run("<div onmouseover='x = 1;'></div>", auto=False)
        assert not page.interpreter.global_object.has_own("x")

    def test_handlers_in_frames_explored(self):
        page = run(
            "<iframe src='f.html'></iframe>",
            resources={"f.html": "<div onmouseover='inFrame = 1;'></div>"},
        )
        assert g(page, "inFrame") == 1.0


class TestTypingSimulation:
    def test_text_inputs_typed_into(self):
        page = run("<input type='text' id='f'>")
        field = page.document.get_element_by_id("f")
        assert field.value == "user input"

    def test_typing_marks_user_input(self):
        page = run("<input type='text' id='f'>")
        user_writes = [
            access
            for access in page.trace.accesses
            if access.detail.get("user_input")
        ]
        assert user_writes

    def test_textarea_typed_into(self):
        page = run("<textarea id='t'></textarea>")
        assert page.document.get_element_by_id("t").value == "user input"

    def test_hidden_inputs_not_typed(self):
        page = run("<input type='hidden' id='h'>")
        assert page.document.get_element_by_id("h").value == ""

    def test_buttons_not_typed(self):
        page = run("<input type='submit' id='s'>")
        assert page.document.get_element_by_id("s").value == ""

    def test_typing_triggers_input_handlers(self):
        page = run("<input type='text' id='f' oninput='sawInput = 1;'>")
        assert g(page, "sawInput") == 1.0


class TestEagerExploration:
    def test_eager_click_can_precede_later_parse(self):
        page = run(
            """
            <a id='l' href='javascript:sawLate = document.getElementById("late") != null;'>x</a>
            <div id='pad'></div>
            <div id='late'></div>
            """,
            eager=True,
        )
        # The eager click fired before #late was parsed at least once; the
        # post-load exploration click then saw it. Either way the page
        # recorded a read of #late that missed.
        misses = [
            access
            for access in page.trace.accesses
            if access.detail.get("found") is False
        ]
        assert misses

    def test_eager_typing_during_load(self):
        page = run(
            "<input type='text' id='f'><div></div><div></div>",
            eager=True,
            auto=False,
        )
        assert page.document.get_element_by_id("f").value == "user input"

    def test_dispatched_log(self):
        page = run("<div onmouseover='x=1;'></div>")
        assert any("mouseover" in entry for entry in page.explorer.dispatched)


class TestPlanDeterminism:
    HTML = """
    <a href='javascript:a = 1;'>one</a>
    <input type='text' id='q'>
    <div onmouseover='b = 1;' onclick='c = 1;'>hover</div>
    <iframe src='frame.html'></iframe>
    <textarea id='t'></textarea>
    """
    RESOURCES = {"frame.html": "<button onclick='d = 1;'>in frame</button>"}

    def test_plan_is_a_pure_function_of_the_dom(self):
        """Two runs that built the same DOM explore identically — the
        precondition for schedule record/replay over exploration runs."""
        pages = [
            run(self.HTML, resources=dict(self.RESOURCES)) for _ in range(2)
        ]
        plans = [
            [(action, repr(element)) for action, element in page.explorer.plan()]
            for page in pages
        ]
        assert plans[0] == plans[1]
        assert plans[0]  # non-vacuous: the page has interactions

    def test_dispatch_order_matches_plan(self):
        page = run(self.HTML, resources=dict(self.RESOURCES))
        planned = [
            f"{action}:{element!r}" for action, element in page.explorer.plan()
        ]
        assert page.explorer.dispatched == planned

    def test_dispatched_identical_across_runs(self):
        first = run(self.HTML, resources=dict(self.RESOURCES))
        second = run(self.HTML, resources=dict(self.RESOURCES))
        assert first.explorer.dispatched == second.explorer.dispatched
