"""Tests for the XMLHttpRequest simulation (rule 10)."""

from repro.browser.page import Browser


def load(html, **kwargs):
    return Browser(seed=0, **kwargs).load(html)


def g(page, name):
    return page.interpreter.global_object.get_own(name)


class TestBasicRequest:
    def test_successful_get(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'api.json');
            xr.onreadystatechange = function() {
              if (xr.readyState == 4) { body = xr.responseText; code = xr.status; }
            };
            xr.send();
            </script>
            """,
            resources={"api.json": '{"v": 1}'},
        )
        assert g(page, "body") == '{"v": 1}'
        assert g(page, "code") == 200.0

    def test_missing_resource_404(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'missing.json');
            xr.onreadystatechange = function() { code = xr.status; };
            xr.send();
            </script>
            """
        )
        assert g(page, "code") == 404.0

    def test_ready_state_progression(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            initial = xr.readyState;
            xr.open('GET', 'a.json');
            opened = xr.readyState;
            xr.onreadystatechange = function() { final = xr.readyState; };
            xr.send();
            </script>
            """,
            resources={"a.json": "x"},
        )
        assert g(page, "initial") == 0.0
        assert g(page, "opened") == 1.0
        assert g(page, "final") == 4.0

    def test_add_event_listener_variant(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'a.json');
            xr.addEventListener('readystatechange', function() { hit = xr.readyState; });
            xr.send();
            </script>
            """,
            resources={"a.json": "x"},
        )
        assert g(page, "hit") == 4.0


class TestRule10:
    def test_send_edge_exists(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'a.json');
            xr.onreadystatechange = function() { done = 1; };
            xr.send();
            </script>
            """,
            resources={"a.json": "x"},
        )
        edges = page.monitor.graph.edges_by_rule("10:send-before-readystatechange")
        assert edges
        # The sending operation happens before the handler execution.
        handler_ops = [
            op.op_id
            for op in page.trace.operations
            if op.kind == "dispatch"
            and op.meta.get("event") == "readystatechange"
            and op.meta.get("role") == "handler"
        ]
        exe_ops = [op.op_id for op in page.trace.operations if op.kind == "exe"]
        assert page.monitor.graph.happens_before(exe_ops[0], handler_ops[0])

    def test_late_handler_registration_races(self):
        """Registering onreadystatechange *after* send() races with the
        dispatch — an AJAX race (Section 8, the Zheng et al. class)."""
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'a.json');
            xr.send();
            setTimeout(function() {
              xr.onreadystatechange = function() { late = 1; };
            }, 30);
            </script>
            """,
            resources={"a.json": "x"},
            latencies={"a.json": 30.0},
        )
        races = [
            race
            for race in page.races
            if getattr(race.location, "event", "") == "readystatechange"
        ]
        assert races, "late handler registration must race with dispatch"


class TestXhrCrashes:
    def test_handler_crash_is_hidden(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'a.json');
            xr.onreadystatechange = function() { undefinedFn(); };
            xr.send();
            after = 1;
            </script>
            """,
            resources={"a.json": "x"},
        )
        assert g(page, "after") == 1.0
        assert any(crash.kind == "ReferenceError" for crash in page.trace.crashes)
        assert page.loaded()


class TestAbort:
    """Pin the abort() fix: an aborted request must go quiet."""

    def test_aborted_handler_never_fires(self):
        page = load(
            """
            <script>
            var fired = 0;
            var xr = new XMLHttpRequest();
            xr.open('GET', 'slow.json');
            xr.onreadystatechange = function() { fired = fired + 1; };
            xr.send();
            xr.abort();
            stateAfterAbort = xr.readyState;
            </script>
            """,
            resources={"slow.json": "body"},
        )
        assert g(page, "fired") == 0.0
        assert g(page, "stateAfterAbort") == 0.0

    def test_abort_before_send_is_harmless(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'a.json');
            xr.abort();
            state = xr.readyState;
            </script>
            """,
            resources={"a.json": "x"},
        )
        assert g(page, "state") == 0.0

    def test_abort_then_fresh_request_completes(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'first.json');
            xr.onreadystatechange = function() {
              if (xr.readyState == 4) { body = xr.responseText; }
            };
            xr.send();
            xr.abort();
            xr.open('GET', 'second.json');
            xr.send();
            </script>
            """,
            resources={"first.json": "FIRST", "second.json": "SECOND"},
        )
        assert g(page, "body") == "SECOND"

    def test_aborted_under_connection_model_too(self):
        page = load(
            """
            <script>
            var fired = 0;
            var xr = new XMLHttpRequest();
            xr.open('GET', 'slow.json');
            xr.onreadystatechange = function() { fired = fired + 1; };
            xr.send();
            xr.abort();
            </script>
            """,
            resources={"slow.json": "body"},
            network="connection",
        )
        assert g(page, "fired") == 0.0


class TestReuse:
    """Pin the open() reset fix: a reused XHR starts from a clean slate."""

    def test_open_resets_previous_response_state(self):
        page = load(
            """
            <script>
            var phase = 1;
            var xr = new XMLHttpRequest();
            xr.onreadystatechange = function() {
              if (xr.readyState != 4) { return; }
              if (phase == 1) {
                firstStatus = xr.status;
                firstBody = xr.responseText;
                phase = 2;
                xr.open('GET', 'missing.json');
                resetStatus = xr.status;
                resetBody = xr.responseText;
                xr.send();
              } else {
                secondStatus = xr.status;
              }
            };
            xr.open('GET', 'a.json');
            xr.send();
            </script>
            """,
            resources={"a.json": "PAYLOAD"},
        )
        assert g(page, "firstStatus") == 200.0
        assert g(page, "firstBody") == "PAYLOAD"
        # open() must wipe the previous request's response state...
        assert g(page, "resetStatus") == 0.0
        assert g(page, "resetBody") == ""
        # ...and the second request then reports its own outcome.
        assert g(page, "secondStatus") == 404.0

    def test_open_cancels_inflight_send(self):
        page = load(
            """
            <script>
            var bodies = '';
            var xr = new XMLHttpRequest();
            xr.onreadystatechange = function() {
              if (xr.readyState == 4) { bodies = bodies + xr.responseText; }
            };
            xr.open('GET', 'first.json');
            xr.send();
            xr.open('GET', 'second.json');
            xr.send();
            </script>
            """,
            resources={"first.json": "FIRST", "second.json": "SECOND"},
        )
        assert g(page, "bodies") == "SECOND"
