"""Tests for the network simulators (uniform and connection-level)."""

import random

import pytest

from repro.browser.event_loop import EventLoop
from repro.browser.network import (
    ConnectionNetworkSimulator,
    DEFAULT_JITTER,
    ERROR_BODY_SIZE,
    INITIAL_WINDOW,
    NetworkSimulator,
    _bytes_in,
    _transfer_time,
    make_network,
    origin_of,
)


def make(resources=None, **kwargs):
    loop = EventLoop()
    return loop, NetworkSimulator(loop, resources=resources or {}, **kwargs)


def make_conn(resources=None, **kwargs):
    loop = EventLoop()
    kwargs.setdefault("jitter", 0.0)  # deterministic timing unless asked
    return loop, ConnectionNetworkSimulator(
        loop, resources=resources or {}, **kwargs
    )


class TestFetch:
    def test_known_resource_completes_ok(self):
        loop, net = make({"a.js": "var x = 1;"})
        results = []
        net.fetch("a.js", results.append)
        loop.run()
        assert results[0].ok
        assert results[0].content == "var x = 1;"

    def test_unknown_resource_404(self):
        loop, net = make({})
        results = []
        net.fetch("missing.js", results.append)
        loop.run()
        assert not results[0].ok
        assert results[0].status == 404

    def test_completion_happens_after_latency(self):
        loop, net = make({"a.js": "x"}, latencies={"a.js": 33.0})
        times = []
        net.fetch("a.js", lambda result: times.append(loop.clock.now))
        loop.run()
        assert times == [33.0]

    def test_latency_override_beats_random(self):
        _loop, net = make({}, seed=1, latencies={"fast.js": 1.0})
        assert net.latency_for("fast.js") == 1.0

    def test_random_latency_within_bounds(self):
        _loop, net = make({}, seed=5, min_latency=10.0, max_latency=20.0)
        for _ in range(50):
            assert 10.0 <= net.latency_for("any.js") <= 20.0

    def test_seeded_latencies_reproducible(self):
        _loop1, net1 = make({}, seed=9)
        _loop2, net2 = make({}, seed=9)
        urls = [f"r{i}.js" for i in range(10)]
        assert [net1.latency_for(u) for u in urls] == [
            net2.latency_for(u) for u in urls
        ]

    def test_different_seeds_differ(self):
        _loop1, net1 = make({}, seed=1)
        _loop2, net2 = make({}, seed=2)
        urls = [f"r{i}.js" for i in range(10)]
        assert [net1.latency_for(u) for u in urls] != [
            net2.latency_for(u) for u in urls
        ]

    def test_degenerate_latency_range(self):
        _loop, net = make({}, min_latency=7.0, max_latency=7.0)
        assert net.latency_for("x") == 7.0

    def test_fetch_count(self):
        loop, net = make({"a": "1"})
        net.fetch("a", lambda result: None)
        net.fetch("a", lambda result: None)
        assert net.fetch_count == 2

    def test_add_resource_later(self):
        loop, net = make({})
        net.add_resource("late.js", "x")
        results = []
        net.fetch("late.js", results.append)
        loop.run()
        assert results[0].ok

    def test_cancelled_fetch_never_completes(self):
        loop, net = make({"a.js": "x"})
        results = []
        handle = net.fetch("a.js", results.append)
        handle.cancel()
        loop.run()
        assert results == []
        assert handle.cancelled

    def test_degenerate_range_still_consumes_rng_draw(self):
        """Pin the seed-stream fix: a degenerate ``[7, 7]`` range must burn
        exactly one RNG draw, so toggling the range for one URL cannot
        shift every subsequent latency of the run."""
        _loop, net = make({}, seed=11, min_latency=7.0, max_latency=7.0)
        assert net.latency_for("first") == 7.0
        net.min_latency, net.max_latency = 5.0, 120.0
        follow = net.latency_for("second")
        reference = random.Random(11)
        reference.uniform(7.0, 7.0)  # the degenerate draw
        assert follow == reference.uniform(5.0, 120.0)

    def test_pinned_latency_does_not_consume_rng(self):
        _loop, net = make({}, seed=11, latencies={"pin.js": 3.0})
        assert net.latency_for("pin.js") == 3.0
        assert net.latency_for("free.js") == random.Random(11).uniform(5.0, 120.0)


class TestOrigin:
    def test_scheme_host(self):
        assert origin_of("https://a.example/x/y.js") == "https://a.example"

    def test_host_only_no_path(self):
        assert origin_of("https://a.example") == "https://a.example"

    def test_relative_urls_share_empty_origin(self):
        assert origin_of("assets/app.js") == ""
        assert origin_of("other.js") == ""


class TestClosedForms:
    """The slow-start integrals: `_transfer_time` and `_bytes_in`."""

    def test_zero_size_is_instant(self):
        assert _transfer_time(0.0, INITIAL_WINDOW, 1500.0, 40.0) == 0.0

    def test_inverse_of_each_other(self):
        for size in (100.0, 14600.0, 80000.0, 1200000.0):
            for cwnd in (1000.0, INITIAL_WINDOW, 100000.0):
                time = _transfer_time(size, cwnd, 1500.0, 40.0)
                assert _bytes_in(time, cwnd, 1500.0, 40.0) == pytest.approx(
                    size, rel=1e-9
                )

    def test_warmer_window_is_faster(self):
        cold = _transfer_time(80000.0, INITIAL_WINDOW, 1500.0, 40.0)
        warm = _transfer_time(80000.0, 4 * INITIAL_WINDOW, 1500.0, 40.0)
        assert warm < cold

    def test_saturated_window_is_linear(self):
        share, rtt = 1500.0, 40.0
        cwnd = share * rtt  # at the rate cap already
        assert _transfer_time(30000.0, cwnd, share, rtt) == pytest.approx(
            30000.0 / share
        )

    def test_larger_share_never_slower(self):
        narrow = _transfer_time(500000.0, INITIAL_WINDOW, 750.0, 40.0)
        wide = _transfer_time(500000.0, INITIAL_WINDOW, 1500.0, 40.0)
        assert wide < narrow


class TestConnectionModel:
    def test_known_resource_completes_ok(self):
        loop, net = make_conn({"https://a.example/x.js": "var x = 1;"})
        results = []
        net.fetch("https://a.example/x.js", results.append)
        loop.run()
        assert results[0].ok
        assert results[0].content == "var x = 1;"
        assert loop.clock.now > 0  # transfers take virtual time

    def test_unknown_resource_404(self):
        loop, net = make_conn({})
        results = []
        net.fetch("https://a.example/missing.js", results.append)
        loop.run()
        assert not results[0].ok
        assert results[0].status == 404

    def test_pinned_size_beats_body_length(self):
        _loop, net = make_conn(
            {"https://a.example/x.js": "tiny"},
            sizes={"https://a.example/x.js": 5000.0},
        )
        result_ok = net.resources["https://a.example/x.js"]
        from repro.browser.network import FetchResult

        assert (
            net.size_for(
                "https://a.example/x.js",
                FetchResult(url="https://a.example/x.js", ok=True, content=result_ok),
            )
            == 5000.0
        )

    def test_error_body_size_for_404(self):
        from repro.browser.network import FetchResult

        _loop, net = make_conn({})
        missing = FetchResult(url="u", ok=False, content="", status=404)
        assert net.size_for("u", missing) == ERROR_BODY_SIZE

    def test_big_resource_arrives_after_small(self):
        loop, net = make_conn(
            {"https://a.example/small.js": "s", "https://b.example/big.js": "b"},
            sizes={
                "https://a.example/small.js": 1000.0,
                "https://b.example/big.js": 500000.0,
            },
        )
        order = []
        net.fetch("https://b.example/big.js", lambda r: order.append("big"))
        net.fetch("https://a.example/small.js", lambda r: order.append("small"))
        loop.run()
        assert order == ["small", "big"]

    def test_bandwidth_is_shared_across_transfers(self):
        def completion_time(concurrent):
            loop, net = make_conn(
                {"https://a.example/x.js": "x", "https://b.example/y.js": "y"},
                sizes={
                    "https://a.example/x.js": 200000.0,
                    "https://b.example/y.js": 200000.0,
                },
            )
            times = {}
            net.fetch(
                "https://a.example/x.js",
                lambda r: times.setdefault("x", loop.clock.now),
            )
            if concurrent:
                net.fetch("https://b.example/y.js", lambda r: None)
            loop.run()
            return times["x"]

        assert completion_time(concurrent=True) > completion_time(concurrent=False)

    def test_connection_cap_queues_excess_requests(self):
        loop, net = make_conn(
            {"https://a.example/1.js": "1", "https://a.example/2.js": "2"},
            sizes={
                "https://a.example/1.js": 50000.0,
                "https://a.example/2.js": 50000.0,
            },
            connections_per_origin=1,
        )
        order = []
        net.fetch("https://a.example/1.js", lambda r: order.append("1"))
        net.fetch("https://a.example/2.js", lambda r: order.append("2"))
        assert net.in_flight() == 1  # second request is queued, not active
        loop.run()
        assert order == ["1", "2"]
        pool = net.connections("https://a.example")
        assert len(pool) == 1
        assert pool[0].transfers_served == 2
        assert not pool[0].busy

    def test_warm_reused_connection_is_faster(self):
        loop, net = make_conn(
            {"https://a.example/1.js": "1", "https://a.example/2.js": "2"},
            sizes={
                "https://a.example/1.js": 100000.0,
                "https://a.example/2.js": 100000.0,
            },
            connections_per_origin=1,
        )
        times = []
        net.fetch("https://a.example/1.js", lambda r: times.append(loop.clock.now))
        net.fetch("https://a.example/2.js", lambda r: times.append(loop.clock.now))
        loop.run()
        first_duration = times[0]
        second_duration = times[1] - times[0]
        # Same bytes, but the reused connection skips the handshake RTT and
        # starts from the congestion window the first transfer grew.
        assert second_duration < first_duration

    def test_deterministic_for_a_seed(self):
        def run(seed):
            loop, net = make_conn(
                {"https://a.example/x.js": "x", "https://b.example/y.js": "y"},
                sizes={
                    "https://a.example/x.js": 30000.0,
                    "https://b.example/y.js": 70000.0,
                },
                seed=seed,
                jitter=DEFAULT_JITTER,
            )
            times = []
            net.fetch("https://a.example/x.js", lambda r: times.append(loop.clock.now))
            net.fetch("https://b.example/y.js", lambda r: times.append(loop.clock.now))
            loop.run()
            return times

        assert run(5) == run(5)
        assert run(1) != run(2)  # seeded jitter perturbs arrival times

    def test_cancel_frees_the_connection(self):
        loop, net = make_conn(
            {"https://a.example/x.js": "x"},
            sizes={"https://a.example/x.js": 500000.0},
        )
        results = []
        transfer = net.fetch("https://a.example/x.js", results.append)
        transfer.cancel()
        loop.run()
        assert results == []
        assert net.in_flight() == 0
        assert all(not c.busy for c in net.connections("https://a.example"))

    def test_cancel_promotes_the_queued_request(self):
        loop, net = make_conn(
            {"https://a.example/1.js": "1", "https://a.example/2.js": "2"},
            sizes={
                "https://a.example/1.js": 500000.0,
                "https://a.example/2.js": 1000.0,
            },
            connections_per_origin=1,
        )
        order = []
        first = net.fetch("https://a.example/1.js", lambda r: order.append("1"))
        net.fetch("https://a.example/2.js", lambda r: order.append("2"))
        first.cancel()
        assert net.in_flight() == 1  # the queued request took the connection
        loop.run()
        assert order == ["2"]

    def test_cancel_is_idempotent(self):
        loop, net = make_conn({"https://a.example/x.js": "x"})
        transfer = net.fetch("https://a.example/x.js", lambda r: None)
        transfer.cancel()
        transfer.cancel()
        loop.run()
        assert transfer.cancelled

    def test_bytes_delivered_accounting(self):
        loop, net = make_conn(
            {"https://a.example/x.js": "x"},
            sizes={"https://a.example/x.js": 12345.0},
        )
        net.fetch("https://a.example/x.js", lambda r: None)
        loop.run()
        assert net.bytes_delivered == 12345.0
        assert net.fetch_count == 1

    def test_constructor_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            ConnectionNetworkSimulator(loop, bandwidth=0)
        with pytest.raises(ValueError):
            ConnectionNetworkSimulator(loop, rtt=-1)
        with pytest.raises(ValueError):
            ConnectionNetworkSimulator(loop, connections_per_origin=0)


class TestMakeNetwork:
    def test_uniform_by_default(self):
        loop = EventLoop()
        assert isinstance(make_network(loop), NetworkSimulator)

    def test_connection_model(self):
        loop = EventLoop()
        net = make_network(
            loop,
            model="connection",
            sizes={"a": 10.0},
            bandwidth=500.0,
            rtt=20.0,
            connections_per_origin=2,
        )
        assert isinstance(net, ConnectionNetworkSimulator)
        assert net.bandwidth == 500.0
        assert net.rtt == 20.0
        assert net.connections_per_origin == 2

    def test_connection_defaults_for_none(self):
        from repro.browser.network import (
            DEFAULT_BANDWIDTH,
            DEFAULT_CONNECTIONS_PER_ORIGIN,
            DEFAULT_RTT,
        )

        net = make_network(EventLoop(), model="connection")
        assert net.bandwidth == DEFAULT_BANDWIDTH
        assert net.rtt == DEFAULT_RTT
        assert net.connections_per_origin == DEFAULT_CONNECTIONS_PER_ORIGIN

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown network model"):
            make_network(EventLoop(), model="carrier-pigeon")
