"""Tests for the network simulator."""

from repro.browser.event_loop import EventLoop
from repro.browser.network import NetworkSimulator


def make(resources=None, **kwargs):
    loop = EventLoop()
    return loop, NetworkSimulator(loop, resources=resources or {}, **kwargs)


class TestFetch:
    def test_known_resource_completes_ok(self):
        loop, net = make({"a.js": "var x = 1;"})
        results = []
        net.fetch("a.js", results.append)
        loop.run()
        assert results[0].ok
        assert results[0].content == "var x = 1;"

    def test_unknown_resource_404(self):
        loop, net = make({})
        results = []
        net.fetch("missing.js", results.append)
        loop.run()
        assert not results[0].ok
        assert results[0].status == 404

    def test_completion_happens_after_latency(self):
        loop, net = make({"a.js": "x"}, latencies={"a.js": 33.0})
        times = []
        net.fetch("a.js", lambda result: times.append(loop.clock.now))
        loop.run()
        assert times == [33.0]

    def test_latency_override_beats_random(self):
        _loop, net = make({}, seed=1, latencies={"fast.js": 1.0})
        assert net.latency_for("fast.js") == 1.0

    def test_random_latency_within_bounds(self):
        _loop, net = make({}, seed=5, min_latency=10.0, max_latency=20.0)
        for _ in range(50):
            assert 10.0 <= net.latency_for("any.js") <= 20.0

    def test_seeded_latencies_reproducible(self):
        _loop1, net1 = make({}, seed=9)
        _loop2, net2 = make({}, seed=9)
        urls = [f"r{i}.js" for i in range(10)]
        assert [net1.latency_for(u) for u in urls] == [
            net2.latency_for(u) for u in urls
        ]

    def test_different_seeds_differ(self):
        _loop1, net1 = make({}, seed=1)
        _loop2, net2 = make({}, seed=2)
        urls = [f"r{i}.js" for i in range(10)]
        assert [net1.latency_for(u) for u in urls] != [
            net2.latency_for(u) for u in urls
        ]

    def test_degenerate_latency_range(self):
        _loop, net = make({}, min_latency=7.0, max_latency=7.0)
        assert net.latency_for("x") == 7.0

    def test_fetch_count(self):
        loop, net = make({"a": "1"})
        net.fetch("a", lambda result: None)
        net.fetch("a", lambda result: None)
        assert net.fetch_count == 2

    def test_add_resource_later(self):
        loop, net = make({})
        net.add_resource("late.js", "x")
        results = []
        net.fetch("late.js", results.append)
        loop.run()
        assert results[0].ok
