"""Tests for schedule record/replay (ScheduleTrace and friends)."""

import pytest

from repro.browser.event_loop import EventLoop, ScheduleDivergence
from repro.browser.page import Browser
from repro.browser.scheduler import (
    DivergenceScheduler,
    FifoScheduler,
    RecordingScheduler,
    ReplayScheduler,
    ScheduleTrace,
    SeededRandomScheduler,
    derive_page_seed,
)

INF = float("inf")


def run_loop(scheduler, tasks=6):
    """Drain a loop of `tasks` simultaneous tasks; returns execution order."""
    loop = EventLoop(scheduler=scheduler, tie_window=INF)
    order = []
    for index in range(tasks):
        loop.post(
            lambda index=index: order.append(index),
            delay=float(index % 3),
            kind="timer" if index % 2 else "task",
            label=f"t{index}",
        )
    loop.run()
    return order


class TestScheduleTrace:
    def test_dict_round_trip(self):
        trace = ScheduleTrace(
            policy="random", seed=7, page="p.html", tie_window=INF,
            picks=[0, 2, 1], divergences=[1],
        )
        again = ScheduleTrace.from_dict(trace.to_dict())
        assert again == trace
        assert again.tie_window == INF

    def test_json_round_trip(self):
        trace = ScheduleTrace(picks=[3, 1], divergences=[0], tie_window=0.5)
        assert ScheduleTrace.from_json(trace.to_json()) == trace

    def test_save_load(self, tmp_path):
        trace = ScheduleTrace(policy="fifo", picks=[0, 1, 2])
        path = str(tmp_path / "trace.json")
        trace.save(path)
        assert ScheduleTrace.load(path) == trace

    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="not a schedule trace"):
            ScheduleTrace.from_dict({"format": "something-else", "version": 1})

    def test_rejects_unknown_version(self):
        payload = ScheduleTrace().to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            ScheduleTrace.from_dict(payload)


class TestRecordingScheduler:
    def test_records_every_pick(self):
        recorder = RecordingScheduler(FifoScheduler())
        order = run_loop(recorder)
        # tie_window=inf offers every pending task; FIFO picks enqueue order.
        assert order == [0, 1, 2, 3, 4, 5]
        assert len(recorder.picks) == 6
        assert recorder.divergences == []  # FIFO never diverges from FIFO

    def test_records_divergences_of_random_policy(self):
        recorder = RecordingScheduler(SeededRandomScheduler(3))
        run_loop(recorder)
        # Any non-FIFO pick among >1 candidates must be indexed.
        assert recorder.divergences
        for index in recorder.divergences:
            assert 0 <= index < len(recorder.picks)

    def test_trace_packaging(self):
        recorder = RecordingScheduler(SeededRandomScheduler(5))
        run_loop(recorder)
        trace = recorder.trace(policy="random", seed=5, page="x", tie_window=INF)
        assert trace.picks == recorder.picks
        assert trace.divergences == recorder.divergences
        assert (trace.policy, trace.seed, trace.page) == ("random", 5, "x")

    def test_recording_is_pure_observation(self):
        assert run_loop(RecordingScheduler(SeededRandomScheduler(9))) == run_loop(
            SeededRandomScheduler(9)
        )


class TestReplayScheduler:
    @pytest.mark.parametrize("seed", range(6))
    def test_replay_reproduces_loop_order(self, seed):
        recorder = RecordingScheduler(SeededRandomScheduler(seed))
        original = run_loop(recorder)
        replayed = run_loop(ReplayScheduler(recorder.trace()))
        assert replayed == original

    def test_exhausted_trace_diverges(self):
        recorder = RecordingScheduler(FifoScheduler())
        run_loop(recorder)
        trace = recorder.trace()
        trace.picks = trace.picks[:3]
        with pytest.raises(ScheduleDivergence, match="exhausted"):
            run_loop(ReplayScheduler(trace))

    def test_unknown_seq_diverges(self):
        recorder = RecordingScheduler(FifoScheduler())
        run_loop(recorder)
        trace = recorder.trace()
        trace.picks[0] = 99
        with pytest.raises(ScheduleDivergence, match="seq 99"):
            run_loop(ReplayScheduler(trace))


class TestDivergenceScheduler:
    def test_full_keep_reproduces_recorded_order(self):
        recorder = RecordingScheduler(SeededRandomScheduler(4))
        original = run_loop(recorder)
        trace = recorder.trace()
        assert run_loop(DivergenceScheduler(trace, trace.divergences)) == original

    def test_empty_keep_is_fifo(self):
        recorder = RecordingScheduler(SeededRandomScheduler(4))
        run_loop(recorder)
        assert run_loop(DivergenceScheduler(recorder.trace(), [])) == run_loop(
            FifoScheduler()
        )

    def test_applied_tracks_bound_divergences(self):
        recorder = RecordingScheduler(SeededRandomScheduler(4))
        run_loop(recorder)
        trace = recorder.trace()
        scheduler = DivergenceScheduler(trace, trace.divergences)
        run_loop(scheduler)
        assert scheduler.applied == trace.divergences


class TestPerPageDerivation:
    def test_for_page_is_position_independent(self):
        base = SeededRandomScheduler(11)
        # Consuming randomness on one page must not change the next page's
        # scheduler (the bug: one shared random.Random across pages).
        first = base.for_page(0)
        run_loop(first)
        again = SeededRandomScheduler(11).for_page(1)
        assert run_loop(base.for_page(1)) == run_loop(again)

    def test_derive_page_seed_distinct(self):
        seeds = {derive_page_seed(0, index) for index in range(100)}
        assert len(seeds) == 100

    def test_stateless_policies_return_self(self):
        scheduler = FifoScheduler()
        assert scheduler.for_page(3) is scheduler


# ----------------------------------------------------------------------
# browser-level replay: identical op stream, races and fingerprints


PAGE_HTML = """<html><body>
<div id="status">loading</div>
<input type="text" id="q" />
<script>
var inited = 0;
var poll = setInterval('if (window.libReady) { clearInterval(poll); initWidget(); }', 4);
</script>
<script src="lib.js" async></script>
<script src="boot.js"></script>
</body></html>"""

PAGE_RESOURCES = {
    "lib.js": (
        "function initWidget() { inited = inited + 1; "
        "document.getElementById('status').innerHTML = 'ready'; }\n"
        "window.libReady = true;\n"
    ),
    "boot.js": (
        "initWidget();\n"
        "document.getElementById('status').innerHTML = 'booted';\n"
        "inited = 100;\n"
    ),
}


def run_page(scheduler):
    """One exploration-configured page run; returns comparable artifacts."""
    from repro.explain.fingerprint import race_fingerprint

    browser = Browser(
        seed=0, scheduler=scheduler, resources=dict(PAGE_RESOURCES),
        tie_window=INF,
    )
    page = browser.open(PAGE_HTML, url="page.html")
    page.auto_explore = True
    page.run()
    ops = [
        (op.kind, op.label)
        for op in page.trace.operations.operations.values()
    ]
    fingerprints = sorted(
        {race_fingerprint(race, page.trace) for race in page.races}
    )
    return ops, len(page.trace.accesses), fingerprints


class TestBrowserReplay:
    @pytest.mark.parametrize("seed", range(5))
    def test_replay_reproduces_run_exactly(self, seed):
        """The property the tentpole rests on: a recorded schedule replays
        to the identical operation stream, access count, races and
        fingerprints — for arbitrary random schedules."""
        recorder = RecordingScheduler(SeededRandomScheduler(seed))
        browser = Browser(
            seed=0, scheduler=recorder, resources=dict(PAGE_RESOURCES),
            tie_window=INF,
        )
        page = browser.open(PAGE_HTML, url="page.html")
        page.auto_explore = True
        page.run()
        from repro.explain.fingerprint import race_fingerprint

        original = (
            [(op.kind, op.label) for op in page.trace.operations.operations.values()],
            len(page.trace.accesses),
            sorted({race_fingerprint(race, page.trace) for race in page.races}),
        )
        trace = recorder.trace(policy="random", seed=seed, tie_window=INF)
        assert run_page(ReplayScheduler(trace)) == original

    def test_different_seeds_really_explore(self):
        """Sanity: the matrix is not vacuous — some pair of seeds yields
        different interleavings on the polling page."""
        streams = {tuple(run_page(SeededRandomScheduler(seed))[0]) for seed in range(4)}
        assert len(streams) > 1
