"""Tests for systematic schedule enumeration."""

import pytest

from repro.browser.enumerate import (
    DecisionPrefixScheduler,
    ScheduleEnumerator,
    enumerate_page_schedules,
)
from repro.browser.event_loop import EventLoop, Task


def make_task(seq, label):
    return Task(action=lambda: None, ready_time=0.0, label=label, seq=seq)


class TestDecisionPrefixScheduler:
    def test_single_candidate_not_logged(self):
        scheduler = DecisionPrefixScheduler()
        task = make_task(0, "only")
        assert scheduler.pick([task]) is task
        assert scheduler.log == []

    def test_fifo_fallback(self):
        scheduler = DecisionPrefixScheduler()
        tasks = [make_task(1, "b"), make_task(0, "a")]
        assert scheduler.pick(tasks).label == "a"
        assert scheduler.log == [(0, 2)]

    def test_follows_decisions(self):
        scheduler = DecisionPrefixScheduler([1])
        tasks = [make_task(0, "a"), make_task(1, "b")]
        assert scheduler.pick(tasks).label == "b"

    def test_out_of_range_decision_clamped(self):
        scheduler = DecisionPrefixScheduler([9])
        tasks = [make_task(0, "a"), make_task(1, "b")]
        assert scheduler.pick(tasks).label == "b"


class TestEnumeratorMechanics:
    def test_deterministic_run_is_single_schedule(self):
        """No branching points -> exactly one schedule explored."""

        def run(scheduler):
            loop = EventLoop(scheduler=scheduler)
            order = []
            loop.post(lambda: order.append(1), delay=1)
            loop.post(lambda: order.append(2), delay=2)
            loop.run()
            return tuple(order)

        enumerator = ScheduleEnumerator(run)
        outcomes = enumerator.explore()
        assert len(outcomes) == 1
        assert enumerator.exhausted

    def test_two_way_tie_gives_two_schedules(self):
        def run(scheduler):
            loop = EventLoop(scheduler=scheduler)
            order = []
            loop.post(lambda: order.append("a"), delay=1)
            loop.post(lambda: order.append("b"), delay=1)
            loop.run()
            return tuple(order)

        enumerator = ScheduleEnumerator(run)
        outcomes = enumerator.explore()
        results = {outcome.result for outcome in outcomes}
        assert results == {("a", "b"), ("b", "a")}

    def test_three_way_tie_gives_six_schedules(self):
        def run(scheduler):
            loop = EventLoop(scheduler=scheduler)
            order = []
            for name in ("a", "b", "c"):
                loop.post(lambda n=name: order.append(n), delay=1)
            loop.run()
            return tuple(order)

        enumerator = ScheduleEnumerator(run, max_runs=100)
        outcomes = enumerator.explore()
        assert len({outcome.result for outcome in outcomes}) == 6
        assert enumerator.exhausted

    def test_budget_respected(self):
        def run(scheduler):
            loop = EventLoop(scheduler=scheduler)
            for index in range(6):
                loop.post(lambda: None, delay=1)
            loop.run()
            return None

        enumerator = ScheduleEnumerator(run, max_runs=10)
        outcomes = enumerator.explore()
        assert len(outcomes) <= 10
        assert not enumerator.exhausted

    def test_histogram(self):
        def run(scheduler):
            loop = EventLoop(scheduler=scheduler)
            order = []
            loop.post(lambda: order.append("a"), delay=1)
            loop.post(lambda: order.append("b"), delay=1)
            loop.run()
            return order[0]

        enumerator = ScheduleEnumerator(run)
        enumerator.explore()
        histogram = enumerator.distinct_results()
        assert set(histogram) == {"a", "b"}


class TestPageEnumeration:
    def test_fig4_crash_found_exhaustively(self):
        """Some interleaving of the Fig. 4 page crashes; enumeration finds
        it without seed luck."""
        enumerator = enumerate_page_schedules(
            """
            <iframe id="i" src="sub.html" onload="setTimeout('doNextStep()', 6)"></iframe>
            <script src="steps.js"></script>
            """,
            resources={
                "sub.html": "<div></div>",
                "steps.js": "function doNextStep() { window.stepDone = true; }",
            },
            latencies={"sub.html": 5.0, "steps.js": 7.0},
            extract=lambda page: tuple(
                sorted({crash.kind for crash in page.trace.crashes})
            ),
            max_runs=60,
        )
        results = set(enumerator.distinct_results())
        assert ("ReferenceError",) in results, results
        assert () in results  # and some schedules pass

    def test_race_free_page_has_one_outcome(self):
        enumerator = enumerate_page_schedules(
            "<div></div><script>x = 1;</script><p></p>",
            max_runs=30,
        )
        assert len(enumerator.distinct_results()) == 1
