"""Tests for stopPropagation / preventDefault / stopImmediatePropagation."""

from repro.browser.page import Browser


def load(html, **kwargs):
    return Browser(seed=0, **kwargs).load(html)


def g(page, name):
    return page.interpreter.global_object.get_own(name)


class TestStopPropagation:
    def test_stops_bubbling_to_ancestors(self):
        page = load(
            """
            <div id='outer'><div id='inner'></div></div>
            <script>
            var outer = document.getElementById('outer');
            var inner = document.getElementById('inner');
            inner.addEventListener('click', function(e) { innerRan = 1; e.stopPropagation(); });
            outer.addEventListener('click', function() { outerRan = 1; });
            inner.click();
            </script>
            """
        )
        assert g(page, "innerRan") == 1.0
        assert not page.interpreter.global_object.has_own("outerRan")

    def test_same_target_handlers_still_run(self):
        page = load(
            """
            <div id='t'></div>
            <script>
            var t = document.getElementById('t');
            t.addEventListener('click', function(e) { first = 1; e.stopPropagation(); });
            t.addEventListener('click', function() { second = 1; });
            t.click();
            </script>
            """
        )
        assert g(page, "first") == 1.0
        assert g(page, "second") == 1.0

    def test_stop_immediate_stops_everything(self):
        page = load(
            """
            <div id='t'></div>
            <script>
            var t = document.getElementById('t');
            t.addEventListener('click', function(e) { first = 1; e.stopImmediatePropagation(); });
            t.addEventListener('click', function() { second = 1; });
            t.click();
            </script>
            """
        )
        assert g(page, "first") == 1.0
        assert not page.interpreter.global_object.has_own("second")

    def test_without_stop_bubbles_normally(self):
        page = load(
            """
            <div id='outer'><div id='inner'></div></div>
            <script>
            var outer = document.getElementById('outer');
            var inner = document.getElementById('inner');
            inner.addEventListener('click', function() { innerRan = 1; });
            outer.addEventListener('click', function() { outerRan = 1; });
            inner.click();
            </script>
            """
        )
        assert g(page, "innerRan") == 1.0
        assert g(page, "outerRan") == 1.0


class TestPreventDefault:
    def test_prevents_javascript_href(self):
        page = load(
            """
            <a id='l' href='javascript:followed = 1;'>go</a>
            <script>
            var l = document.getElementById('l');
            l.addEventListener('click', function(e) { e.preventDefault(); handled = 1; });
            l.click();
            </script>
            """
        )
        assert g(page, "handled") == 1.0
        assert not page.interpreter.global_object.has_own("followed")

    def test_default_runs_without_prevent(self):
        page = load(
            """
            <a id='l' href='javascript:followed = 1;'>go</a>
            <script>
            var l = document.getElementById('l');
            l.addEventListener('click', function() { handled = 1; });
            l.click();
            </script>
            """
        )
        assert g(page, "handled") == 1.0
        assert g(page, "followed") == 1.0

    def test_default_prevented_property(self):
        page = load(
            """
            <a id='l' href='javascript:x = 1;'>go</a>
            <script>
            var l = document.getElementById('l');
            l.addEventListener('click', function(e) {
              before = e.defaultPrevented;
              e.preventDefault();
              after = e.defaultPrevented;
            });
            l.click();
            </script>
            """
        )
        assert g(page, "before") is False
        assert g(page, "after") is True

    def test_prevent_in_one_dispatch_does_not_leak(self):
        """Each dispatch gets a fresh event object."""
        page = load(
            """
            <a id='l' href='javascript:follows = (typeof follows == "undefined") ? 1 : follows + 1;'>go</a>
            <script>
            var l = document.getElementById('l');
            var once = false;
            l.addEventListener('click', function(e) {
              if (!once) { once = true; e.preventDefault(); }
            });
            l.click();
            l.click();
            </script>
            """
        )
        assert g(page, "follows") == 1.0
