"""Tests for the JS <-> DOM bindings (host objects)."""

import pytest

from repro.browser.page import Browser
from repro.core.locations import DomPropLocation, HandlerLocation


def load(html, **kwargs):
    return Browser(seed=0, **kwargs).load(html)


def g(page, name):
    return page.interpreter.global_object.get_own(name)


class TestElementProperties:
    def test_value_read_write(self):
        page = load(
            "<input id='f' value='seed'>"
            "<script>before = document.getElementById('f').value;"
            "document.getElementById('f').value = 'new';"
            "after = document.getElementById('f').value;</script>"
        )
        assert g(page, "before") == "seed"
        assert g(page, "after") == "new"

    def test_checked(self):
        page = load(
            "<input id='c' type='checkbox'>"
            "<script>var c = document.getElementById('c');"
            "was = c.checked; c.checked = true; now = c.checked;</script>"
        )
        assert g(page, "was") is False
        assert g(page, "now") is True

    def test_tag_name_and_id(self):
        page = load(
            "<div id='d'></div>"
            "<script>var d = document.getElementById('d');"
            "t = d.tagName; i = d.id;</script>"
        )
        assert g(page, "t") == "DIV"
        assert g(page, "i") == "d"

    def test_class_name(self):
        page = load(
            "<div id='d' class='a b'></div>"
            "<script>var d = document.getElementById('d');"
            "before = d.className; d.className = 'c'; after = d.className;</script>"
        )
        assert g(page, "before") == "a b"
        assert g(page, "after") == "c"

    def test_parent_and_children(self):
        page = load(
            "<div id='p'><span id='c1'></span><span id='c2'></span></div>"
            "<script>var p = document.getElementById('p');"
            "n = p.childNodes.length;"
            "firstTag = p.firstChild.tagName;"
            "parentOfChild = document.getElementById('c1').parentNode.id;</script>"
        )
        assert g(page, "n") == 2.0
        assert g(page, "firstTag") == "SPAN"
        assert g(page, "parentOfChild") == "p"

    def test_parent_of_detached_is_null(self):
        page = load(
            "<script>var e = document.createElement('div');"
            "isNull = e.parentNode == null;</script>"
        )
        assert g(page, "isNull") is True

    def test_style_object(self):
        page = load(
            "<div id='d' style='display:none'></div>"
            "<script>var d = document.getElementById('d');"
            "before = d.style.display; d.style.display = 'block';"
            "after = d.style.display;"
            "d.style.backgroundColor = 'red';</script>"
        )
        assert g(page, "before") == "none"
        assert g(page, "after") == "block"
        element = page.document.get_element_by_id("d")
        assert element.style["background-color"] == "red"

    def test_expando_properties(self):
        page = load(
            "<div id='d'></div>"
            "<script>var d = document.getElementById('d');"
            "d.customData = 42; got = d.customData;</script>"
        )
        assert g(page, "got") == 42.0

    def test_get_set_attribute(self):
        page = load(
            "<div id='d'></div>"
            "<script>var d = document.getElementById('d');"
            "d.setAttribute('data-x', '7');"
            "got = d.getAttribute('data-x');"
            "missing = d.getAttribute('nope');"
            "has = d.hasAttribute('data-x');"
            "d.removeAttribute('data-x');"
            "gone = d.hasAttribute('data-x');</script>"
        )
        assert g(page, "got") == "7"
        assert g(page, "missing") is not None  # NULL, not undefined
        assert g(page, "has") is True
        assert g(page, "gone") is False

    def test_binding_identity_stable(self):
        page = load(
            "<div id='d'></div>"
            "<script>same = document.getElementById('d') === document.getElementById('d');</script>"
        )
        assert g(page, "same") is True

    def test_scoped_get_elements_by_tag_name(self):
        page = load(
            "<div id='scope'><em></em><em></em></div><em></em>"
            "<script>n = document.getElementById('scope').getElementsByTagName('em').length;"
            "total = document.getElementsByTagName('em').length;</script>"
        )
        assert g(page, "n") == 2.0
        assert g(page, "total") == 3.0


class TestHandlerInstrumentation:
    def test_onclick_write_is_eloc_access(self):
        page = load(
            "<div id='d'></div>"
            "<script>document.getElementById('d').onclick = function() {};</script>"
        )
        writes = [
            access
            for access in page.trace.accesses
            if isinstance(access.location, HandlerLocation)
            and access.location.event == "click"
            and access.is_write
        ]
        assert writes

    def test_onclick_read_is_eloc_access(self):
        page = load(
            "<div id='d' onclick='x = 1;'></div>"
            "<script>h = document.getElementById('d').onclick;</script>"
        )
        reads = [
            access
            for access in page.trace.accesses
            if isinstance(access.location, HandlerLocation)
            and access.location.event == "click"
            and access.is_read
        ]
        assert reads

    def test_null_assignment_is_removal(self):
        page = load(
            "<div id='d' onclick='x = 1;'></div>"
            "<script>document.getElementById('d').onclick = null;</script>"
        )
        element = page.document.get_element_by_id("d")
        assert not element.has_any_handler("click")
        removals = [
            access
            for access in page.trace.accesses
            if isinstance(access.location, HandlerLocation)
            and access.detail.get("removal")
        ]
        assert removals

    def test_add_and_remove_event_listener(self):
        page = load(
            """
            <div id='d'></div>
            <script>
            var d = document.getElementById('d');
            var h = function() { hit = 1; };
            d.addEventListener('click', h);
            d.removeEventListener('click', h);
            d.click();
            </script>
            """
        )
        assert not page.interpreter.global_object.has_own("hit")

    def test_value_write_is_dom_prop_access(self):
        page = load(
            "<input id='f'>"
            "<script>document.getElementById('f').value = 'x';</script>"
        )
        writes = [
            access
            for access in page.trace.accesses
            if isinstance(access.location, DomPropLocation)
            and access.location.name == "value"
            and access.is_write
        ]
        assert writes
        assert writes[0].location.is_form_field_value


class TestDocumentBinding:
    def test_body_and_document_element(self):
        page = load(
            "<script>bodyTag = document.body.tagName;"
            "rootTag = document.documentElement.tagName;</script>"
        )
        assert g(page, "bodyTag") == "BODY"
        assert g(page, "rootTag") == "HTML"

    def test_collections(self):
        page = load(
            "<img src='a.png'><form id='f'></form>"
            "<script>ni = document.images.length; nf = document.forms.length;</script>",
            resources={"a.png": "b"},
        )
        assert g(page, "ni") == 1.0
        assert g(page, "nf") == 1.0

    def test_get_elements_by_name(self):
        page = load(
            "<input name='q'><input name='q'>"
            "<script>n = document.getElementsByName('q').length;</script>"
        )
        assert g(page, "n") == 2.0

    def test_cookie_roundtrip(self):
        page = load(
            "<script>document.cookie = 'k=v'; got = document.cookie;</script>"
        )
        assert g(page, "got") == "k=v"

    def test_ready_state(self):
        page = load(
            "<script>during = document.readyState;</script>"
        )
        assert g(page, "during") == "loading"
        assert page.document.dcl_fired

    def test_document_write_appends(self):
        page = load(
            "<script>document.write('<div id=written></div>');"
            "found = document.getElementById('written') != null;</script>"
        )
        assert g(page, "found") is True


class TestWindowBinding:
    def test_window_aliases_global(self):
        page = load(
            "<script>x = 5; viaWindow = window.x; window.y = 6;</script>"
            "<script>direct = y;</script>"
        )
        assert g(page, "viaWindow") == 5.0
        assert g(page, "direct") == 6.0

    def test_window_self_identity(self):
        page = load("<script>same = window === window.window;</script>")
        assert g(page, "same") is True

    def test_parent_of_root_is_itself(self):
        page = load("<script>rootParent = window.parent === window;</script>")
        assert g(page, "rootParent") is True

    def test_frames_array(self):
        page = load(
            "<iframe src='a.html'></iframe>"
            "<script>window.onload = function() { n = window.frames.length; };</script>",
            resources={"a.html": "<div></div>"},
        )
        assert g(page, "n") == 1.0

    def test_alert_captured(self):
        page = load("<script>alert('hello'); alert(42);</script>")
        assert page.alerts == ["hello", "42"]

    def test_window_onload_attr(self):
        page = load("<script>window.onload = function() { loaded = 1; };</script>")
        assert g(page, "loaded") == 1.0


class TestEventBinding:
    def test_event_properties_in_handler(self):
        page = load(
            """
            <div id='t'></div>
            <script>
            var t = document.getElementById('t');
            t.addEventListener('click', function(e) {
              type = e.type;
              targetId = e.target.id;
              same = e.currentTarget === t;
            });
            t.click();
            </script>
            """
        )
        assert g(page, "type") == "click"
        assert g(page, "targetId") == "t"
        assert g(page, "same") is True

    def test_this_is_current_target(self):
        page = load(
            """
            <div id='t'></div>
            <script>
            var t = document.getElementById('t');
            t.addEventListener('click', function() { thisIsT = this === t; });
            t.click();
            </script>
            """
        )
        assert g(page, "thisIsT") is True
