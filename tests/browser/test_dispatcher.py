"""Tests for instrumented event dispatch (operations, Eloc reads, rules)."""

from repro.browser.page import Browser
from repro.core.locations import ATTR_SLOT, HandlerLocation
from repro.core.operations import DISPATCH, SEGMENT


def load(html, **kwargs):
    return Browser(seed=0, **kwargs).load(html)


def dispatch_ops(page):
    return [op for op in page.trace.operations if op.kind == DISPATCH]


class TestDispatchOperations:
    def test_root_op_even_without_handlers(self):
        """ld(E) must be non-empty even for handler-less elements so the
        set-valued rules (1c, 5, 7, 11, 14, 15) still bite."""
        page = load("<img src='p.png'>", resources={"p.png": "b"})
        roots = [
            op
            for op in dispatch_ops(page)
            if op.meta.get("role") == "root" and op.meta.get("event") == "load"
        ]
        assert roots

    def test_root_reads_attr_slot(self):
        """The dispatch root reads on<event> — the hidden read of Fig. 5."""
        page = load("<img id='i' src='p.png'>", resources={"p.png": "b"})
        reads = [
            access
            for access in page.trace.accesses
            if isinstance(access.location, HandlerLocation)
            and access.location.event == "load"
            and access.location.handler == ATTR_SLOT
            and access.is_read
        ]
        assert reads

    def test_handler_op_per_handler(self):
        page = load(
            """
            <div id='t'></div>
            <script>
            var t = document.getElementById('t');
            t.addEventListener('click', function() { a = 1; });
            t.addEventListener('click', function() { b = 2; });
            t.click();
            </script>
            """
        )
        handler_ops = [
            op
            for op in dispatch_ops(page)
            if op.meta.get("event") == "click" and op.meta.get("role") == "handler"
        ]
        assert len(handler_ops) == 2
        g = page.interpreter.global_object
        assert g.get_own("a") == 1.0 and g.get_own("b") == 2.0

    def test_dispatch_indices_increment(self):
        page = load(
            """
            <div id='t' onclick='n = (typeof n == "undefined") ? 1 : n + 1;'></div>
            <script>
            var t = document.getElementById('t');
            t.click();
            t.click();
            </script>
            """
        )
        assert page.interpreter.global_object.get_own("n") == 2.0
        indices = sorted(
            op.meta["dispatch_index"]
            for op in dispatch_ops(page)
            if op.meta.get("event") == "click" and op.meta.get("role") == "root"
        )
        assert indices == [0, 1]

    def test_rule_9_orders_repeat_dispatches(self):
        page = load(
            """
            <div id='t' onclick='x = 1;'></div>
            <script>
            var t = document.getElementById('t');
            t.click();
            t.click();
            </script>
            """
        )
        assert page.monitor.graph.edges_by_rule("9:earlier-dispatch-first")

    def test_rule_8_target_created_first(self):
        page = load("<div id='t' onclick='x = 1;'></div><script>document.getElementById('t').click();</script>")
        create_op = page.monitor.create_op_of(page.document.get_element_by_id("t"))
        roots = [
            op.op_id
            for op in dispatch_ops(page)
            if op.meta.get("event") == "click"
        ]
        for root in roots:
            assert page.monitor.graph.happens_before(create_op, root)


class TestInlineDispatchSplitting:
    def test_split_creates_segment(self):
        """Appendix A: el.click() from a script splits the script op."""
        page = load(
            """
            <div id='t' onclick='during = 1;'></div>
            <script>
            before = 1;
            document.getElementById('t').click();
            after = 1;
            </script>
            """
        )
        segments = [op for op in page.trace.operations if op.kind == SEGMENT]
        assert len(segments) == 1
        assert segments[0].parent is not None

    def test_split_ordering(self):
        page = load(
            """
            <div id='t' onclick='during = 1;'></div>
            <script>
            document.getElementById('t').click();
            </script>
            """
        )
        graph = page.monitor.graph
        pre = graph.edges_by_rule("A:inline-dispatch-pre")
        post = graph.edges_by_rule("A:inline-dispatch-post")
        assert pre and post
        # exe ≺ handler ≺ segment, transitively exe ≺ segment.
        segment = [op for op in page.trace.operations if op.kind == SEGMENT][0]
        exe = segment.parent
        assert graph.happens_before(exe, segment.op_id)

    def test_accesses_after_split_attributed_to_segment(self):
        page = load(
            """
            <div id='t' onclick='x = 1;'></div>
            <script>
            document.getElementById('t').click();
            afterSplit = 1;
            </script>
            """
        )
        segment = [op for op in page.trace.operations if op.kind == SEGMENT][0]
        names = [
            access.location.name
            for access in page.trace.accesses_by_operation(segment.op_id)
            if hasattr(access.location, "name")
        ]
        assert "afterSplit" in names


class TestPhasingEdges:
    def test_same_phase_same_target_listeners_unordered(self):
        """Appendix A: two listeners on the same target in the same phase
        are NOT ordered (fewer-edges policy)."""
        page = load(
            """
            <div id='t'></div>
            <script>
            var t = document.getElementById('t');
            t.addEventListener('click', function() { a = 1; });
            t.addEventListener('click', function() { b = 1; });
            t.click();
            </script>
            """
        )
        handler_ops = [
            op.op_id
            for op in dispatch_ops(page)
            if op.meta.get("event") == "click" and op.meta.get("role") == "handler"
        ]
        assert len(handler_ops) == 2
        first, second = handler_ops
        assert page.monitor.graph.concurrent(first, second)

    def test_different_targets_ordered(self):
        """Bubbling handlers at different current targets ARE ordered."""
        page = load(
            """
            <div id='outer'><div id='inner'></div></div>
            <script>
            var outer = document.getElementById('outer');
            var inner = document.getElementById('inner');
            inner.addEventListener('click', function() { a = 1; });
            outer.addEventListener('click', function() { b = 1; });
            inner.click();
            </script>
            """
        )
        handler_ops = [
            op.op_id
            for op in dispatch_ops(page)
            if op.meta.get("event") == "click" and op.meta.get("role") == "handler"
        ]
        assert len(handler_ops) == 2
        first, second = sorted(handler_ops)
        assert page.monitor.graph.happens_before(first, second)


class TestDefaultAction:
    def test_javascript_href_runs_as_default_op(self):
        page = load(
            """
            <a id='l' href='javascript:viaHref = 1;'>go</a>
            <script>document.getElementById('l').click();</script>
            """
        )
        assert page.interpreter.global_object.get_own("viaHref") == 1.0
        defaults = [
            op for op in dispatch_ops(page) if op.meta.get("role") == "default"
        ]
        assert defaults


class TestHandlerErrors:
    def test_crashing_handler_does_not_stop_dispatch(self):
        page = load(
            """
            <div id='t'></div>
            <script>
            var t = document.getElementById('t');
            t.addEventListener('click', function() { boom(); });
            t.addEventListener('click', function() { survived = 1; });
            t.click();
            </script>
            """
        )
        assert page.interpreter.global_object.get_own("survived") == 1.0
        assert page.trace.crashes
