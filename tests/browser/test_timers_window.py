"""Tests for the timer registry and Window objects."""

import pytest

from repro.browser.event_loop import EventLoop
from repro.browser.timers import TimerRegistry
from repro.browser.window import Window
from repro.dom.document import Document


class TestTimerRegistry:
    def make(self):
        loop = EventLoop()
        return loop, TimerRegistry(loop)

    def test_timeout_fires_once(self):
        loop, timers = self.make()
        fired = []
        timers.set_timeout("cb", 5.0, creator_op=1, fire=lambda e: fired.append(e))
        loop.run()
        assert len(fired) == 1
        assert fired[0].creator_op == 1

    def test_timeout_delay(self):
        loop, timers = self.make()
        times = []
        timers.set_timeout("cb", 25.0, 1, lambda e: times.append(loop.clock.now))
        loop.run()
        assert times == [25.0]

    def test_negative_delay_clamped(self):
        loop, timers = self.make()
        fired = []
        timers.set_timeout("cb", -10.0, 1, lambda e: fired.append(1))
        loop.run()
        assert fired == [1]

    def test_interval_repeats_until_cap(self):
        loop, timers = self.make()
        fired = []
        timers.max_interval_fires = 7
        timers.set_interval("cb", 2.0, 1, lambda e: fired.append(e.fire_count))
        loop.run()
        assert fired == list(range(7))

    def test_clear_timeout_before_fire(self):
        loop, timers = self.make()
        fired = []
        timer_id = timers.set_timeout("cb", 5.0, 1, lambda e: fired.append(1))
        timers.clear(timer_id)
        loop.run()
        assert fired == []

    def test_clear_interval_mid_run(self):
        loop, timers = self.make()
        fired = []

        def fire(entry):
            fired.append(entry.fire_count)
            if entry.fire_count >= 2:
                timers.clear(entry.timer_id)

        timers.set_interval("cb", 2.0, 1, fire)
        loop.run()
        assert fired == [0, 1, 2]

    def test_clear_unknown_id_is_noop(self):
        _loop, timers = self.make()
        timers.clear(999)  # must not raise

    def test_ids_unique(self):
        loop, timers = self.make()
        a = timers.set_timeout("x", 1, 1, lambda e: None)
        b = timers.set_timeout("y", 1, 1, lambda e: None)
        assert a != b

    def test_pending_count(self):
        loop, timers = self.make()
        timers.set_timeout("x", 1, 1, lambda e: None)
        timers.set_timeout("y", 1, 1, lambda e: None)
        assert timers.pending_count() == 2
        loop.run()

    # -- entry pruning: cleared/exhausted timers must not accumulate ----

    def test_cleared_timer_pruned_from_entries(self):
        _loop, timers = self.make()
        timer_id = timers.set_timeout("cb", 5.0, 1, lambda e: None)
        assert timer_id in timers.entries
        timers.clear(timer_id)
        assert timer_id not in timers.entries

    def test_fired_timeout_pruned_from_entries(self):
        loop, timers = self.make()
        timer_id = timers.set_timeout("cb", 5.0, 1, lambda e: None)
        loop.run()
        assert timer_id not in timers.entries

    def test_exhausted_interval_pruned_from_entries(self):
        loop, timers = self.make()
        timers.max_interval_fires = 3
        timer_id = timers.set_interval("cb", 2.0, 1, lambda e: None)
        loop.run()
        assert timer_id not in timers.entries

    def test_interval_cleared_from_callback_pruned(self):
        loop, timers = self.make()

        def fire(entry):
            if entry.fire_count >= 1:
                timers.clear(entry.timer_id)

        timer_id = timers.set_interval("cb", 2.0, 1, fire)
        loop.run()
        assert timer_id not in timers.entries

    def test_entries_bounded_on_polling_page(self):
        """The Ford pattern: many short timers must not grow the registry."""
        loop, timers = self.make()
        for _ in range(50):
            timers.set_timeout("cb", 1.0, 1, lambda e: None)
        loop.run()
        assert timers.entries == {}


class TestWindow:
    def test_window_owns_document(self):
        document = Document("w.html")
        window = Window(document)
        assert window.document is document
        assert document.window is window

    def test_frame_tree(self):
        root = Window(Document("root.html"))
        child = Window(Document("child.html"), parent=root)
        grandchild = Window(Document("gc.html"), parent=child)
        assert root.frames == [child]
        assert child.frames == [grandchild]
        assert grandchild.top is root
        assert root.top is root

    def test_all_windows_preorder(self):
        root = Window(Document("r"))
        a = Window(Document("a"), parent=root)
        b = Window(Document("b"), parent=root)
        aa = Window(Document("aa"), parent=a)
        assert root.all_windows() == [root, a, aa, b]

    def test_element_key_distinct_from_nodes(self):
        """Window location keys are negative so they never collide with
        DOM node ids."""
        window = Window(Document("w"))
        assert window.element_key[0] == "node"
        assert window.element_key[1] < 0

    def test_handler_storage(self):
        window = Window(Document("w"))
        assert not window.has_any_handler("load")
        window.attr_handlers["load"] = "h"
        assert window.has_any_handler("load")

    def test_window_ids_unique(self):
        first = Window(Document("a"))
        second = Window(Document("b"))
        assert first.window_id != second.window_id
        assert first.element_key != second.element_key
