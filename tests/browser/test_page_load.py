"""Tests for the page loader: script scheduling, DCL, window load, frames.

These check the *operational sequencing* that the happens-before rules
formalize — run order of sync/async/defer scripts, DOMContentLoaded and
load timing, iframe nesting — plus the HB edges themselves via the graph.
"""

import pytest

from repro.browser.page import Browser


def load(html, resources=None, latencies=None, seed=0, **kwargs):
    browser = Browser(seed=seed, resources=resources, latencies=latencies, **kwargs)
    return browser.load(html)


class TestScriptScheduling:
    def test_inline_scripts_run_in_document_order(self):
        page = load(
            "<script>order = 'a';</script>"
            "<script>order = order + 'b';</script>"
            "<script>window.result = order + 'c';</script>"
        )
        assert page.interpreter.global_object.get_own("result") == "abc"

    def test_sync_script_blocks_parsing(self):
        """Elements after a synchronous script must not exist while the
        script runs (rule 1c's operational counterpart)."""
        page = load(
            "<script src='probe.js'></script><div id='later'></div>",
            resources={
                "probe.js": "sawLater = document.getElementById('later') != null;"
            },
            latencies={"probe.js": 50.0},
        )
        assert page.interpreter.global_object.get_own("sawLater") is False
        # But the div exists once loading completes.
        assert page.document.get_element_by_id("later") is not None

    def test_deferred_script_sees_whole_document(self):
        page = load(
            "<script src='d.js' defer='true'></script><div id='later'></div>",
            resources={"d.js": "sawLater = document.getElementById('later') != null;"},
            latencies={"d.js": 1.0},
        )
        assert page.interpreter.global_object.get_own("sawLater") is True

    def test_deferred_scripts_run_in_syntactic_order(self):
        page = load(
            "<script src='d1.js' defer='true'></script>"
            "<script src='d2.js' defer='true'></script>",
            resources={"d1.js": "seq = 'first';", "d2.js": "seq = seq + ',second';"},
            # d2 fetches *faster*, but must still run second (rule 5).
            latencies={"d1.js": 50.0, "d2.js": 1.0},
        )
        assert page.interpreter.global_object.get_own("seq") == "first,second"

    def test_async_script_executes(self):
        page = load(
            "<script src='a.js' async='true'></script>",
            resources={"a.js": "asyncRan = true;"},
        )
        assert page.interpreter.global_object.get_own("asyncRan") is True

    def test_missing_script_is_tolerated(self):
        page = load("<script src='gone.js'></script><div id='x'></div>")
        assert page.loaded()
        assert page.document.get_element_by_id("x") is not None

    def test_script_syntax_error_recorded_as_crash(self):
        page = load("<script>this is not javascript %%</script>")
        assert page.loaded()
        assert len(page.trace.crashes) == 1

    def test_crash_keeps_earlier_mutations(self):
        """Hidden-crash semantics end to end (Section 2.3)."""
        page = load("<script>x = 'kept'; nothingHere();</script>")
        assert page.interpreter.global_object.get_own("x") == "kept"
        assert page.trace.crashes[0].kind == "ReferenceError"


class TestLifecycleEvents:
    def test_dcl_fires_before_window_load(self):
        page = load(
            """
            <script>
            order = [];
            document.addEventListener('DOMContentLoaded', function() { order.push('dcl'); });
            window.onload = function() { order.push('load'); };
            </script>
            <img src='pic.png'>
            """,
            resources={"pic.png": "bin"},
        )
        order = page.interpreter.global_object.get_own("order")
        assert order.to_list() == ["dcl", "load"]

    def test_window_load_waits_for_images(self):
        page = load(
            """
            <script>window.onload = function() { imgDone = document.getElementById('i').complete; };</script>
            <img id='i' src='pic.png'>
            """,
            resources={"pic.png": "bin"},
            latencies={"pic.png": 80.0},
        )
        assert page.interpreter.global_object.get_own("imgDone") is True

    def test_image_onload_attribute_runs(self):
        page = load(
            "<img src='p.png' onload='imgLoaded = true;'>",
            resources={"p.png": "bin"},
        )
        assert page.interpreter.global_object.get_own("imgLoaded") is True

    def test_missing_image_fires_error_not_load(self):
        page = load(
            "<img src='gone.png' onload='l = true;' onerror='e = true;'>"
        )
        g = page.interpreter.global_object
        assert g.get_own("e") is True
        assert not g.has_own("l") or g.get_own("l") is not True
        assert page.loaded()

    def test_document_readystate(self):
        page = load("<div></div>")
        assert page.document.dcl_fired


class TestIframes:
    def test_iframe_document_parsed(self):
        page = load(
            "<iframe id='f' src='sub.html'></iframe>",
            resources={"sub.html": "<div id='inner'></div>"},
        )
        frame = page.window.frames[0]
        assert frame.document.get_element_by_id("inner") is not None

    def test_iframe_shares_global(self):
        """Frames share the page's JS global (the Fig. 1 model)."""
        page = load(
            "<script>shared = 'outer';</script><iframe src='sub.html'></iframe>",
            resources={"sub.html": "<script>fromFrame = shared;</script>"},
        )
        assert page.interpreter.global_object.get_own("fromFrame") == "outer"

    def test_iframe_onload_attr_fires_after_nested_load(self):
        page = load(
            "<iframe src='sub.html' onload='frameLoaded = true;'></iframe>",
            resources={"sub.html": "<div></div>"},
        )
        assert page.interpreter.global_object.get_own("frameLoaded") is True

    def test_window_load_waits_for_iframe(self):
        page = load(
            """
            <script>window.onload = function() { nested = window.frames[0].document.getElementById('n') != null; };</script>
            <iframe src='sub.html'></iframe>
            """,
            resources={"sub.html": "<div id='n'></div>"},
            latencies={"sub.html": 90.0},
        )
        assert page.interpreter.global_object.get_own("nested") is True

    def test_nested_iframes(self):
        page = load(
            "<iframe src='mid.html'></iframe>",
            resources={
                "mid.html": "<iframe src='leaf.html'></iframe>",
                "leaf.html": "<script>leafRan = true;</script>",
            },
        )
        assert page.interpreter.global_object.get_own("leafRan") is True
        assert page.window.frames[0].frames[0].load_fired


class TestDynamicInsertion:
    def test_script_inserted_external_script_runs(self):
        page = load(
            """
            <script>
            var s = document.createElement('script');
            s.src = 'late.js';
            document.body.appendChild(s);
            </script>
            """,
            resources={"late.js": "lateRan = true;"},
        )
        assert page.interpreter.global_object.get_own("lateRan") is True

    def test_script_inserted_inline_runs_synchronously(self):
        """Footnote 9: script-inserted inline scripts run inside the
        inserting operation."""
        page = load(
            """
            <script>
            var s = document.createElement('script');
            s.innerHTML = 'insideRan = true;';
            document.body.appendChild(s);
            after = insideRan;
            </script>
            """
        )
        assert page.interpreter.global_object.get_own("after") is True

    def test_inner_html_builds_elements(self):
        page = load(
            """
            <div id='host'></div>
            <script>
            document.getElementById('host').innerHTML = '<span id="made">hi</span>';
            found = document.getElementById('made') != null;
            </script>
            """
        )
        assert page.interpreter.global_object.get_own("found") is True

    def test_inner_html_scripts_do_not_execute(self):
        page = load(
            """
            <div id='host'></div>
            <script>
            document.getElementById('host').innerHTML = '<script>evil = true;<\\/script>';
            </script>
            """
        )
        assert not page.interpreter.global_object.has_own("evil")

    def test_dynamic_image_load_fires(self):
        page = load(
            """
            <script>
            var im = document.createElement('img');
            im.onload = function() { dynImg = true; };
            im.src = 'x.png';
            document.body.appendChild(im);
            </script>
            """,
            resources={"x.png": "bin"},
        )
        assert page.interpreter.global_object.get_own("dynImg") is True

    def test_remove_child(self):
        page = load(
            """
            <div id='victim'></div>
            <script>
            var v = document.getElementById('victim');
            v.parentNode.removeChild(v);
            gone = document.getElementById('victim') == null;
            </script>
            """
        )
        assert page.interpreter.global_object.get_own("gone") is True


class TestHappensBeforeEdges:
    def test_parse_chain_rule_1a(self):
        page = load("<div></div><p></p><span></span>")
        edges = page.monitor.graph.edges_by_rule("1a:static-order")
        assert len(edges) >= 2

    def test_rule_2_create_before_exe(self):
        page = load("<script>x = 1;</script>")
        assert page.monitor.graph.edges_by_rule("2:create-before-exe")

    def test_rule_16_timer_edge(self):
        page = load("<script>setTimeout(function() { t = 1; }, 5);</script>")
        assert page.monitor.graph.edges_by_rule("16:settimeout-before-cb")
        assert page.interpreter.global_object.get_own("t") == 1.0

    def test_rule_17_interval_chain(self):
        page = load(
            "<script>var n = 0; var id = setInterval(function() { n++; if (n >= 3) clearInterval(id); }, 5);</script>"
        )
        assert page.interpreter.global_object.get_own("n") == 3.0
        assert page.monitor.graph.edges_by_rule("17:setinterval-chain")

    def test_rule_6_iframe_create_edge(self):
        page = load(
            "<iframe src='s.html'></iframe>",
            resources={"s.html": "<div></div>"},
        )
        assert page.monitor.graph.edges_by_rule("6:iframe-create-before-nested-create")

    def test_rule_7_nested_load_edge(self):
        page = load(
            "<iframe src='s.html'></iframe>",
            resources={"s.html": "<div></div>"},
        )
        assert page.monitor.graph.edges_by_rule("7:nested-window-load-before-iframe-load")

    def test_rule_11_dcl_before_load(self):
        page = load("<div></div>")
        assert page.monitor.graph.edges_by_rule("11:dcl-before-window-load")

    def test_rule_15_element_load_before_window_load(self):
        page = load("<img src='p.png'>", resources={"p.png": "b"})
        assert page.monitor.graph.edges_by_rule("15:element-load-before-window-load")

    def test_clear_timeout_cancels(self):
        page = load(
            "<script>var id = setTimeout(function() { fired = true; }, 10); clearTimeout(id);</script>"
        )
        assert not page.interpreter.global_object.has_own("fired")


class TestTimers:
    def test_timeout_delay_respected_in_virtual_time(self):
        page = load(
            "<script>setTimeout(function() { at = 'late'; }, 500);</script>"
        )
        assert page.interpreter.global_object.get_own("at") == "late"
        assert page.clock.now >= 500.0

    def test_string_callback(self):
        page = load("<script>setTimeout('viaString = 1;', 1);</script>")
        assert page.interpreter.global_object.get_own("viaString") == 1.0

    def test_interval_capped(self):
        page = load("<script>setInterval(function() { }, 1);</script>")
        assert page.loaded()  # the cap keeps the loop finite
