"""Tests for the Monitor (instrumentation hub)."""

import pytest

from repro.browser.instrument import Monitor
from repro.core.access import READ, WRITE
from repro.core.locations import (
    CollectionLocation,
    DomPropLocation,
    HandlerLocation,
    HElemLocation,
    VarLocation,
    id_key,
)
from repro.core.operations import EXE, PARSE, SEGMENT
from repro.dom.document import Document


@pytest.fixture
def monitor():
    return Monitor()


def begin_op(monitor, kind=EXE, label="op"):
    operation = monitor.new_operation(kind, label=label)
    monitor.begin_operation(operation)
    return operation


class TestOperationStack:
    def test_current_tracks_stack(self, monitor):
        assert monitor.current is None
        op = begin_op(monitor)
        assert monitor.current is op
        monitor.end_operation(op)
        assert monitor.current is None

    def test_nested_operations(self, monitor):
        outer = begin_op(monitor, label="outer")
        inner = begin_op(monitor, label="inner")
        assert monitor.current is inner
        monitor.end_operation(inner)
        assert monitor.current is outer
        monitor.end_operation(outer)

    def test_mismatched_end_raises(self, monitor):
        first = begin_op(monitor)
        other = monitor.new_operation(EXE, label="other")
        with pytest.raises(RuntimeError):
            monitor.end_operation(other)

    def test_end_accepts_descendant_segment(self, monitor):
        original = begin_op(monitor)
        segment = monitor.new_operation(
            SEGMENT, label="seg", parent=original.op_id
        )
        monitor.replace_current(segment)
        monitor.end_operation(original)  # must not raise

    def test_end_on_empty_stack_raises(self, monitor):
        op = monitor.new_operation(EXE)
        with pytest.raises(RuntimeError):
            monitor.end_operation(op)


class TestRecording:
    def test_access_outside_operation_ignored(self, monitor):
        result = monitor.record(READ, VarLocation(1, "x"))
        assert result is None
        assert len(monitor.trace) == 0

    def test_access_attributed_to_current_op(self, monitor):
        op = begin_op(monitor)
        access = monitor.record(WRITE, VarLocation(1, "x"))
        assert access.op_id == op.op_id

    def test_disabled_monitor_records_nothing(self):
        monitor = Monitor(enabled=False)
        begin_op(monitor)
        assert monitor.record(WRITE, VarLocation(1, "x")) is None

    def test_read_before_write_detail(self, monitor):
        begin_op(monitor)
        location = DomPropLocation(id_key(1, "f"), "value", tag="input")
        monitor.record(READ, location)
        write = monitor.record(WRITE, location)
        assert write.detail.get("read_before_write") is True

    def test_no_read_before_write_across_operations(self, monitor):
        location = DomPropLocation(id_key(1, "f"), "value", tag="input")
        first = begin_op(monitor)
        monitor.record(READ, location)
        monitor.end_operation(first)
        begin_op(monitor)
        write = monitor.record(WRITE, location)
        assert "read_before_write" not in write.detail

    def test_delayed_script_marks_writes(self, monitor):
        op = monitor.new_operation(EXE, meta={"delayed_script": True})
        monitor.begin_operation(op)
        write = monitor.record(
            WRITE, HandlerLocation(id_key(1, "img"), "load")
        )
        assert write.detail.get("deliberate_delay") is True

    def test_detector_wired_to_trace(self, monitor):
        op1 = begin_op(monitor)
        monitor.record(WRITE, VarLocation(1, "x"))
        monitor.end_operation(op1)
        op2 = begin_op(monitor)
        monitor.record(WRITE, VarLocation(1, "x"))
        monitor.end_operation(op2)
        # No HB edges between the two ops -> race.
        assert len(monitor.races) == 1

    def test_full_history_option(self):
        monitor = Monitor(full_history=True)
        assert monitor.full_detector is not None
        op = begin_op(monitor)
        monitor.record(WRITE, VarLocation(1, "x"))
        assert len(monitor.full_detector.history) == 1


class TestCrashRecording:
    def test_crash_attributed_to_current_op(self, monitor):
        op = begin_op(monitor)
        monitor.record_crash(ValueError("boom"), where="test")
        crash = monitor.trace.crashes[0]
        assert crash.operation == op.op_id
        assert crash.where == "test"

    def test_crash_outside_operation(self, monitor):
        monitor.record_crash(ValueError("boom"))
        assert monitor.trace.crashes[0].operation is None


class TestDomHooks:
    def make_document(self, monitor):
        document = Document("t.html")
        document.instrumentation = monitor.make_dom_instrumentation()
        return document

    def test_insertion_writes_helem_and_structure(self, monitor):
        document = self.make_document(monitor)
        begin_op(monitor, kind=PARSE)
        element = document.create_element("div", {"id": "a"})
        document.insert(element)
        locations = [access.location for access in monitor.trace.accesses]
        assert HElemLocation(element.element_key) in locations
        assert any(
            isinstance(loc, DomPropLocation) and loc.name == "parentNode"
            for loc in locations
        )
        assert any(
            isinstance(loc, CollectionLocation) and loc.kind == "tag"
            for loc in locations
        )

    def test_create_op_recorded(self, monitor):
        document = self.make_document(monitor)
        op = begin_op(monitor, kind=PARSE)
        element = document.create_element("div", {"id": "a"})
        document.insert(element)
        assert monitor.create_op_of(element) == op.op_id

    def test_create_op_first_insertion_wins(self, monitor):
        document = self.make_document(monitor)
        first = begin_op(monitor, kind=PARSE)
        element = document.create_element("div", {"id": "a"})
        document.insert(element)
        monitor.end_operation(first)
        second = begin_op(monitor, kind=EXE)
        document.remove(element)
        document.insert(element)
        assert monitor.create_op_of(element) == first.op_id

    def test_lookup_miss_records_found_false(self, monitor):
        document = self.make_document(monitor)
        begin_op(monitor)
        document.get_element_by_id("ghost")
        access = monitor.trace.accesses[-1]
        assert access.is_read
        assert access.detail["found"] is False

    def test_removal_writes(self, monitor):
        document = self.make_document(monitor)
        op = begin_op(monitor, kind=PARSE)
        element = document.create_element("div", {"id": "a"})
        document.insert(element)
        before = len(monitor.trace.accesses)
        document.remove(element)
        assert len(monitor.trace.accesses) > before
