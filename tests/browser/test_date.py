"""Tests for the virtual-clock-backed Date global."""

from repro.browser.page import Browser


def g(page, name):
    return page.interpreter.global_object.get_own(name)


class TestDate:
    def test_date_now_is_virtual_time(self):
        page = Browser(seed=0).load(
            "<script>setTimeout('at = Date.now();', 42);</script>"
        )
        assert g(page, "at") >= 42.0

    def test_new_date_get_time(self):
        page = Browser(seed=0).load(
            "<script>t0 = new Date().getTime();</script>"
        )
        assert isinstance(g(page, "t0"), float)

    def test_elapsed_time_measurement(self):
        """The Gomez-style pattern: measure elapsed virtual time."""
        page = Browser(seed=0).load(
            """
            <script>
            start = Date.now();
            setTimeout('elapsed = Date.now() - start;', 25);
            </script>
            """
        )
        assert g(page, "elapsed") >= 25.0

    def test_time_monotone_across_operations(self):
        page = Browser(seed=0).load(
            """
            <script>first = Date.now();</script>
            <script>setTimeout('second = Date.now();', 10);</script>
            """
        )
        assert g(page, "second") >= g(page, "first")
