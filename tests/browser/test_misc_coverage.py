"""Additional coverage for thinner browser paths."""

from repro.browser.page import Browser


def load(html, **kwargs):
    return Browser(seed=0, **kwargs).load(html)


def g(page, name):
    return page.interpreter.global_object.get_own(name)


class TestInnerHtmlSideEffects:
    def test_iframe_in_inner_html_loads(self):
        """Real browsers load iframes inserted via innerHTML (scripts no,
        iframes yes)."""
        page = load(
            """
            <div id='host'></div>
            <script>
            document.getElementById('host').innerHTML =
              '<iframe id="f" src="sub.html"></iframe>';
            </script>
            """,
            resources={"sub.html": "<script>nestedRan = 1;</script>"},
        )
        assert g(page, "nestedRan") == 1.0

    def test_image_in_inner_html_loads(self):
        page = load(
            """
            <div id='host'></div>
            <script>
            document.getElementById('host').innerHTML =
              '<img id="im" src="p.png" onload="imgRan = 1;">';
            </script>
            """,
            resources={"p.png": "bin"},
        )
        assert g(page, "imgRan") == 1.0

    def test_handler_attributes_in_inner_html_registered(self):
        page = load(
            """
            <div id='host'></div>
            <script>
            document.getElementById('host').innerHTML =
              '<button id="b" onclick="pressed = 1;">go</button>';
            document.getElementById('b').click();
            </script>
            """
        )
        assert g(page, "pressed") == 1.0


class TestDocumentListeners:
    def test_dcl_listener_add_and_remove(self):
        page = load(
            """
            <script>
            var h = function() { dclRan = 1; };
            document.addEventListener('DOMContentLoaded', h);
            document.removeEventListener('DOMContentLoaded', h);
            </script>
            """
        )
        assert not page.interpreter.global_object.has_own("dclRan")

    def test_multiple_dcl_listeners(self):
        page = load(
            """
            <script>
            document.addEventListener('DOMContentLoaded', function() { a = 1; });
            document.addEventListener('DOMContentLoaded', function() { b = 1; });
            </script>
            """
        )
        assert g(page, "a") == 1.0
        assert g(page, "b") == 1.0


class TestWindowMisc:
    def test_js_has_on_window(self):
        page = load(
            "<script>known = 'document' in window; mine = 'x' in window; "
            "x = 1; after = 'x' in window;</script>"
        )
        assert g(page, "known") is True
        assert g(page, "mine") is False
        assert g(page, "after") is True

    def test_window_location_is_url(self):
        page = Browser(seed=0).load("<script>loc = window.location;</script>", url="my.html")
        assert g(page, "loc") == "my.html"

    def test_console_log_captured_on_page(self):
        page = load("<script>console.log('from page', 42);</script>")
        assert page.console == ["from page 42"]


class TestElementMisc:
    def test_owner_document(self):
        page = load(
            "<div id='d'></div>"
            "<script>same = document.getElementById('d').ownerDocument === document;</script>"
        )
        assert g(page, "same") is True

    def test_offset_width_visibility(self):
        page = load(
            "<div id='v'></div><div id='h' style='display:none'></div>"
            "<script>wv = document.getElementById('v').offsetWidth;"
            "wh = document.getElementById('h').offsetWidth;</script>"
        )
        assert g(page, "wv") > 0
        assert g(page, "wh") == 0.0

    def test_checkbox_change_handler_on_exploration(self):
        browser = Browser(seed=0)
        page = browser.open(
            "<input type='checkbox' id='c' onchange='changed = 1;'>"
        )
        page.auto_explore = True
        page.run()
        assert g(page, "changed") == 1.0


class TestSelectField:
    def test_selected_index_read(self):
        page = load(
            "<select id='s' selectedindex='2'></select>"
            "<script>idx = document.getElementById('s').selectedIndex;</script>"
        )
        assert g(page, "idx") == 2.0
