"""Tests for the virtual clock, event loop, and schedulers."""

import pytest

from repro.browser.clock import VirtualClock
from repro.browser.event_loop import EventLoop
from repro.browser.scheduler import (
    AdversarialScheduler,
    FifoScheduler,
    SeededRandomScheduler,
    make_scheduler,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_never_goes_backwards(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_advance_by(self):
        clock = VirtualClock(5.0)
        clock.advance_by(2.5)
        assert clock.now == 7.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-1)


class TestEventLoop:
    def test_runs_tasks_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.post(lambda: order.append("late"), delay=10)
        loop.post(lambda: order.append("early"), delay=1)
        loop.run()
        assert order == ["early", "late"]

    def test_clock_advances_to_task_time(self):
        loop = EventLoop()
        times = []
        loop.post(lambda: times.append(loop.clock.now), delay=7.5)
        loop.run()
        assert times == [7.5]

    def test_fifo_breaks_ties_by_enqueue_order(self):
        loop = EventLoop()
        order = []
        loop.post(lambda: order.append(1), delay=5)
        loop.post(lambda: order.append(2), delay=5)
        loop.run()
        assert order == [1, 2]

    def test_tasks_can_post_tasks(self):
        loop = EventLoop()
        order = []

        def outer():
            order.append("outer")
            loop.post(lambda: order.append("inner"), delay=1)

        loop.post(outer)
        loop.run()
        assert order == ["outer", "inner"]

    def test_cancelled_task_skipped(self):
        loop = EventLoop()
        ran = []
        task = loop.post(lambda: ran.append(1))
        task.cancel()
        loop.run()
        assert ran == []

    def test_run_returns_executed_count(self):
        loop = EventLoop()
        loop.post(lambda: None)
        loop.post(lambda: None)
        assert loop.run() == 2

    def test_run_until_predicate(self):
        loop = EventLoop()
        order = []
        loop.post(lambda: order.append(1), delay=1)
        loop.post(lambda: order.append(2), delay=2)
        loop.run(until=lambda: len(order) >= 1)
        assert order == [1]

    def test_run_for_duration(self):
        loop = EventLoop()
        order = []
        loop.post(lambda: order.append("in"), delay=5)
        loop.post(lambda: order.append("out"), delay=50)
        loop.run_for(10)
        assert order == ["in"]
        assert loop.pending() == 1

    def test_max_tasks_guard(self):
        loop = EventLoop()
        loop.max_tasks = 10

        def respawn():
            loop.post(respawn)

        loop.post(respawn)
        with pytest.raises(RuntimeError):
            loop.run()

    def test_has_pending_by_kind(self):
        loop = EventLoop()
        loop.post(lambda: None, kind="parse")
        assert loop.has_pending("parse")
        assert not loop.has_pending("timer")


class TestSchedulers:
    def test_factory(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("random"), SeededRandomScheduler)
        assert isinstance(make_scheduler("adversarial"), AdversarialScheduler)
        with pytest.raises(ValueError):
            make_scheduler("bogus")

    def test_seeded_random_is_deterministic(self):
        def run_with(seed):
            loop = EventLoop(scheduler=SeededRandomScheduler(seed))
            order = []
            for index in range(10):
                loop.post(lambda i=index: order.append(i), delay=1.0)
            loop.run()
            return order

        assert run_with(3) == run_with(3)

    def test_seeded_random_varies_with_seed(self):
        def run_with(seed):
            loop = EventLoop(scheduler=SeededRandomScheduler(seed))
            order = []
            for index in range(10):
                loop.post(lambda i=index: order.append(i), delay=1.0)
            loop.run()
            return order

        results = {tuple(run_with(seed)) for seed in range(8)}
        assert len(results) > 1

    def test_adversarial_prefers_user_tasks(self):
        loop = EventLoop(scheduler=AdversarialScheduler())
        order = []
        loop.post(lambda: order.append("parse"), delay=1.0, kind="parse")
        loop.post(lambda: order.append("user"), delay=1.0, kind="user")
        loop.run()
        assert order == ["user", "parse"]

    def test_adversarial_never_reorders_time(self):
        loop = EventLoop(scheduler=AdversarialScheduler())
        order = []
        loop.post(lambda: order.append("parse-early"), delay=1.0, kind="parse")
        loop.post(lambda: order.append("user-late"), delay=5.0, kind="user")
        loop.run()
        assert order == ["parse-early", "user-late"]


class TestCancelledTaskPruning:
    """Pin the leak fix: cancelled tasks must not pile up in the queue."""

    def test_cancelled_tasks_are_pruned_on_step(self):
        loop = EventLoop()
        doomed = [loop.post(lambda: None, delay=50.0 + i) for i in range(100)]
        for task in doomed:
            task.cancel()
        loop.post(lambda: None, delay=1.0)
        assert loop.step()
        assert len(loop._tasks) == 0

    def test_task_list_bounded_under_timer_churn(self):
        """A page that keeps re-arming a watchdog timer (post + cancel on
        every tick) must not grow the queue linearly in tick count."""
        loop = EventLoop()
        peak = {"tasks": 0}
        state = {"watchdog": None, "rounds": 0}

        def tick():
            if state["watchdog"] is not None:
                state["watchdog"].cancel()
            state["watchdog"] = loop.post(lambda: None, delay=10000.0)
            state["rounds"] += 1
            peak["tasks"] = max(peak["tasks"], len(loop._tasks))
            if state["rounds"] < 300:
                loop.post(tick, delay=1.0)

        loop.post(tick, delay=1.0)
        loop.run()
        assert state["rounds"] == 300
        # Without pruning the peak is ~300 (one dead watchdog per round).
        assert peak["tasks"] <= 4

    def test_cancelled_task_never_runs_after_prune(self):
        loop = EventLoop()
        fired = []
        victim = loop.post(lambda: fired.append("victim"), delay=5.0)
        loop.post(lambda: fired.append("ok"), delay=1.0)
        victim.cancel()
        loop.run()
        assert fired == ["ok"]
