"""Test package."""
