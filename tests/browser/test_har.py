"""Tests for HAR ingestion (``repro.har``)."""

import json
import pathlib

import pytest

from repro.har import (
    DEFAULT_ENTRY_SIZE,
    HarEntry,
    HarError,
    load_har,
    parse_har,
    synthesize_driver,
    workload_from_entries,
)

EXAMPLE_HAR = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "pages" / "shop.har"
)


def har_text(entries):
    """Minimal HAR document around a list of raw entry dicts."""
    return json.dumps({"log": {"version": "1.2", "entries": entries}})


def entry(url, mime="application/javascript", text=None, size=None, body_size=None):
    content = {"mimeType": mime}
    if text is not None:
        content["text"] = text
    if size is not None:
        content["size"] = size
    response = {"status": 200, "content": content}
    if body_size is not None:
        response["bodySize"] = body_size
    return {"request": {"method": "GET", "url": url}, "response": response}


class TestParseErrors:
    def test_not_json(self):
        with pytest.raises(HarError, match="not valid JSON"):
            parse_har("this is { not json")

    def test_top_level_not_object(self):
        with pytest.raises(HarError, match="top level"):
            parse_har("[1, 2, 3]")

    def test_missing_log(self):
        with pytest.raises(HarError, match="missing 'log'"):
            parse_har('{"version": "1.2"}')

    def test_missing_entries(self):
        with pytest.raises(HarError, match="log.entries"):
            parse_har('{"log": {"version": "1.2"}}')

    def test_empty_capture(self):
        with pytest.raises(HarError, match="no entries"):
            parse_har(har_text([]))

    def test_entry_not_an_object(self):
        with pytest.raises(HarError, match="entry 0"):
            parse_har(har_text(["nope"]))

    def test_entry_without_url(self):
        bad = {"request": {"method": "GET"}, "response": {"status": 200}}
        with pytest.raises(HarError, match="entry 0 has no request URL"):
            parse_har(har_text([bad]))


class TestEntryFields:
    def test_size_prefers_content_size(self):
        [parsed] = parse_har(
            har_text([entry("https://a.example/x.js", text="tiny", size=9000,
                            body_size=7000)])
        )
        assert parsed.size == 9000

    def test_size_falls_back_to_body_size(self):
        [parsed] = parse_har(
            har_text([entry("https://a.example/x.js", text="tiny", body_size=7000)])
        )
        assert parsed.size == 7000

    def test_size_falls_back_to_text_length(self):
        [parsed] = parse_har(
            har_text([entry("https://a.example/x.js", text="12345678")])
        )
        assert parsed.size == 8

    def test_size_default_when_nothing_usable(self):
        [parsed] = parse_har(har_text([entry("https://a.example/x.js")]))
        assert parsed.size == DEFAULT_ENTRY_SIZE

    def test_origin_and_kind_properties(self):
        [parsed] = parse_har(
            har_text([entry("https://cdn.example/app.js", text="var x;")])
        )
        assert parsed.origin == "https://cdn.example"
        assert parsed.is_script
        assert not parsed.is_html
        assert not parsed.is_image

    def test_body_text_passthrough(self):
        [parsed] = parse_har(
            har_text([entry("https://a.example/x.js", text="var x = 1;")])
        )
        assert parsed.text == "var x = 1;"


class TestDriverSynthesis:
    def test_scripts_load_async_images_as_img(self):
        html = synthesize_driver(
            [
                HarEntry(url="https://a.example/app.js", size=10,
                         mime="application/javascript"),
                HarEntry(url="https://a.example/pic.png", size=10,
                         mime="image/png"),
            ]
        )
        assert '<script src="https://a.example/app.js" async></script>' in html
        assert '<img src="https://a.example/pic.png">' in html

    def test_html_entries_are_skipped(self):
        html = synthesize_driver(
            [HarEntry(url="https://a.example/frame.html", size=10, mime="text/html")]
        )
        assert "frame.html" not in html


class TestWorkloadAssembly:
    def test_captured_driver_body_used_verbatim(self):
        driver_html = "<html><body><script>var x = 1;</script></body></html>"
        workload = workload_from_entries(
            [
                HarEntry(url="https://a.example/", size=100, mime="text/html",
                         text=driver_html),
                HarEntry(url="https://a.example/app.js", size=50,
                         mime="application/javascript", text="var y;"),
            ]
        )
        assert workload.url == "https://a.example/"
        assert workload.html == driver_html
        assert workload.resources == {"https://a.example/app.js": "var y;"}
        assert workload.sizes == {"https://a.example/app.js": 50}

    def test_stripped_driver_is_synthesized(self):
        workload = workload_from_entries(
            [
                HarEntry(url="https://a.example/", size=100, mime="text/html"),
                HarEntry(url="https://a.example/app.js", size=50,
                         mime="application/javascript"),
            ]
        )
        assert '<script src="https://a.example/app.js" async></script>' in workload.html

    def test_no_html_entry_synthesizes_from_first(self):
        workload = workload_from_entries(
            [HarEntry(url="https://a.example/app.js", size=50,
                      mime="application/javascript", text="var z;")]
        )
        assert workload.url == "https://a.example/app.js"
        assert "app.js" in workload.html


class TestBundledExample:
    def test_shop_har_loads(self):
        workload = load_har(str(EXAMPLE_HAR))
        assert workload.url == "https://shop.example.com/"
        assert "catalogReady" in workload.html
        assert workload.sizes["https://cdn.shop-static.example/catalog.js"] == 1200000
        assert len(workload.entries) == 4

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_har(str(tmp_path / "gone.har"))
