"""Edge cases for Appendix A operation splitting: nested inline dispatch."""

from repro.browser.page import Browser
from repro.core.operations import SEGMENT


def load(html, **kwargs):
    return Browser(seed=0, **kwargs).load(html)


def g(page, name):
    return page.interpreter.global_object.get_own(name)


class TestNestedSplitting:
    def test_handler_clicking_another_element(self):
        """A click handler that itself calls click() splits both the
        script operation and the outer handler operation."""
        page = load(
            """
            <div id='a'></div>
            <div id='b'></div>
            <script>
            var a = document.getElementById('a');
            var b = document.getElementById('b');
            b.onclick = function() { bRan = 1; };
            a.onclick = function() { aStart = 1; b.click(); aEnd = 1; };
            a.click();
            afterAll = 1;
            </script>
            """
        )
        for name in ("bRan", "aStart", "aEnd", "afterAll"):
            assert g(page, name) == 1.0
        segments = [op for op in page.trace.operations if op.kind == SEGMENT]
        # One split of the script (a.click) and one of a's handler (b.click).
        assert len(segments) == 2

    def test_nested_split_ordering(self):
        page = load(
            """
            <div id='a'></div>
            <div id='b'></div>
            <script>
            var a = document.getElementById('a');
            var b = document.getElementById('b');
            b.onclick = function() { inner = 1; };
            a.onclick = function() { b.click(); };
            a.click();
            tail = 1;
            </script>
            """
        )
        graph = page.monitor.graph
        ops = {op.op_id: op for op in page.trace.operations}
        segments = sorted(
            (op for op in ops.values() if op.kind == SEGMENT),
            key=lambda op: op.op_id,
        )
        # Every segment is ordered after its parent (transitively through
        # the dispatched handlers).
        for segment in segments:
            assert graph.happens_before(segment.parent, segment.op_id)

    def test_double_split_of_same_operation(self):
        """Two inline dispatches from one script chain two segments."""
        page = load(
            """
            <div id='a' onclick='hits = (typeof hits == "undefined") ? 1 : hits + 1;'></div>
            <script>
            var a = document.getElementById('a');
            a.click();
            mid = 1;
            a.click();
            end = 1;
            </script>
            """
        )
        assert g(page, "hits") == 2.0
        assert g(page, "mid") == 1.0 and g(page, "end") == 1.0
        segments = [op for op in page.trace.operations if op.kind == SEGMENT]
        assert len(segments) == 2
        # The second segment's parent is the first segment.
        first, second = sorted(segments, key=lambda op: op.op_id)
        assert second.parent == first.op_id

    def test_accesses_attributed_across_double_split(self):
        page = load(
            """
            <div id='a' onclick='h = 1;'></div>
            <script>
            pre = 1;
            document.getElementById('a').click();
            mid = 1;
            document.getElementById('a').click();
            post = 1;
            </script>
            """
        )
        by_name = {}
        for access in page.trace.accesses:
            name = getattr(access.location, "name", None)
            if name in ("pre", "mid", "post") and access.is_write:
                by_name[name] = access.op_id
        assert by_name["pre"] != by_name["mid"] != by_name["post"]
        assert by_name["pre"] != by_name["post"]

    def test_timer_created_after_split_gets_segment_edge(self):
        page = load(
            """
            <div id='a' onclick='h = 1;'></div>
            <script>
            document.getElementById('a').click();
            setTimeout('late = 1;', 5);
            </script>
            """
        )
        assert g(page, "late") == 1.0
        edges = page.monitor.graph.edges_by_rule("16:settimeout-before-cb")
        segment_ids = {
            op.op_id for op in page.trace.operations if op.kind == SEGMENT
        }
        assert any(edge.src in segment_ids for edge in edges)
