"""Tests for DOM elements: attributes, scripts, form state, handlers."""

from repro.dom.document import Document
from repro.dom.element import Element


class TestAttributes:
    def test_constructor_attributes(self):
        element = Element("div", {"id": "a", "class": "big"})
        assert element.get_attribute("id") == "a"
        assert element.has_attribute("class")

    def test_set_and_remove(self):
        element = Element("div")
        element.set_attribute("title", "x")
        assert element.get_attribute("title") == "x"
        element.remove_attribute("title")
        assert element.get_attribute("title") is None

    def test_tag_normalized_lowercase(self):
        assert Element("DIV").tag == "div"

    def test_style_parsed(self):
        element = Element("div", {"style": "display:none; color: red"})
        assert element.style["display"] == "none"
        assert element.style["color"] == "red"
        assert not element.visible

    def test_style_update_via_attribute(self):
        element = Element("div")
        assert element.visible
        element.set_attribute("style", "display:none")
        assert not element.visible


class TestIdentity:
    def test_id_key_uses_home_document(self):
        document = Document()
        element = document.create_element("div", {"id": "x"})
        assert element.element_key == ("id", document.doc_id, "x")

    def test_node_key_without_id(self):
        element = Element("div")
        assert element.element_key == ("node", element.node_id)

    def test_same_id_same_key(self):
        document = Document()
        first = document.create_element("div", {"id": "dw"})
        second = document.create_element("div", {"id": "dw"})
        assert first.element_key == second.element_key


class TestScriptFlags:
    def test_inline_script(self):
        script = Element("script")
        assert script.is_script and script.is_inline_script
        assert not script.is_external_script

    def test_external_sync(self):
        script = Element("script", {"src": "a.js"})
        assert script.is_external_script
        assert script.is_sync_external_script
        assert not script.is_async and not script.is_deferred

    def test_async(self):
        script = Element("script", {"src": "a.js", "async": "true"})
        assert script.is_async and not script.is_sync_external_script

    def test_defer(self):
        script = Element("script", {"src": "a.js", "defer": "true"})
        assert script.is_deferred

    def test_bare_async_attribute(self):
        script = Element("script", {"src": "a.js", "async": "true"})
        assert script.is_async

    def test_async_false_is_sync(self):
        script = Element("script", {"src": "a.js", "async": "false"})
        assert not script.is_async


class TestFormState:
    def test_input_initial_value_from_attribute(self):
        element = Element("input", {"value": "seed"})
        assert element.value == "seed"

    def test_checked(self):
        assert Element("input", {"checked": ""}).checked
        assert not Element("input").checked

    def test_is_form_field(self):
        assert Element("input").is_form_field
        assert Element("textarea").is_form_field
        assert Element("select").is_form_field
        assert not Element("div").is_form_field


class TestLoadability:
    def test_loadable_tags(self):
        assert Element("img").has_load_event
        assert Element("script").has_load_event
        assert Element("iframe").has_load_event
        assert not Element("div").has_load_event


class TestHandlers:
    def test_attr_handler_slot(self):
        element = Element("img")
        element.set_attr_handler("load", "doWork()")
        assert element.get_attr_handler("load") == "doWork()"
        assert element.has_any_handler("load")
        element.remove_attr_handler("load")
        assert not element.has_any_handler("load")

    def test_listeners_by_capture_flag(self):
        element = Element("div")
        element.add_listener("click", "h1", capture=False)
        element.add_listener("click", "h2", capture=True)
        assert len(element.listeners_for("click", capture=False)) == 1
        assert len(element.listeners_for("click", capture=True)) == 1

    def test_remove_listener_by_identity(self):
        element = Element("div")
        handler = object()
        element.add_listener("click", handler)
        assert element.remove_listener("click", handler) is not None
        assert element.remove_listener("click", handler) is None
        assert not element.has_any_handler("click")

    def test_handled_events_sorted(self):
        element = Element("div")
        element.set_attr_handler("mouseover", "x")
        element.add_listener("click", object())
        assert element.handled_events() == ["click", "mouseover"]

    def test_listener_entry_keys_distinct(self):
        element = Element("div")
        entry_a = element.add_listener("click", object())
        entry_b = element.add_listener("click", object())
        assert entry_a.handler_key != entry_b.handler_key


class TestChildHelpers:
    def test_element_children_skips_non_elements(self):
        document = Document()
        parent = document.create_element("div")
        child = document.create_element("span")
        parent.raw_append(child)
        assert parent.element_children() == [child]

    def test_element_descendants(self):
        document = Document()
        a = document.create_element("div")
        b = document.create_element("div")
        c = document.create_element("p")
        a.raw_append(b)
        b.raw_append(c)
        assert a.element_descendants() == [b, c]
