"""Test package."""
