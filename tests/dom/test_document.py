"""Tests for the Document: structure mutation + instrumented queries."""

from repro.core.locations import CollectionLocation, HElemLocation, id_key
from repro.dom.document import Document, DomInstrumentation


class RecordingInstrumentation(DomInstrumentation):
    def __init__(self):
        self.inserted = []
        self.removed = []
        self.reads = []
        self.collections = []

    def element_inserted(self, element, parent, index):
        self.inserted.append((element, parent, index))

    def element_removed(self, element, parent):
        self.removed.append((element, parent))

    def element_read(self, document, key, found, via):
        self.reads.append((key, found, via))

    def collection_read(self, document, kind, key):
        self.collections.append((kind, key))


def make_document():
    document = Document("test.html")
    instr = RecordingInstrumentation()
    document.instrumentation = instr
    return document, instr


class TestInsertion:
    def test_insert_into_body_by_default(self):
        document, instr = make_document()
        element = document.create_element("div", {"id": "a"})
        document.insert(element)
        assert element.parent is document.body
        assert element.inserted
        assert instr.inserted[0][0] is element

    def test_insert_subtree_reports_descendants(self):
        document, instr = make_document()
        parent = document.create_element("div", {"id": "p"})
        child = document.create_element("span")
        parent.raw_append(child)
        document.insert(parent)
        inserted = [entry[0] for entry in instr.inserted]
        assert parent in inserted and child in inserted
        assert child.inserted

    def test_insert_before_reference(self):
        document, _instr = make_document()
        first = document.create_element("div", {"id": "x"})
        second = document.create_element("div", {"id": "y"})
        document.insert(second)
        document.insert(first, before=second)
        assert document.body.children == [first, second]

    def test_id_index_updated(self):
        document, _instr = make_document()
        element = document.create_element("div", {"id": "k"})
        document.insert(element)
        assert document.get_element_by_id("k") is element

    def test_first_id_wins_on_duplicates(self):
        document, _instr = make_document()
        first = document.create_element("div", {"id": "dup"})
        second = document.create_element("div", {"id": "dup"})
        document.insert(first)
        document.insert(second)
        assert document.get_element_by_id("dup") is first


class TestRemoval:
    def test_remove_unindexes(self):
        document, instr = make_document()
        element = document.create_element("div", {"id": "gone"})
        document.insert(element)
        document.remove(element)
        assert document.get_element_by_id("gone") is None
        assert not element.inserted
        assert instr.removed[0][0] is element

    def test_remove_subtree(self):
        document, instr = make_document()
        parent = document.create_element("div")
        child = document.create_element("div", {"id": "inner"})
        parent.raw_append(child)
        document.insert(parent)
        document.remove(parent)
        assert document.get_element_by_id("inner") is None
        assert len(instr.removed) == 2

    def test_remove_detached_is_noop(self):
        document, instr = make_document()
        element = document.create_element("div")
        document.remove(element)
        assert instr.removed == []


class TestQueries:
    def test_get_element_by_id_miss_reports_read(self):
        """The failed lookup read is the racing access of Fig. 3."""
        document, instr = make_document()
        assert document.get_element_by_id("dw") is None
        key, found, via = instr.reads[-1]
        assert key == id_key(document.doc_id, "dw")
        assert not found
        assert via == "getElementById"

    def test_get_element_by_id_hit_reports_read(self):
        document, instr = make_document()
        document.insert(document.create_element("div", {"id": "dw"}))
        document.get_element_by_id("dw")
        key, found, _via = instr.reads[-1]
        assert found

    def test_get_elements_by_tag_name(self):
        document, instr = make_document()
        document.insert(document.create_element("div", {"id": "a"}))
        document.insert(document.create_element("p"))
        divs = document.get_elements_by_tag_name("div")
        assert [el.element_id for el in divs] == ["a"]
        assert ("tag", "div") in instr.collections

    def test_get_elements_by_tag_name_star(self):
        document, _instr = make_document()
        document.insert(document.create_element("div"))
        document.insert(document.create_element("p"))
        assert len(document.get_elements_by_tag_name("*")) >= 2

    def test_get_elements_by_name(self):
        document, instr = make_document()
        document.insert(document.create_element("input", {"name": "q"}))
        found = document.get_elements_by_name("q")
        assert len(found) == 1
        assert ("name", "q") in instr.collections

    def test_collections(self):
        document, instr = make_document()
        document.insert(document.create_element("form"))
        document.insert(document.create_element("img"))
        document.insert(document.create_element("a", {"href": "/x"}))
        document.insert(document.create_element("a", {"name": "anchor"}))
        document.insert(document.create_element("script"))
        assert len(document.collection("forms")) == 1
        assert len(document.collection("images")) == 1
        assert len(document.collection("links")) == 2
        assert len(document.collection("anchors")) == 1
        assert len(document.collection("scripts")) == 1

    def test_categories_of(self):
        document, _instr = make_document()
        img = document.create_element("img", {"name": "hero"})
        buckets = Document.categories_of(img)
        assert "tag:img" in buckets
        assert "images" in buckets
        assert "name:hero" in buckets


class TestScaffold:
    def test_ensure_root_idempotent(self):
        document = Document()
        first = document.ensure_root()
        second = document.ensure_root()
        assert first is second
        assert document.body.tag == "body"

    def test_all_elements(self):
        document, _instr = make_document()
        document.insert(document.create_element("div"))
        tags = [element.tag for element in document.all_elements()]
        assert tags == ["html", "body", "div"]
