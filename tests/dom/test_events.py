"""Tests for event dispatch planning (capture/at-target/bubble/default)."""

from repro.dom.document import Document
from repro.dom.events import (
    AT_TARGET,
    BUBBLE,
    CAPTURE,
    Event,
    default_action,
    plan_dispatch,
    propagation_path,
)


def make_page():
    document = Document()
    document.ensure_root()
    outer = document.create_element("div", {"id": "outer"})
    inner = document.create_element("button", {"id": "inner"})
    outer.raw_append(inner)
    document.insert(outer)
    return document, outer, inner


class TestPropagationPath:
    def test_path_ends_at_target(self):
        document, outer, inner = make_page()
        path = propagation_path(inner)
        assert path[-1] is inner
        assert outer in path
        assert document in path

    def test_path_of_detached_element(self):
        document = Document()
        element = document.create_element("div")
        assert propagation_path(element) == [element]


class TestPlanning:
    def test_at_target_attr_handler_first(self):
        _document, _outer, inner = make_page()
        inner.set_attr_handler("click", "attrHandler")
        inner.add_listener("click", "listener")
        plan = plan_dispatch(Event(type="click", target=inner))
        assert plan[0].via == "attr"
        assert plan[0].phase == AT_TARGET
        assert plan[1].via == "listener"

    def test_capture_listeners_run_top_down_before_target(self):
        document, outer, inner = make_page()
        outer.add_listener("click", "outerCapture", capture=True)
        inner.add_listener("click", "targetHandler")
        plan = plan_dispatch(Event(type="click", target=inner))
        phases = [inv.phase for inv in plan]
        assert phases.index(CAPTURE) < phases.index(AT_TARGET)

    def test_bubbling_runs_ancestors_after_target(self):
        _document, outer, inner = make_page()
        inner.add_listener("click", "t")
        outer.set_attr_handler("click", "bubbleAttr")
        plan = plan_dispatch(Event(type="click", target=inner))
        assert [inv.phase for inv in plan] == [AT_TARGET, BUBBLE]
        assert plan[1].current_target is outer

    def test_load_does_not_bubble(self):
        _document, outer, inner = make_page()
        outer.set_attr_handler("load", "outerLoad")
        inner.set_attr_handler("load", "innerLoad")
        plan = plan_dispatch(Event(type="load", target=inner))
        assert len(plan) == 1
        assert plan[0].current_target is inner

    def test_explicit_bubbles_flag(self):
        _document, outer, inner = make_page()
        outer.add_listener("custom", "h")
        plan = plan_dispatch(Event(type="custom", target=inner, bubbles=True))
        assert len(plan) == 1
        assert plan[0].phase == BUBBLE

    def test_no_handlers_empty_plan(self):
        _document, _outer, inner = make_page()
        assert plan_dispatch(Event(type="click", target=inner)) == []

    def test_handler_keys_identify_listeners(self):
        _document, _outer, inner = make_page()
        inner.add_listener("click", "first")
        inner.add_listener("click", "second")
        plan = plan_dispatch(Event(type="click", target=inner))
        assert plan[0].handler_key != plan[1].handler_key

    def test_attr_invocation_key_is_attr_slot(self):
        _document, _outer, inner = make_page()
        inner.set_attr_handler("click", "h")
        plan = plan_dispatch(Event(type="click", target=inner))
        assert plan[0].handler_key == "<attr>"


class TestDefaultAction:
    def test_javascript_href_click(self):
        document = Document()
        link = document.create_element("a", {"href": "javascript:go()"})
        event = Event(type="click", target=link)
        assert default_action(event) == "go()"

    def test_normal_href_no_action(self):
        document = Document()
        link = document.create_element("a", {"href": "/page"})
        assert default_action(Event(type="click", target=link)) is None

    def test_non_click_no_action(self):
        document = Document()
        link = document.create_element("a", {"href": "javascript:go()"})
        assert default_action(Event(type="mouseover", target=link)) is None

    def test_non_link_no_action(self):
        document = Document()
        div = document.create_element("div")
        assert default_action(Event(type="click", target=div)) is None
