"""Tests for the DOM node tree structure."""

from repro.dom.node import Node


class TestStructure:
    def test_append(self):
        parent = Node()
        child = Node()
        parent.raw_append(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_moves_from_old_parent(self):
        a, b, child = Node(), Node(), Node()
        a.raw_append(child)
        b.raw_append(child)
        assert child.parent is b
        assert a.children == []

    def test_insert_before(self):
        parent, first, second = Node(), Node(), Node()
        parent.raw_append(second)
        parent.raw_insert_before(first, second)
        assert parent.children == [first, second]

    def test_insert_before_none_appends(self):
        parent, child = Node(), Node()
        parent.raw_insert_before(child, None)
        assert parent.children == [child]

    def test_remove(self):
        parent, child = Node(), Node()
        parent.raw_append(child)
        parent.raw_remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_node_ids_unique(self):
        assert Node().node_id != Node().node_id


class TestTraversal:
    def make_tree(self):
        #      root
        #     /    \
        #    a      b
        #   / \      \
        #  c   d      e
        root, a, b, c, d, e = (Node() for _ in range(6))
        root.raw_append(a)
        root.raw_append(b)
        a.raw_append(c)
        a.raw_append(d)
        b.raw_append(e)
        return root, a, b, c, d, e

    def test_descendants_preorder(self):
        root, a, b, c, d, e = self.make_tree()
        assert root.descendants() == [a, c, d, b, e]

    def test_ancestors(self):
        root, a, _b, c, _d, _e = self.make_tree()
        assert c.ancestors() == [a, root]

    def test_root(self):
        root, _a, _b, c, _d, e = self.make_tree()
        assert c.root() is root
        assert e.root() is root
        assert root.root() is root

    def test_contains(self):
        root, a, b, c, _d, _e = self.make_tree()
        assert root.contains(c)
        assert a.contains(c)
        assert not b.contains(c)
        assert root.contains(root)

    def test_child_index(self):
        root, a, b, *_rest = self.make_tree()
        assert root.child_index(a) == 0
        assert root.child_index(b) == 1
