"""Tests for querySelector/querySelectorAll."""

from repro.browser.page import Browser
from repro.dom.document import Document, _parse_compound_selector
from repro.html.parser import parse_html


def make_document():
    document = Document("q.html")
    parse_html(
        document,
        """
        <div id="a" class="box big"></div>
        <div id="b" class="box"></div>
        <p id="c" class="big"></p>
        <span id="d"></span>
        """,
    )
    return document


class TestSelectorParsing:
    def test_tag_only(self):
        assert _parse_compound_selector("div") == ("div", None, [])

    def test_id_only(self):
        assert _parse_compound_selector("#dw") == ("", "dw", [])

    def test_class_only(self):
        assert _parse_compound_selector(".box") == ("", None, ["box"])

    def test_compound(self):
        assert _parse_compound_selector("div#a.box.big") == (
            "div",
            "a",
            ["box", "big"],
        )

    def test_case_insensitive_tag(self):
        assert _parse_compound_selector("DIV")[0] == "div"


class TestQueries:
    def test_by_id(self):
        document = make_document()
        assert document.query_selector("#a").element_id == "a"

    def test_by_tag(self):
        document = make_document()
        assert len(document.query_selector_all("div")) == 2

    def test_by_class(self):
        document = make_document()
        assert {el.element_id for el in document.query_selector_all(".box")} == {"a", "b"}

    def test_compound_tag_class(self):
        document = make_document()
        assert [el.element_id for el in document.query_selector_all("div.big")] == ["a"]

    def test_id_with_wrong_tag(self):
        document = make_document()
        assert document.query_selector("span#a") is None

    def test_group_selector(self):
        document = make_document()
        ids = {el.element_id for el in document.query_selector_all("#a, #d")}
        assert ids == {"a", "d"}

    def test_miss_returns_none(self):
        document = make_document()
        assert document.query_selector("#nothing") is None

    def test_no_duplicates_in_groups(self):
        document = make_document()
        assert len(document.query_selector_all("div, .box")) == 2


class TestInstrumentation:
    def test_id_miss_is_racing_read(self):
        """A timer's querySelector('#late') races with the div's parse,
        exactly like getElementById (Fig. 3).  (An *inline* script's read
        would be rule-1b-ordered before the parse — no race, correctly.)"""
        page = Browser(seed=0).load(
            """
            <script>setTimeout("probe = document.querySelector('#late') == null;", 1);</script>
            <div id="late"></div>
            """
        )
        races = [r for r in page.races if "late" in r.location.describe()]
        assert races

    def test_inline_read_is_ordered_no_race(self):
        page = Browser(seed=0).load(
            """
            <script>early = document.querySelector('#late') == null;</script>
            <div id="late"></div>
            """
        )
        assert page.interpreter.global_object.get_own("early") is True
        races = [r for r in page.races if "late" in r.location.describe()]
        assert races == []

    def test_query_selector_from_js(self):
        page = Browser(seed=0).load(
            """
            <div id="x" class="hit"></div>
            <script>
            byId = document.querySelector('#x').id;
            n = document.querySelectorAll('.hit').length;
            missing = document.querySelector('#none') == null;
            </script>
            """
        )
        g = page.interpreter.global_object
        assert g.get_own("byId") == "x"
        assert g.get_own("n") == 1.0
        assert g.get_own("missing") is True
