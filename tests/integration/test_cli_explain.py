"""CLI tests for race reports (--report-json/--report-html) and `explain`."""

import json

import pytest

from repro.__main__ import main
from repro.explain import validate_report_file


@pytest.fixture
def buggy_page(tmp_path):
    page = tmp_path / "page.html"
    page.write_text(
        '<input type="text" id="q" /><script src="hint.js"></script>'
    )
    hint = tmp_path / "hint.js"
    hint.write_text("document.getElementById('q').value = 'hint';")
    return page, hint


def check_args(buggy_page, *extra):
    page, hint = buggy_page
    return ["check", str(page), "--resource", f"hint.js={hint}", *extra]


class TestCheckReports:
    def test_report_json_is_schema_valid(self, buggy_page, tmp_path, capsys):
        out = tmp_path / "report.json"
        status = main(check_args(buggy_page, "--report-json", str(out)))
        assert status == 1
        document = validate_report_file(str(out))
        assert document["mode"] == "check"
        assert document["pages"][0]["evidence"]
        for evidence in document["pages"][0]["evidence"]:
            assert len(evidence["fingerprint"]) == 16
            for side in (evidence["prior"], evidence["current"]):
                assert side["path_from_nca"]
        assert f"race report (JSON) written to {out}" in capsys.readouterr().out

    def test_report_html_is_written(self, buggy_page, tmp_path, capsys):
        out = tmp_path / "report.html"
        status = main(check_args(buggy_page, "--report-html", str(out)))
        assert status == 1
        text = out.read_text()
        assert text.lstrip().lower().startswith("<!doctype html>")
        assert "<svg" in text

    def test_races_identical_with_and_without_reports(
        self, buggy_page, tmp_path, capsys
    ):
        """Report generation must not perturb detection (acceptance
        criterion): stdout race output is byte-identical modulo the two
        "report written" lines, under both HB backends."""
        for backend in ("graph", "chains"):
            main(check_args(buggy_page, "--hb-backend", backend))
            plain = capsys.readouterr().out
            main(check_args(
                buggy_page, "--hb-backend", backend,
                "--report-json", str(tmp_path / f"{backend}.json"),
                "--report-html", str(tmp_path / f"{backend}.html"),
            ))
            with_reports = capsys.readouterr().out
            stripped = "".join(
                line for line in with_reports.splitlines(keepends=True)
                if not line.startswith("race report (")
            )
            assert stripped == plain

    def test_backends_report_identical_fingerprints(
        self, buggy_page, tmp_path, capsys
    ):
        fingerprints = {}
        for backend in ("graph", "chains"):
            out = tmp_path / f"{backend}.json"
            main(check_args(
                buggy_page, "--hb-backend", backend,
                "--report-json", str(out),
            ))
            document = validate_report_file(str(out))
            assert document["hb_backend"] == backend
            fingerprints[backend] = sorted(
                evidence["fingerprint"]
                for page in document["pages"]
                for evidence in page["evidence"]
            )
        assert fingerprints["graph"] == fingerprints["chains"]


class TestExplain:
    @pytest.fixture
    def trace_path(self, buggy_page, tmp_path, capsys):
        path = tmp_path / "trace.json"
        main(check_args(buggy_page, "--json", str(path)))
        capsys.readouterr()
        return path

    def test_explains_all_races(self, trace_path, capsys):
        status = main(["explain", str(trace_path)])
        out = capsys.readouterr().out
        assert status == 1
        assert "nearest common HB ancestor" in out
        assert "fingerprint" in out

    def test_single_race_selection(self, trace_path, capsys):
        status = main(["explain", str(trace_path), "--race", "0"])
        out = capsys.readouterr().out
        assert status == 1
        assert "race #0" in out

    def test_bad_race_index_exits_2(self, trace_path, capsys):
        status = main(["explain", str(trace_path), "--race", "99"])
        assert status == 2
        assert "no race #99" in capsys.readouterr().err

    def test_chains_backend(self, trace_path, capsys):
        status = main([
            "explain", str(trace_path), "--hb-backend", "chains",
        ])
        assert status == 1
        assert "fingerprint" in capsys.readouterr().out

    def test_no_filters_flag(self, trace_path, capsys):
        filtered = main(["explain", str(trace_path)])
        out_filtered = capsys.readouterr().out
        raw = main(["explain", str(trace_path), "--no-filters"])
        out_raw = capsys.readouterr().out
        assert out_raw.count("fingerprint") >= out_filtered.count("fingerprint")


class TestCorpusReports:
    def test_corpus_report_aggregates_pages(self, tmp_path, capsys):
        json_out = tmp_path / "corpus.json"
        html_out = tmp_path / "corpus.html"
        status = main([
            "corpus", "--sites", "3",
            "--report-json", str(json_out),
            "--report-html", str(html_out),
        ])
        assert status == 0
        document = validate_report_file(str(json_out))
        assert document["mode"] == "corpus"
        assert len(document["pages"]) == 3
        assert document["totals"]["distinct_fingerprints"] == len(
            document["clusters"]
        )
        text = html_out.read_text()
        assert text.lstrip().lower().startswith("<!doctype html>")

    def test_corpus_json_new_fields(self, tmp_path, capsys):
        out = tmp_path / "tables.json"
        status = main(["corpus", "--sites", "3", "--json", str(out)])
        assert status == 0
        data = json.loads(out.read_text())
        assert "table1_harmful" in data
        assert "harmful_by_type" in data
        assert "filters_removed" in data
        assert all(
            isinstance(count, int) and count >= 0
            for count in data["filters_removed"].values()
        )
        assert sum(data["harmful_by_type"].values()) >= 0
