"""The examples are part of the public deliverable — they must all run."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(script, capsys, monkeypatch):
    if script.stem == "audit_fortune100":
        # The full corpus belongs to the benchmarks; run a slice here.
        monkeypatch.setattr(sys, "argv", [str(script), "6"])
    else:
        monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} produced no output"


def test_there_are_at_least_five_examples():
    assert len(EXAMPLES) >= 5
