"""Tests for the timer-slot race extension (paper Section 7 gap).

The paper: "we have not instrumented calls to clearTimeout and
clearInterval, which may race with the execution of handlers installed via
setTimeout and setInterval."  This reproduction instruments them; these
tests pin both the positive case (an unordered clear races with the
firing) and the negative cases (ordered creation/clear patterns stay
silent, so the paper's calibrated numbers are untouched).
"""

from repro.browser.page import Browser
from repro.core.locations import TimerSlotLocation


def load(html, **kwargs):
    return Browser(seed=0, **kwargs).load(html)


def timer_races(page):
    return [
        race
        for race in page.races
        if isinstance(race.location, TimerSlotLocation)
    ]


class TestClearRaces:
    def test_async_clear_races_with_firing(self):
        """An async script clears a timer set by the main page: the clear
        and the callback's firing are HB-unordered."""
        page = load(
            """
            <script>
            pending = setTimeout('fired = 1;', 30);
            </script>
            <script src='cancel.js' async='true'></script>
            """,
            resources={"cancel.js": "clearTimeout(pending);"},
        )
        races = timer_races(page)
        assert races, "clear vs fire must race"
        clear_writes = [
            access
            for access in (races[0].prior, races[0].current)
            if access.detail.get("clearing")
        ]
        # One side of at least one reported race is the clearing write.
        assert any(
            access.detail.get("clearing")
            for race in races
            for access in (race.prior, race.current)
        )

    def test_clear_from_event_handler_races(self):
        page = load(
            """
            <div id='stop' onclick='clearInterval(pollId);'></div>
            <script>
            pollId = setInterval('ticks = (typeof ticks == "undefined") ? 1 : ticks + 1;', 10);
            setTimeout('clearInterval(pollId);', 100);
            document.getElementById('stop').click();
            </script>
            """
        )
        assert timer_races(page)


class TestOrderedPatternsSilent:
    def test_creation_then_fire_never_races(self):
        """Rule 16 orders creation before firing — no timer race."""
        page = load("<script>setTimeout('x = 1;', 5);</script>")
        assert timer_races(page) == []

    def test_self_clearing_interval_never_races(self):
        """The common poll-until-done idiom clears from inside its own
        callback: same/ordered operations, no race (the Ford pattern)."""
        page = load(
            "<script>var n = 0; var id = setInterval(function() {"
            "n++; if (n >= 3) clearInterval(id); }, 5);</script>"
        )
        assert timer_races(page) == []

    def test_clear_before_schedule_completion_same_op(self):
        page = load(
            "<script>var id = setTimeout('x = 1;', 50); clearTimeout(id);</script>"
        )
        assert timer_races(page) == []

    def test_timer_races_filtered_from_form_report(self):
        """Timer-slot races classify as variable races and are removed by
        the form filter — Table 2 stays calibrated."""
        from repro import WebRacer

        racer = WebRacer(seed=0, explore=False, eager=False)
        report = racer.check_page(
            """
            <script>pending = setTimeout('fired = 1;', 30);</script>
            <script src='cancel.js' async='true'></script>
            """,
            resources={"cancel.js": "clearTimeout(pending);"},
        )
        assert any(
            isinstance(race.location, TimerSlotLocation)
            for race in report.raw_races
        )
        assert not any(
            isinstance(classified.race.location, TimerSlotLocation)
            for classified in report.classified.races
        )
