"""End-to-end CLI tests for --ledger, `repro history` and `repro diff`.

Pins the PR's acceptance criteria: two identical ledgered runs produce
byte-identical records modulo volatile fields, `diff --against last`
reports zero new/resolved fingerprints, and an injected slowdown trips
``--fail-on-regression``.
"""

import json

import pytest

from repro.__main__ import main
from repro.explain import validate_history_report, validate_run_record
from repro.obs.ledger import Ledger, build_run_record, strip_volatile


@pytest.fixture
def buggy_page(tmp_path):
    page = tmp_path / "page.html"
    page.write_text(
        '<input type="text" id="q" /><script src="hint.js"></script>'
    )
    hint = tmp_path / "hint.js"
    hint.write_text("document.getElementById('q').value = 'hint';")
    return page, hint


def run_check(capsys, page, hint, ledger, *extra):
    status = main(
        [
            "check", str(page),
            "--resource", f"hint.js={hint}",
            "--ledger", str(ledger),
            *extra,
        ]
    )
    return status, capsys.readouterr().out


class TestLedgerAppend:
    def test_check_appends_one_validated_record(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        status, out = run_check(capsys, page, hint, ledger_dir)
        assert status == 1  # the page is harmful; the run still ledgers
        assert "appended to" in out
        records = Ledger(str(ledger_dir)).records()
        assert len(records) == 1
        validate_run_record(records[0])
        record = records[0]
        assert record["command"] == "check"
        assert record["races"]
        assert all(race["verdict"] == "observed" for race in record["races"])
        assert record["phases"]["check_page"]["count"] == 1

    def test_identical_runs_byte_identical_modulo_volatile(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        run_check(capsys, page, hint, ledger_dir)
        first, second = Ledger(str(ledger_dir)).records()
        assert first["run_id"] != second["run_id"]
        assert json.dumps(
            strip_volatile(first), sort_keys=True
        ) == json.dumps(strip_volatile(second), sort_keys=True)

    def test_without_ledger_nothing_is_written(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        main(["check", str(page), "--resource", f"hint.js={hint}"])
        capsys.readouterr()
        assert not (tmp_path / "ledger").exists()

    def test_corpus_jobs_appends_exactly_one_record(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        status = main(
            [
                "corpus", "--sites", "3", "--jobs", "2",
                "--ledger", str(ledger_dir),
            ]
        )
        capsys.readouterr()
        assert status == 0
        records = Ledger(str(ledger_dir)).records()
        assert len(records) == 1
        assert records[0]["command"] == "corpus"


class TestHistory:
    def test_history_lists_runs_and_lifecycle(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        run_check(capsys, page, hint, ledger_dir)
        status = main(["history", "--ledger", str(ledger_dir)])
        out = capsys.readouterr().out
        assert status == 0
        assert "2 run(s)" in out
        assert "PERSISTING" in out

    def test_history_json_validates_and_html_is_self_contained(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        json_path = tmp_path / "history.json"
        html_path = tmp_path / "trend.html"
        status = main(
            [
                "history", "--ledger", str(ledger_dir),
                "--json", str(json_path), "--html", str(html_path),
            ]
        )
        capsys.readouterr()
        assert status == 0
        document = json.loads(json_path.read_text())
        validate_history_report(document)
        assert document["totals"]["runs"] == 1
        html = html_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html  # the sparklines
        assert "src=" not in html and "href=" not in html  # no external assets

    def test_history_command_filter(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        status = main(
            ["history", "--ledger", str(ledger_dir), "--command", "corpus"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "0 run(s)" in out

    def test_history_missing_ledger_exits_2(self, tmp_path, capsys):
        status = main(["history", "--ledger", str(tmp_path / "nope")])
        err = capsys.readouterr().err
        assert status == 2
        assert err.startswith("error: no ledger")
        assert len(err.strip().splitlines()) == 1


class TestDiff:
    def test_against_last_reports_zero_new_races(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        run_check(capsys, page, hint, ledger_dir)
        status = main(["diff", "--against", "last", "--ledger", str(ledger_dir)])
        out = capsys.readouterr().out
        assert status == 0
        assert "0 new, 0 resolved" in out

    def test_positional_run_references(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        run_check(capsys, page, hint, ledger_dir)
        status = main(["diff", "0", "-1", "--ledger", str(ledger_dir)])
        out = capsys.readouterr().out
        assert status == 0
        assert "0 new" in out

    def test_injected_slowdown_fails_regression_gate(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        ledger = Ledger(str(ledger_dir))
        baseline = ledger.records()[-1]
        # Inject an artificial 10x slowdown as a new comparable run.
        slow = build_run_record(
            baseline["command"],
            baseline["config"],
            baseline["races"],
            baseline["totals"],
            duration_ms=max(baseline["duration_ms"], 1.0) * 10.0,
        )
        ledger.append(slow)
        status = main(
            [
                "diff", "--against", "last", "--ledger", str(ledger_dir),
                "--fail-on-regression", "20",
            ]
        )
        out = capsys.readouterr().out
        assert status == 1
        assert "PERF REGRESSION" in out

    def test_no_regression_below_threshold(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        run_check(capsys, page, hint, ledger_dir)
        status = main(
            [
                "diff", "--against", "last", "--ledger", str(ledger_dir),
                "--fail-on-regression", "10000",
            ]
        )
        capsys.readouterr()
        assert status == 0

    def test_diff_json_output(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        run_check(capsys, page, hint, ledger_dir)
        out_path = tmp_path / "diff.json"
        status = main(
            [
                "diff", "--against", "last", "--ledger", str(ledger_dir),
                "--json", str(out_path),
            ]
        )
        capsys.readouterr()
        assert status == 0
        document = json.loads(out_path.read_text())
        assert document["new_races"] == []
        assert document["resolved_races"] == []
        assert any(p["phase"] == "<run>" for p in document["phases"])

    def test_against_without_baseline_exits_2(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        status = main(["diff", "--against", "last", "--ledger", str(ledger_dir)])
        err = capsys.readouterr().err
        assert status == 2
        assert err.startswith("error: no earlier")

    def test_against_last_on_empty_ledger_exits_2(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        ledger_dir.mkdir()
        (ledger_dir / "runs.jsonl").write_text("")
        status = main(
            ["diff", "--against", "last", "--ledger", str(ledger_dir)]
        )
        err = capsys.readouterr().err
        assert status == 2
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_against_last_on_missing_ledger_exits_2(self, tmp_path, capsys):
        status = main(
            ["diff", "--against", "last", "--ledger", str(tmp_path / "nope")]
        )
        err = capsys.readouterr().err
        assert status == 2
        assert err.startswith("error: no ledger")
        assert len(err.strip().splitlines()) == 1

    def test_diff_usage_errors(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        assert main(["diff", "--ledger", str(ledger_dir)]) == 2
        assert (
            main(["diff", "a", "b", "--against", "last", "--ledger",
                  str(ledger_dir)])
            == 2
        )
        assert (
            main(["diff", "--against", "last", "--ledger", str(ledger_dir),
                  "--fail-on-regression", "0"])
            == 2
        )
        capsys.readouterr()


class TestHistoryEdgeCases:
    """Trend HTML must survive degenerate series (the old sparkline pins)."""

    def test_single_run_trend_html_renders(
        self, buggy_page, tmp_path, capsys
    ):
        page, hint = buggy_page
        ledger_dir = tmp_path / "ledger"
        run_check(capsys, page, hint, ledger_dir)
        html_path = tmp_path / "trend.html"
        status = main(
            [
                "history", "--ledger", str(ledger_dir),
                "--html", str(html_path),
            ]
        )
        capsys.readouterr()
        assert status == 0
        html = html_path.read_text()
        # One run means a one-point series: a valid polyline, no NaN or
        # division-by-zero coordinates.
        assert "<svg" in html
        assert "nan" not in html.lower()
        assert "polyline" in html

    def test_clean_run_with_no_races_renders(self, tmp_path, capsys):
        page = tmp_path / "clean.html"
        page.write_text("<p>static page, no scripts</p>")
        ledger_dir = tmp_path / "ledger"
        status = main(["check", str(page), "--ledger", str(ledger_dir)])
        capsys.readouterr()
        assert status == 0
        records = Ledger(str(ledger_dir)).records()
        assert records[0]["races"] == []
        html_path = tmp_path / "trend.html"
        status = main(
            [
                "history", "--ledger", str(ledger_dir),
                "--html", str(html_path),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "no race fingerprints recorded" in html_path.read_text()
        assert "0 harmful" in out or "1 run(s)" in out

    def test_sparkline_degenerate_series(self):
        from repro.explain.trend_report import _sparkline_svg

        assert _sparkline_svg([], "empty") == ""
        single = _sparkline_svg([5.0], "one run")
        assert "polyline" in single and "nan" not in single.lower()
        flat = _sparkline_svg([0.0, 0.0, 0.0], "all zero")
        assert "polyline" in flat and "nan" not in flat.lower()


class TestLedgerAcrossCommands:
    def test_explore_and_predict_record_verdicts(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text(
            '<input type="text" id="q" /><script src="hint.js"></script>'
        )
        hint = tmp_path / "hint.js"
        hint.write_text("document.getElementById('q').value = 'hint';")
        ledger_dir = tmp_path / "ledger"
        status = main(
            [
                "explore", str(page), "--schedules", "3",
                "--ledger", str(ledger_dir),
            ]
        )
        capsys.readouterr()
        assert status == 0
        status = main(
            ["predict", str(page), "--budget", "3", "--ledger", str(ledger_dir)]
        )
        capsys.readouterr()
        assert status == 0
        records = Ledger(str(ledger_dir)).records()
        assert [r["command"] for r in records] == ["explore", "predict"]
        explore_verdicts = {r["verdict"] for r in records[0]["races"]}
        assert explore_verdicts <= {"stable", "schedule-sensitive"}
        predict_verdicts = {r["verdict"] for r in records[1]["races"]}
        assert predict_verdicts <= {
            "observed", "predicted+confirmed", "predicted-only",
        }
        # Replay instrumentation (satellite): explore's verification runs
        # show up as spans/counters in the run record.
        assert "explore.replay" in records[0]["phases"]
        assert records[0]["counters"]["explore.replays"] >= 1
        assert records[1]["counters"]["predict.pages"] == 1
        # Witness budget is only spent when a prediction needs confirming;
        # totals carry the count either way.
        assert records[1]["totals"]["predicted"] == (
            records[1]["counters"].get("predict.predicted", 0)
        )
