"""Integration tests for single-trace race prediction (`repro predict`).

The acceptance property of the prediction pipeline: from ONE recorded
FIFO execution of the polling page, SHB predicts a race the exact
detector does not report in that schedule, and a witness reordering
replay-confirms it — coverage the explore matrix needs N runs to reach.
"""

import json

import pytest

from repro.__main__ import main
from repro.explain.schedule_report import (
    assemble_predict_document,
    render_predict_text,
    validate_predict_document,
)
from repro.predict import (
    OUTCOME_CONFIRMED,
    OUTCOME_PREDICTED_ONLY,
    predict_page,
    predict_pages,
    witness_schedule_specs,
)
from repro.schedule_runner import PageInput

from .test_explore import POLL_HTML, POLL_RESOURCES


@pytest.fixture
def poll_page():
    return PageInput(url="poll.html", html=POLL_HTML, resources=dict(POLL_RESOURCES))


@pytest.fixture
def pages_dir(tmp_path):
    pages = tmp_path / "pages"
    pages.mkdir()
    (pages / "poll.html").write_text(POLL_HTML)
    for name, content in POLL_RESOURCES.items():
        (pages / name).write_text(content)
    return pages


@pytest.fixture(scope="module")
def poll_report():
    """One prediction pass over the polling page (shared, read-only)."""
    page = PageInput(url="poll.html", html=POLL_HTML, resources=dict(POLL_RESOURCES))
    return predict_page(page, seed=0, minimize=True)


class TestWitnessSchedules:
    def test_adversarial_first_then_seeded_randoms(self):
        specs = witness_schedule_specs(seed=0, budget=3)
        assert [s.policy for s in specs] == ["adversarial", "random", "random"]
        assert specs[0].seed is None
        assert specs[1].seed != specs[2].seed

    def test_budget_one_is_adversarial_only(self):
        assert [s.sid for s in witness_schedule_specs(0, 1)] == ["adversarial"]

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            witness_schedule_specs(0, 0)


class TestPredictPage:
    def test_single_trace_beats_the_observed_schedule(self, poll_report):
        """The tentpole acceptance: >= 1 predicted race that the exact
        detector does not report in the observed FIFO schedule, confirmed
        by replaying a witnessing reordering."""
        assert poll_report.ok
        assert poll_report.observed_fingerprints
        confirmed = poll_report.confirmed()
        assert confirmed
        for prediction in confirmed:
            assert prediction.fingerprint not in poll_report.observed_fingerprints
            assert prediction.outcome == OUTCOME_CONFIRMED
            assert prediction.witness_sid is not None
            assert prediction.witness_trace_dict is not None
            assert prediction.replay_ok is True

    def test_confirmation_came_from_a_witness_run(self, poll_report):
        confirmed = poll_report.confirmed()[0]
        witness = next(
            run
            for run in poll_report.witness_runs
            if run.sid == confirmed.witness_sid
        )
        assert confirmed.fingerprint in witness.fingerprints
        assert confirmed.fingerprint not in poll_report.observed_fingerprints

    def test_predictions_carry_classification_and_evidence(self, poll_report):
        for prediction in poll_report.predictions:
            assert prediction.status in ("schedulable", "conditional")
            assert prediction.race_type
            assert prediction.evidence is not None
            assert prediction.evidence["fingerprint"] == prediction.fingerprint
            assert len(prediction.op_pair) == 2
            if prediction.status == "conditional":
                assert prediction.blocking_rf

    def test_minimized_witness_recorded(self, poll_report):
        minimized = [p for p in poll_report.confirmed() if p.minimized]
        assert minimized
        outcome = minimized[0].minimized
        assert outcome["fingerprint"] == minimized[0].fingerprint
        assert (
            outcome["minimized_divergences"] <= outcome["original_divergences"]
        )

    def test_shb_accounting_present(self, poll_report):
        assert poll_report.rf_edges > 0
        assert poll_report.rf_racy > 0
        assert "SHB:" in poll_report.shb_summary
        assert poll_report.runs_executed > 1
        assert poll_report.base_trace_dict is not None

    def test_crash_isolated_into_report_error(self):
        broken = PageInput(url="broken.html", html=None, resources={})
        report = predict_page(broken, seed=0)
        assert not report.ok
        assert report.error
        assert report.predictions == []

    def test_shb_online_backend_accepted(self, poll_page):
        report = predict_page(poll_page, seed=0, hb_backend="shb", budget=2)
        assert report.ok


class TestPredictDocument:
    def test_document_validates_and_counts(self, poll_report):
        document = assemble_predict_document([poll_report])
        validate_predict_document(document)
        totals = document["totals"]
        assert totals["pages"] == 1
        assert totals["predicted"] == len(poll_report.predictions)
        assert totals["confirmed"] == len(poll_report.confirmed())
        assert (
            totals["predicted_only"]
            == totals["predicted"] - totals["confirmed"]
        )

    def test_document_is_deterministic(self, poll_page):
        page2 = PageInput(
            url="poll.html", html=POLL_HTML, resources=dict(POLL_RESOURCES)
        )
        first = assemble_predict_document([predict_page(poll_page, seed=0)])
        second = assemble_predict_document([predict_page(page2, seed=0)])
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_evidence_can_be_omitted(self, poll_report):
        document = assemble_predict_document([poll_report], with_evidence=False)
        validate_predict_document(document)
        for page in document["pages"]:
            for prediction in page["predictions"]:
                assert prediction.get("evidence") is None

    def test_render_mentions_outcomes(self, poll_report):
        document = assemble_predict_document([poll_report])
        text = render_predict_text(document)
        assert OUTCOME_CONFIRMED in text
        assert "confirmed by replay" in text

    def test_failed_page_documented(self):
        broken = PageInput(url="broken.html", html=None, resources={})
        reports = predict_pages([broken], seed=0)
        document = assemble_predict_document(reports)
        validate_predict_document(document)
        assert document["pages"][0]["error"]


class TestPredictCli:
    def test_predict_writes_validated_json(self, pages_dir, tmp_path, capsys):
        out_json = tmp_path / "predict.json"
        status = main([
            "predict", str(pages_dir), "--seed", "0",
            "--json", str(out_json),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "predicted races for 1 page(s)" in out
        assert OUTCOME_CONFIRMED in out
        document = json.loads(out_json.read_text())
        validate_predict_document(document)
        assert document["totals"]["confirmed"] >= 1

    def test_minimize_flag_records_minimization(self, pages_dir, capsys):
        status = main([
            "predict", str(pages_dir), "--minimize", "--budget", "4",
        ])
        assert status == 0
        assert "minimized to" in capsys.readouterr().out

    def test_bad_budget_exits_2(self, pages_dir, capsys):
        assert main(["predict", str(pages_dir), "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_bad_resource_mapping_exits_2(self, pages_dir, capsys):
        page = pages_dir / "poll.html"
        status = main(["predict", str(page), "--resource", "noequals"])
        assert status == 2
        assert "expected url=path" in capsys.readouterr().err

    def test_missing_resource_file_exits_2(self, pages_dir, capsys):
        page = pages_dir / "poll.html"
        status = main([
            "predict", str(page), "--resource", "lib.js=/nonexistent/lib.js",
        ])
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert main(["predict", "/nonexistent/pages"]) == 2

    def test_unwritable_json_exits_2(self, pages_dir, capsys):
        status = main([
            "predict", str(pages_dir), "--json", "/nonexistent/dir/out.json",
        ])
        assert status == 2
        assert "does not exist" in capsys.readouterr().err

    def test_file_mode_with_resource_mappings(self, pages_dir, capsys):
        page = pages_dir / "poll.html"
        status = main([
            "predict", str(page),
            "--resource", f"lib.js={pages_dir / 'lib.js'}",
            "--resource", f"boot.js={pages_dir / 'boot.js'}",
        ])
        assert status == 0
        assert OUTCOME_CONFIRMED in capsys.readouterr().out


class TestShbBackendCli:
    def test_check_surfaces_predictions(self, pages_dir, capsys):
        status = main([
            "check", str(pages_dir / "poll.html"), "--hb-backend", "shb",
            "--resource", f"lib.js={pages_dir / 'lib.js'}",
            "--resource", f"boot.js={pages_dir / 'boot.js'}",
        ])
        assert status in (0, 1)
        out = capsys.readouterr().out
        assert "predicted (SHB)" in out
        assert "[schedulable]" in out or "[conditional]" in out

    def test_check_plain_backend_prints_no_predictions(self, pages_dir, capsys):
        main([
            "check", str(pages_dir / "poll.html"),
            "--resource", f"lib.js={pages_dir / 'lib.js'}",
            "--resource", f"boot.js={pages_dir / 'boot.js'}",
        ])
        assert "predicted" not in capsys.readouterr().out

    def test_analyze_replays_predictions_offline(
        self, pages_dir, tmp_path, capsys
    ):
        trace_json = tmp_path / "trace.json"
        main([
            "check", str(pages_dir / "poll.html"),
            "--resource", f"lib.js={pages_dir / 'lib.js'}",
            "--resource", f"boot.js={pages_dir / 'boot.js'}",
            "--json", str(trace_json),
        ])
        capsys.readouterr()
        status = main(["analyze", str(trace_json), "--hb-backend", "shb"])
        assert status in (0, 1)
        out = capsys.readouterr().out
        assert "SHB:" in out
        assert "predicted races (SHB" in out
