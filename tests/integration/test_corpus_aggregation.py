"""CorpusReport aggregation over SiteResult summaries.

The parallel runner moved every table aggregation off live
``PageReport.page`` graphs onto picklable :class:`SiteResult` records.
These tests pin the edge cases that move exposed: empty corpora, corpora
where every site failed, and — most importantly — that a ``SiteResult``
summary aggregates to exactly the same numbers as the live report it
summarizes.
"""

import pytest

from repro import WebRacer
from repro.sites import build_corpus
from repro.webracer import RACE_TYPES, CorpusReport, SiteResult


@pytest.fixture(scope="module")
def small_corpus_report():
    sites = build_corpus(master_seed=0, limit=6)
    return WebRacer(seed=0).check_corpus(sites)


class TestSummaryFidelity:
    """SiteResult must reproduce its PageReport's aggregate numbers."""

    def test_counts_match_live_page_report(self, small_corpus_report):
        for result in small_corpus_report.reports:
            live = result.page_report
            assert live is not None  # check_corpus keeps pages by default
            assert result.raw_counts() == live.raw_counts()
            assert result.filtered_counts() == live.filtered_counts()
            assert result.harmful_counts() == live.harmful_counts()
            assert (
                result.raw_harmful_counts()
                == live.raw_classified.harmful_counts()
            )
            assert result.filter_removed == dict(live.filter_removed)
            assert result.operations == len(live.trace.operations)
            assert result.accesses == len(live.trace.accesses)

    def test_races_mirror_classified_list(self, small_corpus_report):
        for result in small_corpus_report.reports:
            live = result.page_report
            assert len(result.races) == len(live.classified.races)
            for summary, classified in zip(
                result.races, live.classified.races
            ):
                assert summary["type"] == classified.race_type
                assert summary["harmful"] == classified.harmful
                assert summary["description"] == classified.describe()

    def test_tables_match_report_built_from_live_pages(
        self, small_corpus_report
    ):
        rebuilt = CorpusReport(
            reports=[
                SiteResult.from_page_report(i, result.page_report)
                for i, result in enumerate(small_corpus_report.reports)
            ]
        )
        assert rebuilt.table1() == small_corpus_report.table1()
        assert rebuilt.table2() == small_corpus_report.table2()
        assert rebuilt.table2_totals() == small_corpus_report.table2_totals()
        assert (
            rebuilt.filters_removed_totals()
            == small_corpus_report.filters_removed_totals()
        )
        assert (
            rebuilt.raw_harmful_totals()
            == small_corpus_report.raw_harmful_totals()
        )

    def test_from_page_report_drops_page_unless_asked(self, small_corpus_report):
        live = small_corpus_report.reports[0].page_report
        slim = SiteResult.from_page_report(0, live)
        kept = SiteResult.from_page_report(0, live, keep_page=True)
        assert slim.page_report is None
        assert kept.page_report is live
        # keep_page affects only the live reference, not the summary.
        assert slim == kept


class TestEmptyCorpus:
    def test_tables_over_no_sites(self):
        report = CorpusReport()
        assert report.reports == []
        table1 = report.table1()
        for race_type in list(RACE_TYPES) + ["all"]:
            assert table1[race_type] == {"mean": 0, "median": 0, "max": 0}
        assert report.table2() == []
        assert report.table2_totals() == {t: (0, 0) for t in RACE_TYPES}
        assert report.sites_with_filtered_races() == 0
        assert report.filters_removed_totals() == {}
        assert report.raw_harmful_totals() == {t: 0 for t in RACE_TYPES}

    def test_cli_sites_zero_sequential(self, capsys):
        assert main_corpus(["--sites", "0"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_cli_sites_zero_parallel(self, capsys):
        assert main_corpus(["--sites", "0", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestAllSitesFailed:
    @pytest.fixture
    def failed_report(self):
        return CorpusReport(
            reports=[
                SiteResult(index=0, url="a.com", error="RuntimeError: x"),
                SiteResult(index=1, url="b.com", error="timeout: exceeded"),
            ]
        )

    def test_failures_partition(self, failed_report):
        assert failed_report.ok() == []
        assert len(failed_report.failed()) == 2

    def test_tables_degrade_to_empty(self, failed_report):
        assert failed_report.table2() == []
        assert failed_report.table1()["all"] == {
            "mean": 0, "median": 0, "max": 0,
        }
        assert failed_report.filters_removed_totals() == {}

    def test_mixed_report_counts_only_successes(self, small_corpus_report):
        mixed = CorpusReport(
            reports=list(small_corpus_report.reports)
            + [SiteResult(index=99, url="down.com", error="boom")]
        )
        assert mixed.table1() == small_corpus_report.table1()
        assert mixed.table2_totals() == small_corpus_report.table2_totals()
        assert len(mixed.failed()) == 1


def main_corpus(extra):
    from repro.__main__ import main

    return main(["corpus"] + extra)
