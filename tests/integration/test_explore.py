"""Integration tests for multi-schedule exploration (`repro explore`)."""

import json

import pytest

from repro.__main__ import main
from repro.browser.scheduler import ScheduleTrace
from repro.explain.schedule_report import (
    EXPLORE_FORMAT_NAME,
    assemble_explore_document,
    validate_explore_document,
)
from repro.schedule_runner import (
    PageInput,
    ScheduleSpec,
    explore_pages,
    load_page_inputs,
    minimize_schedule,
    replay_run,
    run_page_schedule,
    schedule_matrix,
)

# The paper's Section 2.3 hidden-crash mechanism, which is what makes
# races *schedule-sensitive*: boot.js calls initWidget() eagerly, which
# crashes (and hides boot.js's later statements) in exactly the schedules
# where the async lib.js has not arrived yet.
POLL_HTML = """<html><body>
<div id="status">loading</div>
<input type="text" id="q" />
<script>
var inited = 0;
var poll = setInterval('if (window.libReady) { clearInterval(poll); initWidget(); }', 4);
</script>
<script src="lib.js" async></script>
<script src="boot.js"></script>
</body></html>"""

POLL_RESOURCES = {
    "lib.js": (
        "function initWidget() { inited = inited + 1; "
        "document.getElementById('status').innerHTML = 'ready'; }\n"
        "window.libReady = true;\n"
    ),
    "boot.js": (
        "initWidget();\n"
        "document.getElementById('status').innerHTML = 'booted';\n"
        "inited = 100;\n"
    ),
}


@pytest.fixture
def poll_page():
    return PageInput(url="poll.html", html=POLL_HTML, resources=dict(POLL_RESOURCES))


@pytest.fixture
def pages_dir(tmp_path):
    pages = tmp_path / "pages"
    pages.mkdir()
    (pages / "poll.html").write_text(POLL_HTML)
    for name, content in POLL_RESOURCES.items():
        (pages / name).write_text(content)
    return pages


class TestScheduleMatrix:
    def test_width_one_is_fifo_only(self):
        assert [spec.sid for spec in schedule_matrix(1)] == ["fifo"]

    def test_default_width(self):
        sids = [spec.sid for spec in schedule_matrix(8, seed=0)]
        assert sids == [
            "fifo", "adversarial",
            "random-0", "random-1", "random-2",
            "random-3", "random-4", "random-5",
        ]

    def test_random_seeds_derive_from_master_seed(self):
        a = schedule_matrix(5, seed=0)
        b = schedule_matrix(5, seed=1)
        assert [s.seed for s in a[2:]] != [s.seed for s in b[2:]]

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            schedule_matrix(0)


class TestLoadPageInputs:
    def test_directory_mode(self, pages_dir):
        pages = load_page_inputs(str(pages_dir))
        assert [p.url.endswith("poll.html") for p in pages] == [True]
        assert set(pages[0].resources) == {"lib.js", "boot.js"}

    def test_single_file_mode(self, pages_dir):
        pages = load_page_inputs(str(pages_dir / "poll.html"))
        assert len(pages) == 1
        assert pages[0].resources == {}

    def test_missing_path(self):
        with pytest.raises(FileNotFoundError):
            load_page_inputs("/nonexistent/nowhere")


class TestExplorePages:
    def test_matrix_finds_schedule_sensitive_races(self, poll_page):
        report = explore_pages([poll_page], schedules=8, seed=0)
        assert report.sensitive_count() >= 1
        merged = report.pages[0]
        sensitive = merged.schedule_sensitive()
        # Every sensitive race names a proper subset of the OK schedules.
        ok = sum(1 for run in merged.runs if run.ok)
        for race in sensitive:
            assert 0 < len(race["witnesses"]) < ok

    def test_exploration_beats_plain_fifo(self, poll_page):
        """The acceptance property: the matrix union contains fingerprints
        a single FIFO run cannot see."""
        report = explore_pages([poll_page], schedules=8, seed=0)
        fifo_run = next(
            run for run in report.pages[0].runs if run.sid == "fifo"
        )
        union = {race["fingerprint"] for race in report.pages[0].races}
        assert union - set(fifo_run.fingerprints)

    def test_every_run_replay_verified(self, poll_page):
        report = explore_pages([poll_page], schedules=6, seed=0)
        for run in report.pages[0].runs:
            assert run.ok and run.replay_ok is True

    def test_deterministic_across_calls(self, poll_page):
        doc1 = assemble_explore_document(
            explore_pages([poll_page], schedules=6, seed=0)
        )
        doc2 = assemble_explore_document(
            explore_pages([poll_page], schedules=6, seed=0)
        )
        assert json.dumps(doc1, sort_keys=True) == json.dumps(doc2, sort_keys=True)

    def test_parallel_matches_sequential(self, poll_page):
        sequential = assemble_explore_document(
            explore_pages([poll_page], schedules=6, seed=0, jobs=1)
        )
        parallel = assemble_explore_document(
            explore_pages([poll_page], schedules=6, seed=0, jobs=3)
        )
        assert json.dumps(sequential, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_crash_isolation(self):
        bad = PageInput(url="bad.html", html=None, resources={})  # type: ignore
        report = explore_pages([bad], schedules=2, seed=0)
        assert all(not run.ok for run in report.pages[0].runs)
        assert report.pages[0].races == []

    def test_document_validates(self, poll_page):
        document = assemble_explore_document(
            explore_pages([poll_page], schedules=4, seed=0)
        )
        validate_explore_document(document)
        assert document["format"] == EXPLORE_FORMAT_NAME


class TestTraceReplayFromDisk:
    def test_saved_trace_replays_to_same_fingerprints(self, poll_page, tmp_path):
        spec = ScheduleSpec("random-0", "random", 12345)
        result = run_page_schedule(poll_page, spec, seed=0, verify_replay=False)
        assert result.ok
        path = str(tmp_path / "trace.json")
        result.trace().save(path)
        loaded = ScheduleTrace.load(path)
        assert replay_run(poll_page, loaded, seed=0) == result.fingerprints


class TestMinimization:
    def test_minimize_sensitive_race(self, poll_page):
        report = explore_pages([poll_page], schedules=8, seed=0)
        sensitive = report.pages[0].schedule_sensitive()
        assert sensitive
        target = sensitive[0]["fingerprint"]
        _page, run = report.find_witness(target)
        outcome = minimize_schedule(poll_page, run.trace(), target, seed=0)
        assert outcome.minimized_divergences <= outcome.original_divergences
        # The minimized trace stands on its own: replaying it still
        # reproduces the target fingerprint.
        assert target in replay_run(poll_page, outcome.minimized, seed=0)

    def test_minimize_unreproducible_fingerprint_raises(self, poll_page):
        spec = ScheduleSpec("fifo", "fifo")
        result = run_page_schedule(poll_page, spec, seed=0, verify_replay=False)
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize_schedule(poll_page, result.trace(), "0" * 16, seed=0)


class TestExploreCli:
    def test_end_to_end(self, pages_dir, tmp_path, capsys):
        out_json = tmp_path / "explore.json"
        traces = tmp_path / "traces"
        status = main([
            "explore", str(pages_dir), "--schedules", "6", "--seed", "0",
            "--json", str(out_json), "--traces-dir", str(traces),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "schedule-sensitive" in out
        document = json.loads(out_json.read_text())
        validate_explore_document(document)
        assert document["totals"]["races_schedule_sensitive"] >= 1
        saved = sorted(p.name for p in traces.iterdir())
        assert len(saved) == 6  # one trace per schedule for the one page
        ScheduleTrace.load(str(traces / saved[0]))

    def test_byte_identical_json(self, pages_dir, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        main(["explore", str(pages_dir), "--schedules", "4", "--json", str(first)])
        main(["explore", str(pages_dir), "--schedules", "4", "--json", str(second)])
        assert first.read_bytes() == second.read_bytes()

    def test_minimize_flag(self, pages_dir, tmp_path, capsys):
        out_json = tmp_path / "explore.json"
        status = main([
            "explore", str(pages_dir), "--schedules", "6",
            "--json", str(out_json),
        ])
        assert status == 0
        document = json.loads(out_json.read_text())
        sensitive = [
            race
            for page in document["pages"]
            for race in page["races"]
            if not race["stable"]
        ]
        capsys.readouterr()
        target = sensitive[0]["fingerprint"]
        status = main([
            "explore", str(pages_dir), "--schedules", "6", "--minimize", target,
        ])
        assert status == 0
        assert f"minimized {target}" in capsys.readouterr().out

    def test_minimize_unknown_fingerprint_exits_2(self, pages_dir, capsys):
        status = main([
            "explore", str(pages_dir), "--schedules", "2",
            "--minimize", "f" * 16,
        ])
        assert status == 2
        err = capsys.readouterr().err
        assert "not witnessed" in err
        assert len(err.strip().splitlines()) == 1  # one-line diagnostic

    def test_minimize_unknown_fingerprint_exits_2_with_jobs(
        self, pages_dir, capsys
    ):
        """The parallel matrix path must apply the same guard — exit 2
        with a one-line stderr, no traceback, no partial artifacts."""
        status = main([
            "explore", str(pages_dir), "--schedules", "2", "--jobs", "2",
            "--minimize", "f" * 16,
        ])
        assert status == 2
        err = capsys.readouterr().err
        assert "not witnessed" in err
        assert len(err.strip().splitlines()) == 1

    def test_minimize_empty_fingerprint_exits_2(self, pages_dir, capsys):
        """An empty --minimize used to be silently ignored (falsy check);
        worse, an empty string prefix-matches every witnessed fingerprint.
        It must be rejected up front."""
        status = main([
            "explore", str(pages_dir), "--schedules", "2", "--minimize", "",
        ])
        assert status == 2
        assert "non-empty" in capsys.readouterr().err

    def test_bad_schedules_flag_exits_2(self, pages_dir, capsys):
        assert main(["explore", str(pages_dir), "--schedules", "0"]) == 2

    def test_missing_path_exits_2(self, capsys):
        assert main(["explore", "/nonexistent/pages"]) == 2


class TestSchedulerFlags:
    def test_schedule_seed_requires_random(self, pages_dir, capsys):
        page = pages_dir / "poll.html"
        status = main(["check", str(page), "--schedule-seed", "3"])
        assert status == 2
        assert "--scheduler random" in capsys.readouterr().err

    def test_schedule_seed_with_random_accepted(self, pages_dir, capsys):
        page = pages_dir / "poll.html"
        status = main([
            "check", str(page), "--scheduler", "random", "--schedule-seed", "3",
        ])
        assert status in (0, 1)

    def test_corpus_rejects_schedule_seed_without_random(self, capsys):
        status = main(["corpus", "--sites", "1", "--schedule-seed", "9"])
        assert status == 2

    def test_adversarial_scheduler_on_check(self, pages_dir, capsys):
        page = pages_dir / "poll.html"
        status = main(["check", str(page), "--scheduler", "adversarial"])
        assert status in (0, 1)
