"""Test package."""
