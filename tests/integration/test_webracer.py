"""Tests for the WebRacer facade and corpus reporting."""

from repro import WebRacer
from repro.core.report import EVENT_DISPATCH, FUNCTION, HTML, VARIABLE
from repro.sites import SiteSpec, build_site
from repro.webracer import CorpusReport, PageReport


class TestCheckPage:
    def test_clean_page_no_races(self):
        racer = WebRacer(seed=0)
        report = racer.check_page("<div>static content</div>")
        assert report.raw_races == []
        assert report.filtered_races == []
        assert report.classified.total() == 0

    def test_filters_can_be_disabled(self):
        html = (
            "<script src='a.js' async='true'></script>"
            "<script src='b.js' async='true'></script>"
        )
        resources = {"a.js": "shared = 1;", "b.js": "shared = 2;"}
        filtered = WebRacer(seed=0).check_page(html, resources=resources)
        unfiltered = WebRacer(seed=0, apply_filters=False).check_page(
            html, resources=resources
        )
        assert len(filtered.filtered_races) < len(unfiltered.filtered_races)

    def test_raw_counts_unaffected_by_filters(self):
        html = (
            "<script src='a.js' async='true'></script>"
            "<script src='b.js' async='true'></script>"
        )
        resources = {"a.js": "shared = 1;", "b.js": "shared = 2;"}
        report = WebRacer(seed=0).check_page(html, resources=resources)
        assert report.raw_counts()[VARIABLE] >= 1
        assert report.filtered_counts()[VARIABLE] == 0

    def test_summary_text(self):
        report = WebRacer(seed=0).check_page("<div></div>", url="empty.html")
        assert "empty.html" in report.summary()

    def test_explore_flag_controls_auto_exploration(self):
        html = "<div id='d' onmouseover='hovered = 1;'></div>"
        explored = WebRacer(seed=0, explore=True, eager=False).check_page(html)
        not_explored = WebRacer(seed=0, explore=False, eager=False).check_page(html)
        assert explored.page.interpreter.global_object.get_own("hovered") == 1.0
        assert not not_explored.page.interpreter.global_object.has_own("hovered")


class TestCheckSite:
    def test_site_expectations_met(self):
        site = build_site(
            SiteSpec(name="Mini")
            .add("valero_email_link")
            .add("southwest_form_hint")
            .add("static_noise")
        )
        report = WebRacer(seed=4).check_site(site)
        assert report.filtered_counts()[HTML] == 1
        assert report.filtered_counts()[VARIABLE] == 1
        assert report.harmful_counts()[HTML] == 1
        assert report.harmful_counts()[VARIABLE] == 1


class TestCorpusReport:
    def make_corpus_report(self):
        sites = [
            build_site(SiteSpec(name="S1").add("valero_email_link")),
            build_site(SiteSpec(name="S2").add("gomez_monitoring", images=2)),
            build_site(SiteSpec(name="S3").add("static_noise")),
        ]
        return WebRacer(seed=1).check_corpus(sites)

    def test_table1_shape(self):
        corpus = self.make_corpus_report()
        table1 = corpus.table1()
        assert set(table1) == {HTML, FUNCTION, VARIABLE, EVENT_DISPATCH, "all"}
        for row in table1.values():
            assert set(row) == {"mean", "median", "max"}
        assert table1[HTML]["max"] >= 1
        assert table1["all"]["mean"] >= table1[HTML]["mean"]

    def test_table2_elides_clean_sites(self):
        corpus = self.make_corpus_report()
        rows = corpus.table2()
        assert {row["site"] for row in rows} == {"S1", "S2"}

    def test_table2_totals(self):
        corpus = self.make_corpus_report()
        totals = corpus.table2_totals()
        assert totals[HTML] == (1, 1)
        assert totals[EVENT_DISPATCH] == (2, 2)

    def test_sites_with_filtered_races(self):
        corpus = self.make_corpus_report()
        assert corpus.sites_with_filtered_races() == 2

    def test_empty_corpus(self):
        corpus = CorpusReport()
        assert corpus.table1()["all"]["mean"] == 0
        assert corpus.table2() == []


class TestDeterminism:
    HTML = """
    <script>x = 1;</script>
    <iframe src="a.html"></iframe>
    <iframe src="b.html"></iframe>
    <img src="p.png">
    <script src="lib.js" async="true"></script>
    """
    RESOURCES = {
        "a.html": "<script>x = 2;</script>",
        "b.html": "<script>y = x;</script>",
        "p.png": "b",
        "lib.js": "x = 3;",
    }

    def signature(self, seed, scheduler="random"):
        racer = WebRacer(seed=seed, scheduler=scheduler)
        report = racer.check_page(self.HTML, resources=dict(self.RESOURCES))
        return (
            len(report.raw_races),
            tuple(sorted(c.race_type for c in report.classified.races)),
            len(report.trace.accesses),
            len(report.trace.operations),
        )

    def test_same_seed_same_results(self):
        assert self.signature(7) == self.signature(7)

    def test_same_seed_same_results_fifo(self):
        assert self.signature(3, "fifo") == self.signature(3, "fifo")

    def test_race_detection_stable_across_seeds(self):
        """The x variable race must be found under every interleaving —
        that is the point of happens-before detection (one observed run
        suffices, regardless of schedule)."""
        for seed in range(6):
            racer = WebRacer(seed=seed, scheduler="random", apply_filters=False)
            report = racer.check_page(self.HTML, resources=dict(self.RESOURCES))
            raced_names = {
                getattr(c.race.location, "name", "")
                for c in report.classified.races
            }
            assert "x" in raced_names, f"seed {seed} missed the x race"
