"""The sharded corpus runner: determinism, isolation, and obs merge.

Pins the tentpole contract of ``repro corpus --jobs N``:

* parallel and sequential runs are byte-identical (stdout modulo the
  output-file name lines, ``--json``/``--report-json`` files exactly);
* a crashing or over-deadline site yields a recorded site error, a
  completed run and a non-crashing report, in both modes;
* worker instrumentation shards merge into one coherent per-site profile.

The fault-injection tests monkeypatch the deterministic site builder and
rely on the runner's fork start method to carry the patch into workers,
so they are skipped where fork is unavailable.
"""

import json
import multiprocessing
import pickle
import time

import pytest

from repro import WebRacer
from repro.__main__ import main
from repro.corpus_runner import resolve_jobs, run_corpus_parallel
from repro.webracer import CorpusReport, SiteResult

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="fault injection needs the fork start method"
)


def _scrub(out: str) -> str:
    """Drop the output-path announcement lines (they name the tmp file)."""
    return "\n".join(
        line for line in out.splitlines() if not line.endswith((".json", ".html"))
    )


class TestParallelIdentity:
    def test_stdout_and_json_identical_to_sequential(self, tmp_path, capsys):
        seq_json = tmp_path / "seq.json"
        par_json = tmp_path / "par.json"
        assert main(["corpus", "--sites", "10", "--json", str(seq_json)]) == 0
        seq_out = capsys.readouterr().out
        assert (
            main(["corpus", "--sites", "10", "--jobs", "2", "--json", str(par_json)])
            == 0
        )
        par_out = capsys.readouterr().out
        assert _scrub(seq_out) == _scrub(par_out)
        assert seq_json.read_bytes() == par_json.read_bytes()

    def test_report_json_identical_to_sequential(self, tmp_path, capsys):
        seq_report = tmp_path / "seq-report.json"
        par_report = tmp_path / "par-report.json"
        main(["corpus", "--sites", "6", "--report-json", str(seq_report)])
        main([
            "corpus", "--sites", "6", "--jobs", "2",
            "--report-json", str(par_report),
        ])
        capsys.readouterr()
        assert seq_report.read_bytes() == par_report.read_bytes()
        document = json.loads(par_report.read_text())
        assert document["mode"] == "corpus"
        assert len(document["pages"]) == 6

    def test_jobs_zero_uses_all_cpus(self, capsys):
        assert resolve_jobs(0) >= 1
        status = main(["corpus", "--sites", "3", "--jobs", "0"])
        assert status == 0
        assert "Table 2" in capsys.readouterr().out

    def test_library_entry_matches_sequential_aggregates(self):
        from repro.sites import build_corpus

        sites = build_corpus(master_seed=0, limit=5)
        sequential = WebRacer(seed=0).check_corpus(sites)
        parallel = WebRacer(seed=0).check_corpus_parallel(
            master_seed=0, limit=5, jobs=2
        )
        assert parallel.table1() == sequential.table1()
        assert parallel.table2() == sequential.table2()
        assert parallel.table2_totals() == sequential.table2_totals()
        assert (
            parallel.filters_removed_totals()
            == sequential.filters_removed_totals()
        )

    def test_results_arrive_in_site_index_order(self):
        results = run_corpus_parallel(master_seed=0, limit=4, jobs=2)
        assert [result.index for result in results] == [0, 1, 2, 3]

    def test_site_results_are_picklable(self):
        results = run_corpus_parallel(master_seed=0, limit=2, jobs=2)
        clone = pickle.loads(pickle.dumps(results))
        assert clone == results


@needs_fork
class TestFailureIsolation:
    def test_crashing_site_records_error_and_run_completes(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.sites.corpus as corpus_mod

        real_build = corpus_mod.build_site

        def exploding_build(spec):
            if spec.name == "AmericanExpress":  # site index 1
                raise RuntimeError("injected build failure")
            return real_build(spec)

        monkeypatch.setattr(corpus_mod, "build_site", exploding_build)
        out_json = tmp_path / "tables.json"
        status = main([
            "corpus", "--sites", "4", "--jobs", "2", "--json", str(out_json),
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "site errors: 1 of 4 sites" in out
        assert "RuntimeError: injected build failure" in out
        tables = json.loads(out_json.read_text())
        assert tables["sites_failed"] == 1
        assert tables["site_errors"][0]["index"] == 1
        assert "RuntimeError" in tables["site_errors"][0]["error"]
        # The other three sites still aggregated.
        assert tables["sites_checked"] == 4

    def test_timeout_site_records_error_and_run_completes(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.sites.corpus as corpus_mod

        real_build = corpus_mod.build_site

        def stalling_build(spec):
            if spec.name == "Allstate":  # site index 0
                time.sleep(30)
            return real_build(spec)

        monkeypatch.setattr(corpus_mod, "build_site", stalling_build)
        out_json = tmp_path / "tables.json"
        status = main([
            "corpus", "--sites", "3", "--jobs", "2",
            "--site-timeout", "0.3", "--json", str(out_json),
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "site errors: 1 of 3 sites" in out
        assert "timeout" in out
        tables = json.loads(out_json.read_text())
        assert tables["sites_failed"] == 1
        assert "timeout" in tables["site_errors"][0]["error"]

    def test_sequential_mode_isolates_failures_identically(
        self, capsys, monkeypatch
    ):
        import repro.sites.corpus as corpus_mod

        real_build = corpus_mod.build_site

        def exploding_build(spec):
            if spec.name == "AmericanExpress":
                raise RuntimeError("injected build failure")
            return real_build(spec)

        monkeypatch.setattr(corpus_mod, "build_site", exploding_build)
        # The sequential path builds sites up front; route the CLI through
        # the same builder the workers use to compare like with like.
        monkeypatch.setattr(
            "repro.sites.build_corpus",
            lambda master_seed=0, limit=100: [
                exploding_build(spec)
                if spec.name == "AmericanExpress"
                else real_build(spec)
                for spec in corpus_mod.corpus_specs(master_seed)[:limit]
            ],
        )
        with pytest.raises(RuntimeError):
            # Building the corpus up front crashes before isolation can
            # help — which is exactly why workers rebuild per site.
            main(["corpus", "--sites", "4"])
        capsys.readouterr()

    def test_failed_sites_excluded_from_report_document(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.sites.corpus as corpus_mod

        real_build = corpus_mod.build_site

        def exploding_build(spec):
            if spec.name == "Allstate":
                raise ValueError("boom")
            return real_build(spec)

        monkeypatch.setattr(corpus_mod, "build_site", exploding_build)
        report_json = tmp_path / "report.json"
        status = main([
            "corpus", "--sites", "3", "--jobs", "2",
            "--report-json", str(report_json),
        ])
        capsys.readouterr()
        assert status == 0
        document = json.loads(report_json.read_text())
        assert len(document["pages"]) == 2
        assert {page["url"] for page in document["pages"]} == {
            "AmericanExpress", "BankOfAmerica",
        }


def _strip_timing(value):
    """Drop wall-clock fields so profiles compare structurally."""
    timing = ("_us", "_ms", "duration", "start", "t0", "ts")
    if isinstance(value, dict):
        return {
            key: _strip_timing(val)
            for key, val in value.items()
            if not any(key == t or key.endswith(t) for t in timing)
        }
    if isinstance(value, list):
        return [_strip_timing(item) for item in value]
    return value


class TestMoreJobsThanSites:
    """``--jobs N`` with N > sites must clamp to the site count: idle
    workers may never leave artifacts (empty shards, phantom lanes,
    stray scope entries) in the merged output."""

    def test_tables_json_identical_to_sequential(self, tmp_path, capsys):
        seq_json = tmp_path / "seq.json"
        par_json = tmp_path / "par.json"
        assert main(["corpus", "--sites", "3", "--json", str(seq_json)]) == 0
        assert (
            main([
                "corpus", "--sites", "3", "--jobs", "8",
                "--json", str(par_json),
            ])
            == 0
        )
        capsys.readouterr()
        assert seq_json.read_bytes() == par_json.read_bytes()

    def test_stats_json_structurally_identical_to_sequential(
        self, tmp_path, capsys
    ):
        seq_stats = tmp_path / "seq-stats.json"
        par_stats = tmp_path / "par-stats.json"
        main(["corpus", "--sites", "3", "--stats-json", str(seq_stats)])
        main([
            "corpus", "--sites", "3", "--jobs", "16",
            "--stats-json", str(par_stats),
        ])
        capsys.readouterr()
        seq = json.loads(seq_stats.read_text())
        par = json.loads(par_stats.read_text())
        # Everything but wall-clock timing merges identically — same
        # scopes, same counters, same span/event counts, no extras.
        assert _strip_timing(seq) == _strip_timing(par)
        assert len(par["sites"]) == 3

    def test_trace_lanes_match_site_count(self, tmp_path, capsys):
        from repro.obs.trace_event import validate_trace_file

        trace_path = tmp_path / "trace.json"
        main([
            "corpus", "--sites", "2", "--jobs", "6",
            "--trace-out", str(trace_path),
        ])
        capsys.readouterr()
        events = validate_trace_file(str(trace_path))
        lanes = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        # The main process always announces its own "event-loop" lane;
        # beyond that, exactly one lane per site and none for the four
        # idle workers.
        assert lanes - {"event-loop"} == {"Allstate", "AmericanExpress"}
        tids = {event["tid"] for event in events if event["ph"] == "X"}
        assert len(tids) == 2  # exactly one lane per site, none idle

    def test_worker_pool_clamped_to_site_count(self):
        results = run_corpus_parallel(master_seed=0, limit=2, jobs=10)
        assert [result.index for result in results] == [0, 1]
        assert all(result.ok for result in results)


class TestObsShardMerge:
    def test_parallel_stats_json_has_per_site_scopes(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        main([
            "corpus", "--sites", "3", "--jobs", "2",
            "--stats-json", str(stats_path),
        ])
        capsys.readouterr()
        stats = json.loads(stats_path.read_text())
        assert {site["site"] for site in stats["sites"]} == {
            "Allstate", "AmericanExpress", "BankOfAmerica",
        }
        assert set(stats["scopes"]) >= {
            "Allstate", "AmericanExpress", "BankOfAmerica",
        }
        assert "check_page" in stats["scopes"]["Allstate"]["spans"]
        assert stats["spans"]["check_page"]["count"] == 3

    def test_parallel_chrome_trace_validates_with_site_lanes(
        self, tmp_path, capsys
    ):
        from repro.obs.trace_event import validate_trace_file

        trace_path = tmp_path / "trace.json"
        main([
            "corpus", "--sites", "3", "--jobs", "2",
            "--trace-out", str(trace_path),
        ])
        capsys.readouterr()
        events = validate_trace_file(str(trace_path))
        lanes = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert {"Allstate", "AmericanExpress", "BankOfAmerica"} <= lanes
        tids = {event["tid"] for event in events if event["ph"] == "X"}
        assert len(tids) == 3  # one lane per site

    def test_parallel_profile_prints_phase_table(self, capsys):
        status = main(["corpus", "--sites", "2", "--jobs", "2", "--profile"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Profile" in out
        assert "check_page" in out


class TestRunnerUnits:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_negative_jobs_flag_exits_2(self, capsys):
        assert main(["corpus", "--sites", "1", "--jobs", "-1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_site_guarded_timeout(self):
        racer = WebRacer(seed=0)

        def never_builds():
            time.sleep(30)

        result = racer.run_site_guarded(
            never_builds, 0, site_seed=0, timeout=0.2
        )
        assert not result.ok
        assert "timeout" in result.error
        assert result.raw_counts() == {
            t: 0 for t in result.raw_counts()
        }

    def test_run_site_guarded_crash(self):
        racer = WebRacer(seed=0)

        def broken_build():
            raise ZeroDivisionError("kaboom")

        result = racer.run_site_guarded(broken_build, 3, site_seed=0)
        assert not result.ok
        assert result.index == 3
        assert result.error == "ZeroDivisionError: kaboom"
        assert result.url == "site[3]"

    def test_guarded_corpus_report_includes_failures(self):
        racer = WebRacer(seed=0)

        def broken_build():
            raise RuntimeError("nope")

        report = CorpusReport(
            reports=[racer.run_site_guarded(broken_build, 0, site_seed=0)]
        )
        assert report.failed()[0].error == "RuntimeError: nope"
        assert report.table2() == []
        assert report.sites_with_filtered_races() == 0
