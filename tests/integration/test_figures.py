"""End-to-end reproductions of the paper's motivating examples (Figs 1-5).

Each test builds the figure's page in the simulated browser, runs WebRacer,
and checks that the exact race the paper describes is detected, correctly
classified, and (where the figure implies it) judged harmful.
"""

import pytest

from repro import WebRacer
from repro.browser.page import Browser
from repro.core.report import (
    EVENT_DISPATCH,
    FUNCTION,
    HTML,
    VARIABLE,
)


class TestFig1VariableRace:
    HTML = """
    <script>x = 1;</script>
    <iframe src="a.html"></iframe>
    <iframe src="b.html"></iframe>
    """
    RESOURCES = {
        "a.html": "<script>x = 2;</script>",
        "b.html": "<script>shown = x;</script>",
    }

    def run(self, seed=3):
        racer = WebRacer(seed=seed, explore=False, eager=False, apply_filters=False)
        return racer.check_page(self.HTML, resources=self.RESOURCES)

    def test_race_on_x_detected(self):
        report = self.run()
        variable_races = report.classified.by_type(VARIABLE)
        assert any(
            getattr(c.race.location, "name", "") == "x" for c in variable_races
        )

    def test_initial_write_does_not_race(self):
        """Paper: x=1 is ordered before both iframes' scripts (rules 1a, 6,
        2), so the only racing pair is a.html vs b.html."""
        report = self.run()
        races = [c for c in report.classified.races
                 if getattr(c.race.location, "name", "") == "x"]
        assert len(races) == 1
        race = races[0].race
        # Both racing accesses come from iframe scripts, which execute
        # after the parent inline script's operation.
        trace = report.trace
        first_script_op = next(
            op.op_id for op in trace.operations if op.kind == "exe"
        )
        assert race.prior.op_id != first_script_op
        assert race.current.op_id != first_script_op

    def test_alert_value_depends_on_schedule(self):
        values = set()
        for seed in range(8):
            browser = Browser(
                seed=seed, scheduler="random", resources=self.RESOURCES
            )
            page = browser.load(self.HTML)
            values.add(page.interpreter.global_object.get_own("shown"))
        # Different interleavings can show 1 or 2 (the paper's point).
        assert values <= {1.0, 2.0}
        assert len(values) >= 1


class TestFig2SouthwestFormRace:
    HTML = """
    <input type="text" id="depart" />
    <script src="hint.js"></script>
    """
    RESOURCES = {
        "hint.js": "document.getElementById('depart').value = 'City of Departure';"
    }

    def test_harmful_variable_race_on_value(self):
        racer = WebRacer(seed=1)
        report = racer.check_page(
            self.HTML, resources=self.RESOURCES, latencies={"hint.js": 40.0}
        )
        variable_races = report.classified.by_type(VARIABLE)
        assert len(variable_races) == 1
        assert variable_races[0].harmful
        assert variable_races[0].race.location.name == "value"

    def test_survives_form_filter(self):
        racer = WebRacer(seed=1)
        report = racer.check_page(
            self.HTML, resources=self.RESOURCES, latencies={"hint.js": 40.0}
        )
        assert len(report.filtered_races) == len(report.raw_races) == 1

    def test_user_input_actually_erased_in_simulation(self):
        browser = Browser(seed=1, resources=self.RESOURCES,
                          latencies={"hint.js": 40.0})
        page = browser.open(self.HTML)
        page.eager_explore = True
        page.run()
        field = page.document.get_element_by_id("depart")
        # The late script overwrote whatever the simulated user typed.
        assert field.value == "City of Departure"


class TestFig3ValeroHtmlRace:
    HTML = """
    <script>
    function show(emailTo) {
      var v = $get('dw');
      v.style.display = 'block';
    }
    </script>
    <a id="send" href="javascript:show('x@x.com')">Send Email</a>
    <div id="pad1">.</div>
    <div id="pad2">.</div>
    <div id="dw" style="display:none">email form</div>
    """

    def test_harmful_html_race(self):
        racer = WebRacer(seed=2)
        report = racer.check_page(self.HTML)
        html_races = report.classified.by_type(HTML)
        assert len(html_races) == 1
        race = html_races[0]
        assert race.harmful
        assert "dw" in race.race.location.describe()

    def test_crash_is_hidden(self):
        """The click produces a TypeError that the page survives."""
        racer = WebRacer(seed=2)
        report = racer.check_page(self.HTML)
        assert report.page.loaded()
        kinds = {crash.kind for crash in report.trace.crashes}
        assert "TypeError" in kinds

    def test_no_race_when_div_precedes_link(self):
        safe = """
        <script>
        function show(emailTo) { var v = $get('dw'); v.style.display = 'block'; }
        </script>
        <div id="dw" style="display:none">email form</div>
        <a id="send" href="javascript:show('x@x.com')">Send Email</a>
        """
        racer = WebRacer(seed=2)
        report = racer.check_page(safe)
        assert report.classified.by_type(HTML) == []


class TestFig4FunctionRace:
    # The string-callback form defers the doNextStep lookup to callback
    # time, exactly the original Mozilla unit test's shape: even with the
    # 20ms delay, the invocation can precede the script's parse.
    HTML = """
    <iframe id="i" src="sub.html" onload="setTimeout('doNextStep()', 20)"></iframe>
    <script src="steps.js"></script>
    """
    RESOURCES = {
        "sub.html": "<div>frame</div>",
        "steps.js": "function doNextStep() { window.stepDone = true; }",
    }

    def test_function_race_detected(self):
        racer = WebRacer(seed=1, explore=False, eager=False)
        report = racer.check_page(
            self.HTML,
            resources=self.RESOURCES,
            latencies={"sub.html": 2.0, "steps.js": 40.0},
        )
        function_races = report.classified.by_type(FUNCTION)
        assert len(function_races) == 1
        assert "doNextStep" in function_races[0].race.location.describe()

    def test_harmful_when_timer_wins(self):
        """When the iframe loads fast and the declaring script is slow, the
        20ms timer fires before the declaration — a ReferenceError."""
        racer = WebRacer(seed=1, explore=False, eager=False)
        report = racer.check_page(
            self.HTML,
            resources=self.RESOURCES,
            latencies={"sub.html": 1.0, "steps.js": 200.0},
        )
        function_races = report.classified.by_type(FUNCTION)
        assert function_races and function_races[0].harmful
        assert any(c.kind == "ReferenceError" for c in report.trace.crashes)

    def test_fix_moves_script_above_iframe(self):
        """The paper's fix: declare the function before the iframe."""
        fixed = """
        <script src="steps.js"></script>
        <iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>
        """
        racer = WebRacer(seed=1, explore=False, eager=False)
        report = racer.check_page(
            fixed,
            resources=self.RESOURCES,
            latencies={"sub.html": 1.0, "steps.js": 200.0},
        )
        assert report.classified.by_type(FUNCTION) == []


class TestFig5EventDispatchRace:
    HTML = """
    <iframe id="i" src="a.html"></iframe>
    <script>
    document.getElementById('i').onload = function() { window.ran = true; };
    </script>
    """
    RESOURCES = {"a.html": "<div>nested</div>"}

    def test_dispatch_race_detected_and_harmful(self):
        racer = WebRacer(seed=1, explore=False, eager=False)
        report = racer.check_page(
            self.HTML, resources=self.RESOURCES, latencies={"a.html": 3.0}
        )
        dispatch_races = report.classified.by_type(EVENT_DISPATCH)
        assert len(dispatch_races) == 1
        race = dispatch_races[0]
        assert race.harmful
        assert race.race.location.event == "load"

    def test_no_race_when_onload_in_tag(self):
        """Setting onload in the tag writes the handler at parse(I) =
        create(I), which rule 8 orders before the dispatch."""
        safe = '<iframe id="i" src="a.html" onload="window.ran = true;"></iframe>'
        racer = WebRacer(seed=1, explore=False, eager=False)
        report = racer.check_page(
            safe, resources=self.RESOURCES, latencies={"a.html": 3.0}
        )
        assert report.classified.by_type(EVENT_DISPATCH) == []
