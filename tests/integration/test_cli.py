"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture
def buggy_page(tmp_path):
    page = tmp_path / "page.html"
    page.write_text(
        '<input type="text" id="q" /><script src="hint.js"></script>'
    )
    hint = tmp_path / "hint.js"
    hint.write_text("document.getElementById('q').value = 'hint';")
    return page, hint


class TestCheck:
    def test_harmful_page_exits_nonzero(self, buggy_page, capsys):
        page, hint = buggy_page
        status = main(["check", str(page), "--resource", f"hint.js={hint}"])
        out = capsys.readouterr().out
        assert status == 1
        assert "variable" in out
        assert "HARMFUL" in out

    def test_clean_page_exits_zero(self, tmp_path, capsys):
        page = tmp_path / "clean.html"
        page.write_text("<div>hello</div>")
        status = main(["check", str(page)])
        assert status == 0
        assert "0 raw races" in capsys.readouterr().out

    def test_bad_resource_mapping(self, buggy_page, capsys):
        page, _hint = buggy_page
        status = main(["check", str(page), "--resource", "nonsense"])
        assert status == 2

    def test_json_dump(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        out_path = tmp_path / "trace.json"
        main([
            "check", str(page),
            "--resource", f"hint.js={hint}",
            "--json", str(out_path),
        ])
        data = json.loads(out_path.read_text())
        assert data["version"] == 1
        assert data["accesses"]


class TestAnalyze:
    def test_roundtrip_through_cli(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        trace_path = tmp_path / "trace.json"
        main([
            "check", str(page),
            "--resource", f"hint.js={hint}",
            "--json", str(trace_path),
        ])
        capsys.readouterr()
        status = main(["analyze", str(trace_path)])
        out = capsys.readouterr().out
        assert status == 1
        assert "HARMFUL" in out

    def test_no_filters_flag(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        trace_path = tmp_path / "trace.json"
        main([
            "check", str(page),
            "--resource", f"hint.js={hint}",
            "--json", str(trace_path),
        ])
        capsys.readouterr()
        main(["analyze", str(trace_path), "--no-filters"])
        assert "races" in capsys.readouterr().out


class TestHbBackend:
    def test_check_with_chains_backend_matches_graph(self, buggy_page, capsys):
        page, hint = buggy_page
        outputs = {}
        for backend in ("graph", "chains", "crosscheck"):
            status = main([
                "check", str(page),
                "--resource", f"hint.js={hint}",
                "--hb-backend", backend,
            ])
            assert status == 1
            outputs[backend] = capsys.readouterr().out
        assert outputs["graph"] == outputs["chains"] == outputs["crosscheck"]

    def test_corpus_crosscheck_backend(self, capsys):
        status = main(["corpus", "--sites", "2", "--hb-backend", "crosscheck"])
        assert status == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_backend_rejected(self, buggy_page):
        page, _hint = buggy_page
        with pytest.raises(SystemExit):
            main(["check", str(page), "--hb-backend", "bogus"])


class TestCorpus:
    def test_small_corpus_run(self, capsys):
        status = main(["corpus", "--sites", "5"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Table 1" in out
        assert "Table 2" in out

    def test_partial_run_omits_paper_comparisons(self, capsys):
        """Paper numbers describe the full 100-site corpus; comparing a
        partial run against them is misleading (matches the Table 2
        paper_totals gating)."""
        status = main(["corpus", "--sites", "3"])
        out = capsys.readouterr().out
        assert status == 0
        assert "sites with races:" in out
        assert "(paper 41)" not in out
        assert "Paper" not in out.split("Table 2")[1]
