"""End-to-end happens-before semantics: the rules as observable orderings.

Rather than poking edges directly, these tests load pages and assert the
HB *queries* the rules guarantee — including the negative space (what must
remain concurrent), which is where race detection lives.
"""

from repro.browser.page import Browser
from repro.core.operations import CB, CBI, DISPATCH, EXE, PARSE


def load(html, resources=None, latencies=None, seed=0, **kwargs):
    return Browser(seed=seed, resources=resources, latencies=latencies, **kwargs).load(html)


def ops_of_kind(page, kind, label_contains=None):
    return [
        op
        for op in page.trace.operations
        if op.kind == kind
        and (label_contains is None or label_contains in op.label)
    ]


class TestStaticOrdering:
    def test_parse_ops_totally_ordered(self):
        page = load("<div id='a'></div><div id='b'></div><div id='c'></div>")
        parses = ops_of_kind(page, PARSE)
        graph = page.monitor.graph
        for earlier, later in zip(parses, parses[1:]):
            assert graph.happens_before(earlier.op_id, later.op_id)

    def test_inline_exe_before_later_parse(self):
        page = load("<script>x = 1;</script><div id='later'></div>")
        exe = ops_of_kind(page, EXE)[0]
        later_parse = [op for op in ops_of_kind(page, PARSE) if "later" in op.label][0]
        assert page.monitor.graph.happens_before(exe.op_id, later_parse.op_id)

    def test_sync_script_exe_before_later_parse(self):
        page = load(
            "<script src='s.js'></script><div id='later'></div>",
            resources={"s.js": "y = 1;"},
        )
        exe = ops_of_kind(page, EXE)[0]
        later_parse = [op for op in ops_of_kind(page, PARSE) if "later" in op.label][0]
        assert page.monitor.graph.happens_before(exe.op_id, later_parse.op_id)


class TestAsyncConcurrency:
    def test_two_async_scripts_concurrent(self):
        """Async scripts may run in any order: no HB edge between them."""
        page = load(
            "<script src='a.js' async='true'></script>"
            "<script src='b.js' async='true'></script>",
            resources={"a.js": "a = 1;", "b.js": "b = 1;"},
        )
        exes = ops_of_kind(page, EXE)
        assert len(exes) == 2
        assert page.monitor.graph.concurrent(exes[0].op_id, exes[1].op_id)

    def test_async_script_concurrent_with_later_parse(self):
        page = load(
            "<script src='a.js' async='true'></script><div id='later'></div>",
            resources={"a.js": "a = 1;"},
        )
        exe = ops_of_kind(page, EXE)[0]
        later_parse = [op for op in ops_of_kind(page, PARSE) if "later" in op.label][0]
        graph = page.monitor.graph
        assert graph.concurrent(exe.op_id, later_parse.op_id)

    def test_sync_scripts_are_ordered_with_each_other(self):
        page = load(
            "<script src='a.js'></script><script src='b.js'></script>",
            resources={"a.js": "a = 1;", "b.js": "b = 1;"},
        )
        exes = ops_of_kind(page, EXE)
        assert page.monitor.graph.happens_before(exes[0].op_id, exes[1].op_id)


class TestDeferredOrdering:
    def test_deferred_exes_ordered_by_syntax(self):
        page = load(
            "<script src='d1.js' defer='true'></script>"
            "<script src='d2.js' defer='true'></script>",
            resources={"d1.js": "a = 1;", "d2.js": "b = 1;"},
            latencies={"d1.js": 80.0, "d2.js": 1.0},
        )
        exes = ops_of_kind(page, EXE)
        assert len(exes) == 2
        assert page.monitor.graph.happens_before(exes[0].op_id, exes[1].op_id)

    def test_all_parses_before_deferred_exe(self):
        page = load(
            "<script src='d.js' defer='true'></script><div id='tail'></div>",
            resources={"d.js": "a = 1;"},
        )
        exe = ops_of_kind(page, EXE)[0]
        graph = page.monitor.graph
        for parse_op in ops_of_kind(page, PARSE):
            assert graph.happens_before(parse_op.op_id, exe.op_id)


class TestTimerOrdering:
    def test_caller_before_callback(self):
        page = load("<script>setTimeout(function() { t = 1; }, 5);</script>")
        exe = ops_of_kind(page, EXE)[0]
        cb = ops_of_kind(page, CB)[0]
        assert page.monitor.graph.happens_before(exe.op_id, cb.op_id)

    def test_two_timeouts_concurrent(self):
        """Two setTimeout callbacks from the same script have no mutual
        ordering — the paper adds no edge between sibling timers."""
        page = load(
            "<script>setTimeout(function() { a = 1; }, 5);"
            "setTimeout(function() { b = 1; }, 5);</script>"
        )
        cbs = ops_of_kind(page, CB)
        assert len(cbs) == 2
        assert page.monitor.graph.concurrent(cbs[0].op_id, cbs[1].op_id)

    def test_interval_firings_chained(self):
        page = load(
            "<script>var n = 0; var id = setInterval(function() { n++; "
            "if (n >= 3) clearInterval(id); }, 5);</script>"
        )
        cbis = ops_of_kind(page, CBI)
        assert len(cbis) == 3
        graph = page.monitor.graph
        assert graph.happens_before(cbis[0].op_id, cbis[1].op_id)
        assert graph.happens_before(cbis[1].op_id, cbis[2].op_id)

    def test_interval_concurrent_with_parsing(self):
        """The Gomez situation: interval callbacks are unordered with the
        load events of images fetched in parallel."""
        page = load(
            "<script>var id = setInterval(function() { poll = 1; }, 10);"
            "setTimeout(function() { clearInterval(id); }, 45);</script>"
            "<img id='im' src='p.png'>",
            resources={"p.png": "b"},
            latencies={"p.png": 30.0},
        )
        cbis = ops_of_kind(page, CBI)
        img_load_roots = [
            op
            for op in ops_of_kind(page, DISPATCH)
            if op.meta.get("event") == "load"
            and op.meta.get("role") == "root"
            and "im" in str(op.meta.get("target_key"))
        ]
        assert cbis and img_load_roots
        graph = page.monitor.graph
        assert graph.concurrent(cbis[0].op_id, img_load_roots[0].op_id)


class TestLoadEventOrdering:
    def test_everything_parsed_before_dcl(self):
        page = load("<div></div><script>x = 1;</script><p></p>")
        dcl_roots = [
            op for op in ops_of_kind(page, DISPATCH)
            if op.meta.get("event") == "DOMContentLoaded"
        ]
        graph = page.monitor.graph
        for parse_op in ops_of_kind(page, PARSE):
            assert graph.happens_before(parse_op.op_id, dcl_roots[0].op_id)

    def test_dcl_before_window_load(self):
        page = load("<div></div>")
        dispatches = ops_of_kind(page, DISPATCH)
        dcl = [op for op in dispatches if op.meta.get("event") == "DOMContentLoaded"][0]
        win_load = [
            op for op in dispatches
            if op.meta.get("event") == "load" and "window" in op.label
        ][0]
        assert page.monitor.graph.happens_before(dcl.op_id, win_load.op_id)

    def test_image_load_before_window_load(self):
        page = load("<img id='i' src='p.png'>", resources={"p.png": "b"})
        dispatches = ops_of_kind(page, DISPATCH)
        img_load = [
            op for op in dispatches
            if op.meta.get("event") == "load" and "<img" in op.label
        ][0]
        win_load = [
            op for op in dispatches
            if op.meta.get("event") == "load" and "window" in op.label
        ][0]
        assert page.monitor.graph.happens_before(img_load.op_id, win_load.op_id)

    def test_nested_window_load_before_iframe_load(self):
        page = load(
            "<iframe id='f' src='s.html'></iframe>",
            resources={"s.html": "<div></div>"},
        )
        dispatches = ops_of_kind(page, DISPATCH)
        # Two window loads: nested first, then the iframe element's load,
        # then the outer window's.
        win_loads = [
            op for op in dispatches
            if op.meta.get("event") == "load" and "window" in op.label
        ]
        iframe_load = [
            op for op in dispatches
            if op.meta.get("event") == "load" and "iframe" in op.label
        ][0]
        graph = page.monitor.graph
        nested = min(win_loads, key=lambda op: op.op_id)
        outer = max(win_loads, key=lambda op: op.op_id)
        assert graph.happens_before(nested.op_id, iframe_load.op_id)
        assert graph.happens_before(iframe_load.op_id, outer.op_id)


class TestUserEventConcurrency:
    def test_user_event_concurrent_with_parsing(self):
        """No rule orders user interactions against page load — the paper's
        central source of races."""
        browser = Browser(seed=0)
        page = browser.open(
            "<a id='l' href='javascript:clicked = 1;'>x</a>"
            "<div id='a'></div><div id='b'></div><div id='tail'></div>"
        )
        page.eager_explore = True
        page.run()
        dispatches = [
            op for op in page.trace.operations
            if op.kind == DISPATCH and op.meta.get("event") == "click"
        ]
        tail_parse = [
            op for op in page.trace.operations
            if op.kind == PARSE and "tail" in op.label
        ][0]
        graph = page.monitor.graph
        assert dispatches
        assert any(
            graph.concurrent(dispatch.op_id, tail_parse.op_id)
            for dispatch in dispatches
        )


class TestXhrOrdering:
    def test_send_before_readystatechange(self):
        page = load(
            """
            <script>
            var xr = new XMLHttpRequest();
            xr.open('GET', 'data.json');
            xr.onreadystatechange = function() { got = xr.responseText; };
            xr.send();
            </script>
            """,
            resources={"data.json": "payload"},
        )
        assert page.interpreter.global_object.get_own("got") == "payload"
        assert page.monitor.graph.edges_by_rule("10:send-before-readystatechange")

    def test_two_ajax_handlers_concurrent(self):
        """Separate AJAX completions stay unordered — WebRacer subsumes the
        Zheng et al. AJAX race class (Section 8)."""
        page = load(
            """
            <script>
            function go(url) {
              var xr = new XMLHttpRequest();
              xr.open('GET', url);
              xr.onreadystatechange = function() { last = url; };
              xr.send();
            }
            go('a.json');
            go('b.json');
            </script>
            """,
            resources={"a.json": "1", "b.json": "2"},
        )
        handlers = [
            op for op in page.trace.operations
            if op.kind == DISPATCH
            and op.meta.get("event") == "readystatechange"
            and op.meta.get("role") == "handler"
        ]
        assert len(handlers) == 2
        assert page.monitor.graph.concurrent(handlers[0].op_id, handlers[1].op_id)
