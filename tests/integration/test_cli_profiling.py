"""Integration tests for the profiling flags and CLI satellites.

Pins down the contract of the observability layer end to end:
``--profile``/``--trace-out``/``--stats-json`` must never change what the
detector reports, the exported trace must pass schema validation, and the
corpus/analyze satellites (``corpus --json``, ``analyze --hb-backend``,
the full-run gating fix) behave as documented.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs.trace_event import validate_trace_file
from repro.sites import Site


@pytest.fixture
def buggy_page(tmp_path):
    page = tmp_path / "page.html"
    page.write_text(
        '<input type="text" id="q" /><script src="hint.js"></script>'
    )
    hint = tmp_path / "hint.js"
    hint.write_text("document.getElementById('q').value = 'hint';")
    return page, hint


def run_check(capsys, page, hint, *extra):
    status = main(
        ["check", str(page), "--resource", f"hint.js={hint}", *extra]
    )
    return status, capsys.readouterr().out


class TestProfilingFlags:
    def test_profile_prints_phase_table(self, buggy_page, capsys):
        page, hint = buggy_page
        _status, out = run_check(capsys, page, hint, "--profile")
        assert "Profile" in out
        assert "check_page" in out
        assert "page.run" in out
        assert "chc.query.graph" in out
        assert "races.raw" in out

    def test_results_identical_with_profiling(self, buggy_page, capsys, tmp_path):
        page, hint = buggy_page
        plain_status, plain_out = run_check(capsys, page, hint)
        prof_status, prof_out = run_check(
            capsys, page, hint,
            "--profile", "--trace-out", str(tmp_path / "t.json"),
            "--stats-json", str(tmp_path / "s.json"),
        )
        # The race report is byte-identical; profiling output only appends.
        assert prof_status == plain_status
        assert prof_out.startswith(plain_out)

    def test_trace_out_writes_valid_chrome_trace(self, buggy_page, capsys, tmp_path):
        page, hint = buggy_page
        trace_path = tmp_path / "trace.json"
        run_check(capsys, page, hint, "--trace-out", str(trace_path))
        events = validate_trace_file(str(trace_path))
        names = {event["name"] for event in events}
        assert "check_page" in names
        assert "race" in names  # instant emitted when the race is found
        # The detector's CHC counter made it into the export.
        counter_names = {e["name"] for e in events if e["ph"] == "C"}
        assert "chc.query.graph" in counter_names

    def test_stats_json_shape(self, buggy_page, capsys, tmp_path):
        page, hint = buggy_page
        stats_path = tmp_path / "stats.json"
        run_check(capsys, page, hint, "--stats-json", str(stats_path))
        stats = json.loads(stats_path.read_text())
        assert stats["races"] == {"raw": 1, "filtered": 1, "harmful": 1}
        assert stats["counters"]["races.raw"] == 1
        assert "check_page" in stats["spans"]
        assert stats["spans"]["check_page"]["count"] == 1

    def test_hb_backend_tags_query_counter(self, buggy_page, capsys, tmp_path):
        page, hint = buggy_page
        stats_path = tmp_path / "stats.json"
        run_check(
            capsys, page, hint,
            "--hb-backend", "chains", "--stats-json", str(stats_path),
        )
        counters = json.loads(stats_path.read_text())["counters"]
        assert counters.get("chc.query.chains", 0) > 0
        assert "chc.query.graph" not in counters


def tiny_corpus(count):
    """A corpus of trivial sites — fast, and some with a seeded race."""
    sites = []
    for index in range(count):
        sites.append(
            Site(
                name=f"Site{index}",
                html=(
                    '<input type="text" id="q" />'
                    '<script src="late.js"></script>'
                    if index % 2 == 0
                    else "<div>quiet</div>"
                ),
                resources={"late.js": "document.getElementById('q').value = 'x';"},
                latencies={"late.js": 40.0},
            )
        )
    return sites


class TestCorpusJson:
    def test_tables_json(self, capsys, tmp_path, monkeypatch):
        import repro.sites

        monkeypatch.setattr(
            repro.sites, "build_corpus",
            lambda master_seed=0, limit=None: tiny_corpus(4),
        )
        out_path = tmp_path / "tables.json"
        status = main(["corpus", "--sites", "4", "--json", str(out_path)])
        assert status == 0
        tables = json.loads(out_path.read_text())
        assert tables["sites_checked"] == 4
        assert tables["full_run"] is False
        assert "paper" not in tables
        assert set(tables["table1"]) == {
            "html", "function", "variable", "event_dispatch", "all",
        }
        for row in tables["table2"]:
            assert "site" in row
            assert row["variable"]["count"] >= 0
        assert tables["sites_with_races"] == len(tables["table2"])

    def test_corpus_stats_json_is_per_site(self, capsys, tmp_path, monkeypatch):
        import repro.sites

        monkeypatch.setattr(
            repro.sites, "build_corpus",
            lambda master_seed=0, limit=None: tiny_corpus(3),
        )
        stats_path = tmp_path / "stats.json"
        main(["corpus", "--sites", "3", "--stats-json", str(stats_path)])
        stats = json.loads(stats_path.read_text())
        assert {site["site"] for site in stats["sites"]} == {
            "Site0", "Site1", "Site2",
        }
        for site in stats["sites"]:
            assert site["chc_queries"] >= 0
            assert site["operations"] > 0
        # Scoped span stats exist for every site.
        assert set(stats["scopes"]) >= {"Site0", "Site1", "Site2"}
        assert "check_page" in stats["scopes"]["Site0"]["spans"]


class TestFullRunGating:
    """Paper comparisons must key off sites actually built, not --sites."""

    def test_small_build_never_compares(self, capsys, monkeypatch):
        import repro.sites

        # `--sites 100` requested, but the corpus build yields only 2 —
        # the old `args.sites == 100` gating would wrongly compare.
        monkeypatch.setattr(
            repro.sites, "build_corpus",
            lambda master_seed=0, limit=None: tiny_corpus(2),
        )
        main(["corpus", "--sites", "100"])
        out = capsys.readouterr().out
        assert "(paper" not in out

    def test_full_build_compares_even_with_odd_flag(self, capsys, monkeypatch):
        import repro.sites

        # `--sites 150` clamps to the full 100-site corpus; the paper
        # comparison should still appear.
        monkeypatch.setattr(
            repro.sites, "build_corpus",
            lambda master_seed=0, limit=None: tiny_corpus(100),
        )
        main(["corpus", "--sites", "150"])
        out = capsys.readouterr().out
        assert "(paper 41)" in out


class TestAnalyzeHbBackend:
    def test_backends_agree_on_loaded_trace(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        trace_path = tmp_path / "trace.json"
        main([
            "check", str(page),
            "--resource", f"hint.js={hint}",
            "--json", str(trace_path),
        ])
        capsys.readouterr()
        outputs = {}
        for backend in ("graph", "chains", "crosscheck"):
            status = main(["analyze", str(trace_path), "--hb-backend", backend])
            outputs[backend] = capsys.readouterr().out
            assert status == 1
        assert outputs["graph"] == outputs["chains"] == outputs["crosscheck"]

    def test_bad_backend_rejected(self, buggy_page, tmp_path, capsys):
        page, hint = buggy_page
        trace_path = tmp_path / "trace.json"
        main([
            "check", str(page),
            "--resource", f"hint.js={hint}",
            "--json", str(trace_path),
        ])
        with pytest.raises(SystemExit):
            main(["analyze", str(trace_path), "--hb-backend", "nonsense"])
