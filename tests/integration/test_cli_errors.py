"""CLI error paths: one-line diagnostics, exit status 2, no tracebacks.

Covers the bugfix half of the parallel-runner PR: ``analyze``/``explain``
on missing or corrupt traces, and output-path validation that fails fast
(before any site runs) for every ``--json``/``--stats-json``/``--trace-out``/
``--report-json``/``--report-html`` destination.
"""

import pytest

from repro.__main__ import (
    _output_path_error,
    _write_output,
    main,
)

PAGE_HTML = """<html><head><script>var x = 1;</script></head><body></body></html>"""


@pytest.fixture
def page_file(tmp_path):
    page = tmp_path / "page.html"
    page.write_text(PAGE_HTML)
    return str(page)


class TestAnalyzeExplainErrors:
    def test_analyze_missing_trace(self, tmp_path, capsys):
        missing = tmp_path / "missing.trace"
        assert main(["analyze", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: cannot read trace '{missing}'")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_explain_missing_trace(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "gone.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read trace")
        assert len(err.strip().splitlines()) == 1

    def test_analyze_corrupt_trace_not_json(self, tmp_path, capsys):
        trace = tmp_path / "garbage.trace"
        trace.write_text("this is not json {{{")
        assert main(["analyze", str(trace)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: corrupt trace '{trace}'")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_analyze_corrupt_trace_wrong_shape(self, tmp_path, capsys):
        trace = tmp_path / "shape.trace"
        trace.write_text('{"valid": "json", "but": "not a trace"}')
        assert main(["analyze", str(trace)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: corrupt trace '{trace}'")

    def test_explain_corrupt_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.trace"
        trace.write_text("[1, 2, 3]")
        assert main(["explain", str(trace)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: corrupt trace '{trace}'")
        assert len(err.strip().splitlines()) == 1

    def test_analyze_trace_is_directory(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1


class TestOutputPathValidation:
    @pytest.mark.parametrize(
        "flag",
        ["--json", "--stats-json", "--trace-out", "--report-json", "--report-html"],
    )
    def test_corpus_rejects_missing_directory_before_running(
        self, flag, capsys, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError("sites ran before path validation")

        monkeypatch.setattr("repro.sites.build_corpus", explode)
        monkeypatch.setattr(
            "repro.corpus_runner.run_corpus_parallel", explode, raising=True
        )
        status = main(
            ["corpus", "--sites", "5", flag, "/no/such/dir/out.file"]
        )
        err = capsys.readouterr().err
        assert status == 2
        assert err == "error: output directory '/no/such/dir' does not exist\n"

    def test_corpus_parallel_rejects_bad_path_before_running(
        self, capsys, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError("workers ran before path validation")

        monkeypatch.setattr(
            "repro.corpus_runner.run_corpus_parallel", explode, raising=True
        )
        status = main(
            ["corpus", "--sites", "5", "--jobs", "2",
             "--json", "/no/such/dir/out.json"]
        )
        assert status == 2
        assert "does not exist" in capsys.readouterr().err

    def test_corpus_rejects_directory_as_output(self, tmp_path, capsys):
        status = main(["corpus", "--sites", "1", "--json", str(tmp_path)])
        err = capsys.readouterr().err
        assert status == 2
        assert err == f"error: output path '{tmp_path}' is a directory\n"

    def test_check_rejects_bad_output_path(self, page_file, capsys):
        status = main(["check", page_file, "--json", "/no/such/dir/t.json"])
        err = capsys.readouterr().err
        assert status == 2
        assert err.startswith("error: output directory")

    def test_check_rejects_bad_report_path(self, page_file, capsys):
        status = main(
            ["check", page_file, "--report-html", "/no/such/dir/r.html"]
        )
        assert status == 2
        assert "does not exist" in capsys.readouterr().err

    def test_valid_paths_still_work(self, tmp_path, capsys):
        out = tmp_path / "tables.json"
        assert main(["corpus", "--sites", "1", "--json", str(out)]) == 0
        capsys.readouterr()
        assert out.exists()

    @pytest.mark.parametrize(
        "flag", ["--json", "--stats-json", "--trace-out"]
    )
    def test_explore_rejects_bad_path_before_running(
        self, flag, page_file, capsys, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError("matrix ran before path validation")

        monkeypatch.setattr(
            "repro.schedule_runner.explore_pages", explode, raising=True
        )
        status = main(
            ["explore", page_file, flag, "/no/such/dir/out.file"]
        )
        err = capsys.readouterr().err
        assert status == 2
        assert err == "error: output directory '/no/such/dir' does not exist\n"

    @pytest.mark.parametrize(
        "flag", ["--json", "--stats-json", "--trace-out"]
    )
    def test_predict_rejects_bad_path_before_running(
        self, flag, page_file, capsys, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError("prediction ran before path validation")

        monkeypatch.setattr(
            "repro.predict.predict_pages", explode, raising=True
        )
        status = main(
            ["predict", page_file, flag, "/no/such/dir/out.file"]
        )
        err = capsys.readouterr().err
        assert status == 2
        assert err == "error: output directory '/no/such/dir' does not exist\n"


class TestLedgerPathValidation:
    @pytest.mark.parametrize(
        "command", [["check"], ["corpus", "--sites", "1"]]
    )
    def test_ledger_path_is_a_file(
        self, command, page_file, tmp_path, capsys
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        argv = list(command)
        if argv[0] == "check":
            argv.append(page_file)
        status = main([*argv, "--ledger", str(blocker)])
        err = capsys.readouterr().err
        assert status == 2
        assert err == f"error: --ledger '{blocker}' is a file\n"

    def test_ledger_rejected_before_run(self, capsys, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("sites ran before ledger validation")

        monkeypatch.setattr("repro.sites.build_corpus", explode)
        status = main(
            ["corpus", "--sites", "5", "--ledger", "/proc/version/nope"]
        )
        err = capsys.readouterr().err
        assert status == 2
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_explore_validates_ledger_up_front(
        self, page_file, tmp_path, capsys, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError("matrix ran before ledger validation")

        monkeypatch.setattr(
            "repro.schedule_runner.explore_pages", explode, raising=True
        )
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        status = main(["explore", page_file, "--ledger", str(blocker)])
        assert status == 2
        assert "is a file" in capsys.readouterr().err

    def test_predict_validates_ledger_up_front(
        self, page_file, tmp_path, capsys, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError("prediction ran before ledger validation")

        monkeypatch.setattr(
            "repro.predict.predict_pages", explode, raising=True
        )
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        status = main(["predict", page_file, "--ledger", str(blocker)])
        assert status == 2
        assert "is a file" in capsys.readouterr().err


class TestPathHelpers:
    def test_output_path_error_accepts_writable_target(self, tmp_path):
        assert _output_path_error(str(tmp_path / "new.json")) is None

    def test_output_path_error_rejects_directory(self, tmp_path):
        assert "is a directory" in _output_path_error(str(tmp_path))

    def test_output_path_error_rejects_missing_parent(self):
        message = _output_path_error("/no/such/dir/file.json")
        assert message == "output directory '/no/such/dir' does not exist"

    def test_output_path_error_rejects_unwritable_directory(self, tmp_path):
        import os

        if os.geteuid() == 0:
            pytest.skip("root bypasses directory write permissions")
        locked = tmp_path / "locked"
        locked.mkdir(mode=0o555)
        try:
            assert "is not writable" in _output_path_error(
                str(locked / "out.json")
            )
        finally:
            locked.chmod(0o755)

    def test_write_output_reports_oserror(self):
        def boom():
            raise OSError(28, "No space left on device")

        message = _write_output("/tmp/full.json", boom)
        assert message == "cannot write '/tmp/full.json': No space left on device"

    def test_write_output_success_returns_none(self, tmp_path):
        target = tmp_path / "ok.txt"
        assert _write_output(str(target), lambda: target.write_text("hi")) is None
