"""Audit: every happens-before rule from the paper fires on real pages.

A single composite page exercising all web-platform features must produce
at least one labeled edge for every rule in Section 3.3 (plus Appendix A).
This guards against silently dead rule plumbing — a rule whose label never
appears again after a refactor would weaken the relation and create false
positives without failing any functional test.
"""

import pytest

from repro.browser.page import Browser
from repro.core.hb import rules as R

COMPOSITE_PAGE = """
<script>first = 1;</script>
<div id="static1"></div>
<script src="sync.js"></script>
<div id="static2"></div>
<script src="async.js" async="true"></script>
<script src="defer1.js" defer="true"></script>
<script src="defer2.js" defer="true"></script>
<img id="pic" src="pic.png">
<iframe id="frame" src="inner.html"></iframe>
<script>
setTimeout(function () { t1 = 1; }, 5);
var iv = setInterval(function () {
  ticks = (typeof ticks == 'undefined') ? 1 : ticks + 1;
  if (ticks >= 2) clearInterval(iv);
}, 5);
var xr = new XMLHttpRequest();
xr.open('GET', 'data.json');
xr.onreadystatechange = function () { payload = xr.responseText; };
xr.send();
var btn = document.getElementById('static1');
btn.onclick = function () { clicked = (typeof clicked == 'undefined') ? 1 : clicked + 1; };
btn.click();
btn.click();
</script>
"""

RESOURCES = {
    "sync.js": "fromSync = 1;",
    "async.js": "fromAsync = 1;",
    "defer1.js": "fromDefer1 = 1;",
    "defer2.js": "fromDefer2 = 1;",
    "pic.png": "bin",
    "inner.html": "<div id='nested'></div>",
    "data.json": "payload",
}


@pytest.fixture(scope="module")
def composite_page():
    return Browser(seed=0, resources=RESOURCES).load(COMPOSITE_PAGE)


@pytest.mark.parametrize(
    "rule",
    [
        R.RULE_1A,
        R.RULE_1B,
        R.RULE_1C,
        R.RULE_2,
        R.RULE_3,
        R.RULE_4,
        R.RULE_5,
        R.RULE_6,
        R.RULE_7,
        R.RULE_8,
        R.RULE_9,
        R.RULE_10,
        R.RULE_11,
        R.RULE_12,
        R.RULE_14,
        R.RULE_15,
        R.RULE_16,
        R.RULE_17,
        R.RULE_A_SPLIT_PRE,
        R.RULE_A_SPLIT_POST,
        R.RULE_A_PHASING,
    ],
)
def test_rule_fires_on_composite_page(composite_page, rule):
    edges = composite_page.monitor.graph.edges_by_rule(rule)
    assert edges, f"rule {rule} produced no edges on the composite page"


def test_rule_13_fires_with_trailing_inline_script():
    """Rule 13 (trailing inline exe ≺ DCL) needs the page to *end* with an
    inline script — earlier inline scripts reach DCL transitively via the
    rule-1 chain instead."""
    page = Browser(seed=0).load("<div></div><script>tail = 1;</script>")
    assert page.monitor.graph.edges_by_rule(R.RULE_13)


def test_composite_page_ran_everything(composite_page):
    g = composite_page.interpreter.global_object
    for name in ("first", "fromSync", "fromAsync", "fromDefer1", "fromDefer2",
                 "t1", "ticks", "payload", "clicked"):
        assert g.has_own(name), f"{name} never ran"
    assert g.get_own("clicked") == 2.0
