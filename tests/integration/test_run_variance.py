"""Paper footnote 14: "races reported across different runs for the same
site had little variance" — plus facade edge cases."""

import pytest

from repro import WebRacer
from repro.sites import SiteSpec, build_site


class TestRunVariance:
    @pytest.fixture(scope="class")
    def site(self):
        return build_site(
            SiteSpec(name="VarianceSite")
            .add("valero_email_link")
            .add("southwest_form_hint")
            .add("gomez_monitoring", images=4)
            .add("function_race_guarded")
            .add("async_global_noise", globals_count=6)
            .add("static_noise")
        )

    def test_filtered_counts_identical_across_seeds(self, site):
        """Filtered (per-location) races are seed-invariant — HB detection
        does not depend on which interleaving was observed."""
        counts = set()
        for seed in (0, 7, 21, 42):
            report = WebRacer(seed=seed).check_site(site)
            counts.add(tuple(sorted(report.filtered_counts().items())))
        assert len(counts) == 1

    def test_harmful_counts_identical_across_seeds(self, site):
        counts = set()
        for seed in (0, 7, 21, 42):
            report = WebRacer(seed=seed).check_site(site)
            counts.add(tuple(sorted(report.harmful_counts().items())))
        assert len(counts) == 1

    def test_raw_counts_low_variance(self, site):
        """Raw counts may wiggle slightly with the schedule (dedup keeps at
        most one race per location and some locations only materialize on
        some paths), but the variance must stay small."""
        totals = []
        for seed in (0, 7, 21, 42, 63):
            report = WebRacer(seed=seed).check_site(site)
            totals.append(sum(report.raw_counts().values()))
        spread = max(totals) - min(totals)
        assert spread <= max(2, max(totals) // 5), totals


class TestFacadeEdgeCases:
    def test_max_run_ms_stops_early(self):
        racer = WebRacer(seed=0, max_run_ms=1.0, explore=False, eager=False)
        report = racer.check_page(
            "<script>setTimeout('late = 1;', 5000);</script>"
        )
        assert not report.page.interpreter.global_object.has_own("late")

    def test_report_for_reuses_finished_page(self):
        racer = WebRacer(seed=0)
        first = racer.check_page("<input type='text' id='f'>"
                                 "<script src='h.js'></script>",
                                 resources={"h.js": "document.getElementById('f').value = 'x';"})
        again = racer.report_for(first.page, url="again")
        assert again.url == "again"
        assert len(again.raw_races) == len(first.raw_races)

    def test_empty_page(self):
        report = WebRacer(seed=0).check_page("")
        assert report.page.loaded()
        assert report.raw_races == []

    def test_check_site_seed_override(self):
        site = build_site(SiteSpec(name="S").add("static_noise"))
        report = WebRacer(seed=0).check_site(site, seed=99)
        assert report.raw_races == []
