"""Two-tier screening end to end: CLI flags, subset/equality properties.

Pins the PR's acceptance contract on a small fixed-seed corpus slice:

* two-tier races are a subset of exact races (screening never invents),
* on every suspicious site the escalated report *equals* the exact one,
* screening recall on racy sites clears the 90% bar,
* ``--jobs N`` two-tier output is byte-identical to sequential, and
* the detector flags validate (budget >= 1, mode-gated flags).
"""

import json

import pytest

from repro import WebRacer
from repro.__main__ import main
from repro.sites import build_corpus

@pytest.fixture(scope="module")
def corpus():
    # A mixed slice: the seeded corpus is racy through index 40 and
    # clean after, so [30:60] exercises both verdicts.
    return build_corpus(master_seed=0, limit=60)[30:60]


@pytest.fixture(scope="module")
def exact_report(corpus):
    return WebRacer(seed=0).check_corpus(corpus)


@pytest.fixture(scope="module")
def two_tier_report(corpus):
    return WebRacer(seed=0, detector="two-tier").check_corpus(corpus)


def _filtered_keys(result):
    live = result.page_report
    return {race.pair_key() for race in live.filtered_races}


class TestScreeningProperties:
    def test_two_tier_races_subset_of_exact(
        self, exact_report, two_tier_report
    ):
        for exact, tiered in zip(
            exact_report.reports, two_tier_report.reports
        ):
            assert exact.url == tiered.url
            assert _filtered_keys(tiered) <= _filtered_keys(exact)

    def test_suspicious_sites_equal_exact_report(
        self, exact_report, two_tier_report
    ):
        suspicious = 0
        for exact, tiered in zip(
            exact_report.reports, two_tier_report.reports
        ):
            if not tiered.suspicious:
                continue
            suspicious += 1
            assert tiered.tier == "escalated"
            assert _filtered_keys(tiered) == _filtered_keys(exact)
            assert tiered.filtered_counts() == exact.filtered_counts()
        assert suspicious > 0  # the slice must actually exercise tier 2

    def test_recall_at_least_90_percent(self, exact_report, two_tier_report):
        exact_total = sum(
            len(_filtered_keys(result)) for result in exact_report.reports
        )
        assert exact_total > 0
        found = sum(
            len(_filtered_keys(tiered) & _filtered_keys(exact))
            for exact, tiered in zip(
                exact_report.reports, two_tier_report.reports
            )
        )
        assert found / exact_total >= 0.9

    def test_clean_sites_are_not_escalated(self, two_tier_report):
        clean = [r for r in two_tier_report.reports if not r.suspicious]
        assert clean  # the slice must actually contain clean sites
        for result in clean:
            assert result.tier == "screen"
            assert result.races == []

    def test_screening_totals_aggregate(self, two_tier_report):
        totals = two_tier_report.screening_summary()
        assert totals is not None
        assert totals["suspicious"] == totals["escalated"]
        assert totals["suspicious"] >= 1


class TestCLI:
    def test_sequential_and_jobs_json_byte_identical(self, tmp_path, capsys):
        seq_json = tmp_path / "seq.json"
        par_json = tmp_path / "par.json"
        assert (
            main(
                [
                    "corpus", "--sites", "8", "--detector", "two-tier",
                    "--sample-seed", "3", "--json", str(seq_json),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "corpus", "--sites", "8", "--detector", "two-tier",
                    "--sample-seed", "3", "--jobs", "2",
                    "--json", str(par_json),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert seq_json.read_bytes() == par_json.read_bytes()
        document = json.loads(seq_json.read_text())
        assert document["screening"]["detector"] == "two-tier"

    def test_sample_budget_changes_are_deterministic(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            assert (
                main(
                    [
                        "corpus", "--sites", "6", "--detector", "sampling",
                        "--sample-budget", "4", "--sample-seed", "9",
                        "--json", str(path),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_flag_validation(self, capsys):
        assert (
            main(
                [
                    "corpus", "--sites", "2", "--detector", "two-tier",
                    "--sample-budget", "0",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("error: --sample-budget must be >= 1")
        assert len(err.strip().splitlines()) == 1

    def test_sample_flags_require_sampling_detector(self, capsys):
        assert main(["corpus", "--sites", "2", "--sample-budget", "8"]) == 2
        assert main(["corpus", "--sites", "2", "--sample-seed", "8"]) == 2
        err = capsys.readouterr().err
        assert "--detector sampling or two-tier" in err

    def test_check_two_tier_on_racy_page(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text(
            '<input type="text" id="q" /><script src="hint.js"></script>'
        )
        hint = tmp_path / "hint.js"
        hint.write_text("document.getElementById('q').value = 'hint';")
        status = main(
            [
                "check", str(page), "--resource", f"hint.js={hint}",
                "--detector", "two-tier",
            ]
        )
        out = capsys.readouterr().out
        assert status == 1  # harmful race found via escalation
        assert "escalated" in out
