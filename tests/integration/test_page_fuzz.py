"""Property-based testing of the whole pipeline on generated pages.

Hypothesis composes random small pages from the building blocks real pages
use (static content, inline/async scripts, timers, images, form fields)
and checks the system-level invariants that must hold for *any* page:

* the event loop terminates and the window load event fires;
* every reported race is CHC-unordered in the happens-before relation and
  involves a write;
* the detector agrees with an offline replay of the serialized trace;
* the same configuration is perfectly deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro.browser.page import Browser
from repro.core.serialize import dumps_trace, loads_trace

# ----------------------------------------------------------------------
# page building blocks


def _div(index):
    return f"<div id='z{index}'></div>"


def _inline_write(index):
    return f"<script>shared{index % 3} = {index};</script>"


def _inline_read(index):
    return (
        f"<script>r{index} = (typeof shared{index % 3} == 'undefined')"
        f" ? -1 : shared{index % 3};</script>"
    )


def _timer_write(index):
    return f"<script>setTimeout('shared{index % 3} = {index + 100};', {index % 7});</script>"


def _async_write(index):
    # Resource added by the composite strategy.
    return f"<script src='fuzz{index}.js' async='true'></script>"


def _image(index):
    return f"<img src='img{index}.png'>"


def _input(index):
    return f"<input type='text' id='field{index}'>"


def _lookup(index):
    return (
        f"<script>found{index} = document.getElementById('z{index}') != null;</script>"
    )


_BLOCKS = [
    _div,
    _inline_write,
    _inline_read,
    _timer_write,
    _async_write,
    _image,
    _input,
    _lookup,
]

block_indices = st.lists(
    st.tuples(st.integers(0, len(_BLOCKS) - 1), st.integers(0, 9)),
    min_size=1,
    max_size=10,
)


def build_page(blocks):
    parts = []
    resources = {}
    for block_kind, index in blocks:
        builder = _BLOCKS[block_kind]
        parts.append(builder(index))
        if builder is _async_write:
            resources[f"fuzz{index}.js"] = f"shared{index % 3} = {index + 50};"
        elif builder is _image:
            resources[f"img{index}.png"] = "bin"
    return "\n".join(parts), resources


def run_page(blocks, seed=0, explore=False):
    html, resources = build_page(blocks)
    browser = Browser(seed=seed, resources=resources)
    page = browser.open(html)
    page.auto_explore = explore
    page.run()
    return page


@given(block_indices, st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_every_generated_page_settles_and_loads(blocks, seed):
    page = run_page(blocks, seed=seed)
    assert page.loaded(), "window load must fire on every generated page"
    assert page.loop.pending() == 0


@given(block_indices, st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_all_reported_races_are_sound(blocks, seed):
    page = run_page(blocks, seed=seed)
    graph = page.monitor.graph
    for race in page.races:
        assert race.prior.is_write or race.current.is_write
        assert race.prior.op_id != race.current.op_id
        assert graph.concurrent(race.prior.op_id, race.current.op_id), race


@given(block_indices)
@settings(max_examples=40, deadline=None)
def test_offline_replay_matches_online(blocks):
    page = run_page(blocks, seed=3)
    loaded = loads_trace(dumps_trace(page.trace, page.monitor.graph))
    offline = loaded.detect()
    assert {race.location for race in offline.races} == {
        race.location for race in page.races
    }


@given(block_indices, st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_same_configuration_is_deterministic(blocks, seed):
    def signature():
        page = run_page(blocks, seed=seed, explore=True)
        return (
            len(page.trace.accesses),
            len(page.trace.operations),
            sorted(
                (race.prior.op_id, race.current.op_id) for race in page.races
            ),
            page.clock.now,
        )

    assert signature() == signature()


@given(block_indices)
@settings(max_examples=40, deadline=None)
def test_hb_graph_edges_are_forward_and_acyclic(blocks):
    page = run_page(blocks, seed=1)
    for edge in page.monitor.graph.edges:
        assert edge.src < edge.dst, "HB edges must follow creation order"
