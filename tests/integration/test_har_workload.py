"""End-to-end tests for HAR-driven checking and the connection model.

The bundled capture ``examples/pages/shop.har`` is the PR's acceptance
workload: a timer-guarded fallback write races with a 1.2 MB catalog
script.  Under the uniform latency model every resource arrives well
before the 250 ms timer, so the guarded write never executes and no race
is observable; under the connection model the catalog's size pushes its
arrival past the timer and the filtered form-field race appears.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.browser.scheduler import (
    RecordingScheduler,
    ReplayScheduler,
    SeededRandomScheduler,
)
from repro.explain.schedule_report import assemble_explore_document
from repro.schedule_runner import explore_pages, load_page_inputs, run_page_once

EXAMPLE_HAR = str(
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "pages" / "shop.har"
)

CONNECTION = {"model": "connection"}


def shop_page(network=None):
    [page] = load_page_inputs(EXAMPLE_HAR)
    if network:
        page.network = dict(network)
    return page


class TestCheckGolden:
    def test_uniform_model_runs_clean(self, capsys):
        assert main(["check", EXAMPLE_HAR]) == 0
        out = capsys.readouterr().out
        assert "0 after filtering" in out
        assert "#promo.value" not in out

    def test_connection_model_surfaces_the_race(self, capsys):
        assert main(["check", EXAMPLE_HAR, "--network", "connection"]) == 0
        out = capsys.readouterr().out
        assert "#promo.value" in out
        assert "write-write race" in out

    def test_differential_is_the_point(self, capsys):
        """The acceptance bar: the connection model finds a filtered race
        on the bundled capture that the uniform model never reports."""
        main(["check", EXAMPLE_HAR])
        uniform_out = capsys.readouterr().out
        main(["check", EXAMPLE_HAR, "--network", "connection"])
        connection_out = capsys.readouterr().out
        assert "#promo.value" in connection_out
        assert "#promo.value" not in uniform_out

    def test_cli_resource_overrides_har_body(self, tmp_path, capsys):
        stub = tmp_path / "catalog.js"
        stub.write_text("// neutered catalog\n")
        assert main([
            "check", EXAMPLE_HAR,
            "--resource", f"https://cdn.shop-static.example/catalog.js={stub}",
        ]) == 0
        assert "0 after filtering" in capsys.readouterr().out

    def test_json_dump_from_har(self, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main([
            "check", EXAMPLE_HAR, "--network", "connection",
            "--json", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        assert data["accesses"]


class TestCliErrors:
    def test_malformed_har_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.har"
        bad.write_text("this is { not json")
        assert main(["check", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: bad HAR '{bad}'")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_empty_capture_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.har"
        empty.write_text('{"log": {"entries": []}}')
        assert main(["check", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "no entries" in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_har_exits_2(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "gone.har")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read")

    def test_explore_bad_har_in_directory_exits_2(self, tmp_path, capsys):
        (tmp_path / "bad.har").write_text("{{{")
        assert main(["explore", str(tmp_path), "--schedules", "1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: bad HAR under '{tmp_path}'")
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize(
        "flag", ["--bandwidth", "--rtt", "--connections-per-origin"]
    )
    def test_tuning_flags_require_connection_model(self, flag, capsys):
        assert main(["check", EXAMPLE_HAR, flag, "5"]) == 2
        err = capsys.readouterr().err
        assert f"{flag} requires --network connection" in err
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--bandwidth", "0"),
            ("--bandwidth", "-10"),
            ("--rtt", "0"),
            ("--connections-per-origin", "0"),
        ],
    )
    def test_bad_tuning_values_exit_2(self, flag, value, capsys):
        args = ["check", EXAMPLE_HAR, "--network", "connection", flag, value]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_unknown_network_model_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", EXAMPLE_HAR, "--network", "pigeon"])
        assert excinfo.value.code == 2


class TestJobsByteIdentity:
    @pytest.mark.parametrize("network", [None, CONNECTION])
    def test_parallel_matches_sequential(self, network):
        sequential = assemble_explore_document(
            explore_pages([shop_page(network)], schedules=4, seed=0, jobs=1)
        )
        parallel = assemble_explore_document(
            explore_pages([shop_page(network)], schedules=4, seed=0, jobs=2)
        )
        assert json.dumps(sequential, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_network_config_reaches_the_run(self):
        """Sanity: the PageInput network dict actually configures the
        browser — a connection-model run of the capture spends far more
        virtual time (the 1.2 MB catalog) than a uniform run ever can."""
        from repro.browser.scheduler import FifoScheduler

        uniform_page, _, _, _ = run_page_once(
            shop_page(), FifoScheduler(), seed=0, hb_backend="graph"
        )
        connection_page, _, _, _ = run_page_once(
            shop_page(CONNECTION), FifoScheduler(), seed=0, hb_backend="graph"
        )
        assert uniform_page.loop.clock.now < 700  # everything inside max latency
        assert connection_page.loop.clock.now > 800  # catalog transfer dominates


class TestReplayProperty:
    @settings(max_examples=8, deadline=None)
    @given(schedule_seed=st.integers(min_value=0, max_value=10_000))
    def test_connection_runs_replay_bit_for_bit(self, schedule_seed):
        """Any recorded connection-model run must replay exactly: same
        schedule length, same operation count, same race fingerprints."""
        page = shop_page(CONNECTION)
        recorder = RecordingScheduler(SeededRandomScheduler(schedule_seed))
        recorded_page, _, recorded_fps, _ = run_page_once(
            page, recorder, seed=0, hb_backend="graph"
        )
        trace = recorder.trace(seed=schedule_seed, page=page.url)
        replayed_page, _, replayed_fps, _ = run_page_once(
            page, ReplayScheduler(trace), seed=0, hb_backend="graph"
        )
        assert replayed_fps == recorded_fps
        assert len(replayed_page.trace.accesses) == len(
            recorded_page.trace.accesses
        )
        assert replayed_page.loop.executed_count == recorded_page.loop.executed_count
