"""Tests for witness-path queries over rule-labeled HB edges."""

import pytest

from repro.core.hb.backend import make_backend
from repro.core.hb.chains import IncrementalChainClocks
from repro.core.hb.graph import HBGraph
from repro.core.hb.witness import (
    ancestor_closure,
    hb_path,
    nearest_common_ancestor,
    race_witness,
)

#: The classic diamond-with-race shape: 1 orders 2 and 3 via different
#: rules; 4 joins only 2's side, so (3, 4) and (2, 3) are concurrent.
EDGES = [
    (1, 2, "1a:static-order"),
    (1, 3, "8:target-created-before-dispatch"),
    (2, 4, "2:create-before-exe"),
]


def build(store):
    for src, dst, rule in EDGES:
        store.add_edge(src, dst, rule)
    return store


@pytest.fixture(params=["graph", "chains", "crosscheck", "standalone-clocks"])
def hb(request):
    """Every HB store variant answers witness queries identically."""
    if request.param == "standalone-clocks":
        return build(IncrementalChainClocks())
    return build(make_backend(request.param))


class TestAncestorClosure:
    def test_transitive(self, hb):
        assert ancestor_closure(hb, 4) == {1, 2}

    def test_root_has_no_ancestors(self, hb):
        assert ancestor_closure(hb, 1) == set()


class TestNearestCommonAncestor:
    def test_diamond_sides_share_the_root(self, hb):
        assert nearest_common_ancestor(hb, 3, 4) == 1

    def test_max_id_common_ancestor_wins(self):
        graph = HBGraph()
        for src, dst in [(1, 2), (2, 5), (2, 6), (1, 3), (3, 5), (3, 6)]:
            graph.add_edge(src, dst)
        # 1, 2 and 3 all precede both 5 and 6; 3 is the nearest (highest
        # id, hence HB-maximal under the forward discipline).
        assert nearest_common_ancestor(graph, 5, 6) == 3

    def test_disjoint_cones(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        assert nearest_common_ancestor(graph, 2, 4) is None


class TestHbPath:
    def test_path_carries_rule_labels(self, hb):
        steps = hb_path(hb, 1, 4)
        assert [(s.src, s.dst) for s in steps] == [(1, 2), (2, 4)]
        assert [s.rule for s in steps] == [
            "1a:static-order", "2:create-before-exe",
        ]

    def test_no_path_returns_none(self, hb):
        assert hb_path(hb, 3, 4) is None
        assert hb_path(hb, 4, 3) is None

    def test_trivial_path_is_empty(self, hb):
        assert hb_path(hb, 2, 2) == []

    def test_shortest_path_preferred(self):
        graph = HBGraph()
        for src, dst, rule in [
            (1, 2, "long-a"), (2, 3, "long-b"), (3, 9, "long-c"),
            (1, 9, "direct"),
        ]:
            graph.add_edge(src, dst, rule)
        steps = hb_path(graph, 1, 9)
        assert len(steps) == 1
        assert steps[0].rule == "direct"


class TestRaceWitness:
    def test_concurrent_pair(self, hb):
        witness = race_witness(hb, 3, 4)
        assert not witness.ordered
        assert witness.nca == 1
        assert witness.common_ancestor_count == 1
        assert witness.rules_a() == ["8:target-created-before-dispatch"]
        assert witness.rules_b() == [
            "1a:static-order", "2:create-before-exe",
        ]

    def test_ordered_pair_flagged(self, hb):
        witness = race_witness(hb, 2, 4)
        assert witness.ordered

    def test_disjoint_pair(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        witness = race_witness(graph, 2, 4)
        assert witness.nca is None
        assert witness.common_ancestor_count == 0
        assert witness.path_a == [] and witness.path_b == []
        assert not witness.ordered

    @pytest.mark.parametrize(
        "backend", ["graph", "chains", "crosscheck", "shb"]
    )
    def test_disjoint_pair_on_every_backend(self, backend):
        """Two root dispatches with no common HB ancestor (e.g. two
        unrelated event sources) must yield an empty-prefix witness on
        every backend — never raise."""
        store = make_backend(backend)
        store.add_edge(1, 2, "8:target-created-before-dispatch")
        store.add_edge(3, 4, "8:target-created-before-dispatch")
        witness = race_witness(store, 2, 4)
        assert witness.nca is None
        assert witness.common_ancestor_count == 0
        assert witness.path_a == [] and witness.path_b == []
        assert not witness.ordered

    def test_disjoint_pair_isolated_roots(self):
        """Roots with no edges at all (operations known to the store but
        never ordered) are the degenerate disjoint case."""
        graph = HBGraph()
        graph.add_operation(1)
        graph.add_operation(2)
        witness = race_witness(graph, 1, 2)
        assert witness.nca is None
        assert witness.path_a == [] and witness.path_b == []


class TestEdgeRuleProvenance:
    def test_graph_edge_rule(self):
        graph = build(HBGraph())
        assert graph.edge_rule(1, 2) == "1a:static-order"
        assert graph.edge_rule(2, 1) is None
        assert graph.edge_rule(1, 99) is None

    def test_chains_retain_edge_rules(self):
        clocks = build(IncrementalChainClocks())
        assert clocks.edge_rule(1, 3) == "8:target-created-before-dispatch"
        assert sorted(clocks.predecessors(4)) == [2]

    def test_duplicate_edge_keeps_first_rule(self):
        graph = HBGraph()
        assert graph.add_edge(1, 2, "first")
        assert not graph.add_edge(1, 2, "second")
        assert graph.edge_rule(1, 2) == "first"
