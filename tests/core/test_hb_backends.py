"""Cross-validation of the three happens-before representations.

``HBGraph`` (frozen ancestor sets), the offline ``ChainVectorClocks``
ablation, and the online ``IncrementalChainClocks`` backend must answer
every ``happens_before``/``concurrent`` query identically — on random
DAGs, under online interleaving of construction and queries, and on real
traces produced by corpus page loads.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.core.hb.backend import (
    BackendDisagreement,
    ChainBackedGraph,
    CrosscheckGraph,
    make_backend,
)
from repro.core.hb.chains import IncrementalChainClocks
from repro.core.hb.graph import HBGraph
from repro.core.hb.vector_clock import ChainVectorClocks


def build_all(edges, nodes=()):
    """The same DAG as a graph, offline clocks, and incremental clocks."""
    graph = HBGraph()
    chains = IncrementalChainClocks()
    for node in nodes:
        graph.add_operation(node)
        chains.add_operation(node)
    for src, dst in edges:
        graph.add_edge(src, dst)
        chains.add_edge(src, dst)
    return graph, ChainVectorClocks(graph), chains


forward_edges = st.lists(
    st.tuples(st.integers(1, 25), st.integers(1, 25)).map(
        lambda pair: (min(pair), max(pair))
    ).filter(lambda pair: pair[0] != pair[1]),
    max_size=60,
)


@given(forward_edges)
@settings(max_examples=200, deadline=None)
def test_three_representations_agree_on_random_dags(edges):
    graph, offline, incremental = build_all(edges)
    nodes = graph.operation_ids()
    for a in nodes:
        for b in nodes:
            expected = graph.happens_before(a, b)
            assert offline.happens_before(a, b) == expected, (a, b, edges)
            assert incremental.happens_before(a, b) == expected, (a, b, edges)
    for a in nodes:
        for b in nodes:
            expected = graph.concurrent(a, b)
            assert offline.concurrent(a, b) == expected
            assert incremental.concurrent(a, b) == expected


@given(forward_edges)
@settings(max_examples=100, deadline=None)
def test_online_queries_match_offline_answers(edges):
    """Frozen-prefix discipline: deliver edges grouped by destination in
    increasing order, querying after each group — the answers given mid-
    construction must equal the answers computed from the finished DAG."""
    reference = HBGraph()
    for src, dst in edges:
        reference.add_edge(src, dst)

    incremental = IncrementalChainClocks()
    online_answers = []
    seen = []
    for dst in sorted({d for _s, d in edges}):
        for src, edge_dst in edges:
            if edge_dst == dst:
                incremental.add_edge(src, dst)
        seen.append(dst)
        for a in seen:
            online_answers.append((a, dst, incremental.happens_before(a, dst)))

    for a, b, answer in online_answers:
        assert answer == reference.happens_before(a, b), (a, b, edges)


@pytest.mark.parametrize("site_index", [0, 3])
def test_backends_agree_on_real_corpus_traces(site_index):
    """Replay-level agreement on genuine page-load traces: identical race
    streams and identical answers for every operation pair."""
    from repro import WebRacer
    from repro.sites import build_corpus

    site = build_corpus(master_seed=0, limit=site_index + 1)[site_index]

    baseline = WebRacer(seed=0, hb_backend="graph").check_site(site)
    checked = WebRacer(seed=0, hb_backend="crosscheck").check_site(site)

    def signature(report):
        return [
            (race.kind, race.op_pair(), type(race.location).__name__)
            for race in report.raw_races
        ]

    # The crosscheck run already raised if any single CHC query disagreed;
    # the race streams must also match the graph run exactly.
    assert signature(baseline) == signature(checked)
    assert checked.page.monitor.graph.queries_checked > 0

    # Exhaustive pairwise agreement on the finished trace.
    graph = baseline.page.monitor.graph
    rebuilt = IncrementalChainClocks()
    for op_id in graph.operation_ids():
        rebuilt.add_operation(op_id)
    for edge in graph.edges:
        rebuilt.add_edge(edge.src, edge.dst, edge.rule)
    nodes = graph.operation_ids()
    for a in nodes:
        for b in nodes:
            assert rebuilt.happens_before(a, b) == graph.happens_before(a, b)


class TestIncrementalInvariants:
    def test_backward_edge_raises(self):
        chains = IncrementalChainClocks()
        with pytest.raises(ValueError, match="backward"):
            chains.add_edge(5, 3)

    def test_edge_into_finalized_operation_raises(self):
        chains = IncrementalChainClocks()
        chains.add_edge(1, 2)
        chains.add_operation(3)
        assert chains.happens_before(1, 2)
        with pytest.raises(ValueError, match="finalized"):
            chains.add_edge(1, 2, rule="late")
        # A fresh edge into a not-yet-queried operation is still fine.
        assert chains.add_edge(2, 3)

    def test_duplicate_edges_are_idempotent(self):
        chains = IncrementalChainClocks()
        assert chains.add_edge(1, 2)
        assert not chains.add_edge(1, 2)
        assert chains.happens_before(1, 2)

    def test_self_edge_rejected(self):
        chains = IncrementalChainClocks()
        assert not chains.add_edge(4, 4)

    def test_unknown_operations_unordered(self):
        chains = IncrementalChainClocks()
        chains.add_edge(1, 2)
        assert not chains.happens_before(1, 99)
        assert not chains.happens_before(99, 1)
        assert not chains.concurrent(7, 7)

    def test_chc_bottom_handling(self):
        chains = IncrementalChainClocks()
        chains.add_operation(0)
        chains.add_edge(1, 2)
        assert not chains.chc(0, 2)
        assert not chains.chc(1, 0)
        chains.add_operation(3)
        assert chains.chc(2, 3)

    def test_lazy_finalization_is_partial(self):
        chains = IncrementalChainClocks()
        chains.add_edge(1, 2)
        chains.add_edge(3, 4)
        chains.happens_before(1, 2)
        assert chains.finalized_count() == 2  # 3 and 4 untouched
        chains.finalize_all()
        assert chains.finalized_count() == 4

    def test_chains_partition_finalized_operations(self):
        chains = IncrementalChainClocks()
        for src, dst in [(1, 2), (1, 3), (3, 5), (2, 4)]:
            chains.add_edge(src, dst)
        chains.finalize_all()
        seen = sorted(op for chain in chains.chains() for op in chain)
        assert seen == chains.operation_ids()

    def test_memory_cells_counts_clock_entries(self):
        chains = IncrementalChainClocks()
        chains.add_edge(1, 2)
        chains.add_edge(2, 3)
        assert chains.memory_cells() == 0  # nothing finalized yet
        chains.finalize_all()
        assert chains.memory_cells() >= 3


class TestBackendFactory:
    def test_names(self):
        assert isinstance(make_backend("graph"), HBGraph)
        assert isinstance(make_backend("chains"), ChainBackedGraph)
        assert isinstance(make_backend("crosscheck"), CrosscheckGraph)
        with pytest.raises(ValueError, match="unknown hb backend"):
            make_backend("nope")

    def test_chain_backed_graph_keeps_structure(self):
        backend = make_backend("chains")
        backend.add_edge(1, 2, rule="1a:static-order")
        backend.add_edge(2, 3, rule="2:create-before-exe")
        assert backend.edge_count() == 2
        assert [e.rule for e in backend.edges_by_rule("1a:static-order")]
        assert backend.happens_before(1, 3)
        assert not backend.concurrent(1, 2)
        # Queries never populate the ancestor cache.
        assert backend._ancestor_cache == {}
        assert backend.memory_cells() == backend.clocks.memory_cells()

    def test_crosscheck_detects_disagreement(self):
        backend = make_backend("crosscheck")
        backend.add_edge(1, 2)
        assert backend.happens_before(1, 2)
        assert backend.queries_checked == 1
        # Sabotage the chain side: claim op 1 sits unreachably high on its
        # chain, so the two engines must now disagree on 1 ≺ 2.
        backend.clocks.position[1] = (0, 99)
        with pytest.raises(BackendDisagreement):
            backend.happens_before(1, 2)

    def test_crosscheck_concurrent_checks_both_directions(self):
        backend = make_backend("crosscheck")
        backend.add_edge(1, 2)
        backend.add_operation(3)
        assert backend.concurrent(2, 3)
        assert backend.queries_checked >= 2
