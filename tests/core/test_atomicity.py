"""Tests for the atomicity-violation (lost update) checker."""

import pytest

from repro.browser.page import Browser
from repro.core.access import READ, WRITE, Access
from repro.core.atomicity import AtomicityChecker, check_atomicity
from repro.core.hb.graph import HBGraph
from repro.core.locations import VarLocation
from repro.core.trace import Trace

LOC = VarLocation(cell_id=1, name="counter")


def build(edges, accesses):
    graph = HBGraph()
    trace = Trace()
    ops = {op for _kind, op in accesses}
    for op in ops:
        graph.add_operation(op)
    for src, dst in edges:
        graph.add_edge(src, dst)
    for kind, op in accesses:
        trace.record(Access(kind=kind, op_id=op, location=LOC))
    return trace, graph


class TestSyntheticPatterns:
    def test_classic_lost_update(self):
        """A reads, B writes (concurrent), A writes back."""
        trace, graph = build(
            edges=[],
            accesses=[(READ, 1), (WRITE, 2), (WRITE, 1)],
        )
        violations = check_atomicity(trace, graph)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.read.op_id == 1
        assert violation.intervening.op_id == 2
        checker = AtomicityChecker(trace, graph)
        checker.check()
        assert len(checker.observed_interleavings()) == 1

    def test_ordered_operations_are_fine(self):
        trace, graph = build(
            edges=[(1, 2)],
            accesses=[(READ, 1), (WRITE, 1), (WRITE, 2)],
        )
        assert check_atomicity(trace, graph) == []

    def test_read_only_concurrency_is_fine(self):
        trace, graph = build(
            edges=[],
            accesses=[(READ, 1), (READ, 2), (WRITE, 1)],
        )
        assert check_atomicity(trace, graph) == []

    def test_write_without_read_is_not_rmw(self):
        trace, graph = build(
            edges=[],
            accesses=[(WRITE, 1), (WRITE, 2)],
        )
        assert check_atomicity(trace, graph) == []

    def test_concurrent_but_not_observed_inside_window(self):
        """B's write outside the observed window is still a *potential*
        lost update (a different schedule serializes it inside)."""
        trace, graph = build(
            edges=[],
            accesses=[(WRITE, 2), (READ, 1), (WRITE, 1)],
        )
        checker = AtomicityChecker(trace, graph)
        violations = checker.check()
        assert len(violations) == 1
        assert checker.observed_interleavings() == []

    def test_dedup_per_op_pair(self):
        trace, graph = build(
            edges=[],
            accesses=[(READ, 1), (WRITE, 2), (WRITE, 2), (WRITE, 1)],
        )
        assert len(check_atomicity(trace, graph)) == 1


class TestOnRealPages:
    def test_counter_increment_lost_update(self):
        """Two async scripts both do hits = hits + 1 — the canonical lost
        update; one increment can vanish."""
        page = Browser(
            seed=0,
            resources={
                "a.js": "hits = hits + 1;",
                "b.js": "hits = hits + 1;",
            },
        ).load(
            "<script>hits = 0;</script>"
            "<script src='a.js' async='true'></script>"
            "<script src='b.js' async='true'></script>"
        )
        violations = check_atomicity(page.trace, page.monitor.graph)
        lost_on_hits = [
            v for v in violations if getattr(v.location, "name", "") == "hits"
        ]
        assert lost_on_hits

    def test_sequential_increments_clean(self):
        page = Browser(seed=0).load(
            "<script>hits = 0;</script>"
            "<script>hits = hits + 1;</script>"
            "<script>hits = hits + 1;</script>"
        )
        violations = check_atomicity(page.trace, page.monitor.graph)
        assert [
            v for v in violations if getattr(v.location, "name", "") == "hits"
        ] == []
        assert page.interpreter.global_object.get_own("hits") == 2.0

    def test_atomicity_strictly_more_than_race(self):
        """The race detector flags `hits` too, but cannot tell the
        read-modify-write structure; the checker names the bracketing
        accesses."""
        page = Browser(
            seed=0,
            resources={"a.js": "hits = hits + 1;", "b.js": "hits = hits + 1;"},
        ).load(
            "<script>hits = 0;</script>"
            "<script src='a.js' async='true'></script>"
            "<script src='b.js' async='true'></script>"
        )
        violations = check_atomicity(page.trace, page.monitor.graph)
        violation = next(
            v for v in violations if getattr(v.location, "name", "") == "hits"
        )
        assert violation.read.is_read
        assert violation.write_back.is_write
        assert violation.read.op_id == violation.write_back.op_id
