"""Tests for logical memory locations (Section 4)."""

import pytest

from repro.core.locations import (
    ATTR_SLOT,
    CollectionLocation,
    DomPropLocation,
    HandlerLocation,
    HElemLocation,
    PropLocation,
    VarLocation,
    describe_key,
    id_key,
    location_family,
    node_key,
)


class TestIdentity:
    def test_id_keyed_elements_collide_across_lookups(self):
        """getElementById('dw') before parsing must hit the same location
        the later <div id=dw> insertion writes (Fig. 3)."""
        read_location = HElemLocation(id_key(7, "dw"))
        write_location = HElemLocation(id_key(7, "dw"))
        assert read_location == write_location
        assert hash(read_location) == hash(write_location)

    def test_different_documents_distinct(self):
        assert HElemLocation(id_key(1, "dw")) != HElemLocation(id_key(2, "dw"))

    def test_node_keyed_elements_distinct(self):
        assert HElemLocation(node_key(4)) != HElemLocation(node_key(5))

    def test_var_locations_by_cell(self):
        assert VarLocation(1, "x") == VarLocation(1, "x")
        assert VarLocation(1, "x") != VarLocation(2, "x")

    def test_prop_locations(self):
        assert PropLocation(10, "f") == PropLocation(10, "f")
        assert PropLocation(10, "f") != PropLocation(10, "g")

    def test_handler_location_split_by_handler(self):
        """Disjoint handlers for the same event must not interfere
        (Section 4.3)."""
        base = (id_key(1, "btn"), "click")
        assert HandlerLocation(*base, "fn:1") != HandlerLocation(*base, "fn:2")
        assert HandlerLocation(*base, ATTR_SLOT) != HandlerLocation(*base, "fn:1")

    def test_handler_location_split_by_event(self):
        key = id_key(1, "btn")
        assert HandlerLocation(key, "click") != HandlerLocation(key, "focus")

    def test_collection_locations(self):
        assert CollectionLocation(1, "tag", "div") == CollectionLocation(1, "tag", "div")
        assert CollectionLocation(1, "tag", "div") != CollectionLocation(1, "tag", "img")
        assert CollectionLocation(1, "images") != CollectionLocation(1, "forms")


class TestFormFieldDetection:
    def test_input_value_is_form_field(self):
        location = DomPropLocation(id_key(1, "q"), "value", tag="input")
        assert location.is_form_field_value

    def test_textarea_and_select(self):
        assert DomPropLocation(node_key(2), "value", tag="textarea").is_form_field_value
        assert DomPropLocation(node_key(2), "selectedIndex", tag="select").is_form_field_value

    def test_checked_is_form_field(self):
        assert DomPropLocation(node_key(3), "checked", tag="input").is_form_field_value

    def test_div_value_is_not(self):
        assert not DomPropLocation(node_key(3), "value", tag="div").is_form_field_value

    def test_input_style_is_not(self):
        assert not DomPropLocation(node_key(3), "style", tag="input").is_form_field_value


class TestFamilies:
    def test_jsvar_family(self):
        assert location_family(VarLocation(1, "x")) == "jsvar"
        assert location_family(PropLocation(1, "x")) == "jsvar"
        assert location_family(DomPropLocation(node_key(1), "value", "input")) == "jsvar"

    def test_helem_family(self):
        assert location_family(HElemLocation(node_key(1))) == "helem"
        assert location_family(CollectionLocation(1, "images")) == "helem"

    def test_eloc_family(self):
        assert location_family(HandlerLocation(node_key(1), "load")) == "eloc"

    def test_non_location_raises(self):
        with pytest.raises(TypeError):
            location_family("not a location")


class TestDescriptions:
    def test_describe_key(self):
        assert describe_key(id_key(1, "dw")) == "#dw"
        assert "node" in describe_key(node_key(9))

    def test_describe_handler(self):
        text = HandlerLocation(id_key(1, "i"), "load").describe()
        assert "onload" in text

    def test_describe_dom_prop(self):
        text = DomPropLocation(id_key(1, "q"), "value", "input").describe()
        assert "#q.value" == text
