"""Test package."""
