"""Tests for schedulable happens-before (SHB) race prediction.

Covers the ``shb`` backend registration, reads-from extraction, the SHB
graph construction (which must tolerate backward reads-from edges), pair
classification into ``schedulable``/``conditional``, and the soundness
property the predict pipeline relies on: predictions never overlap the
exact detector's observed races, and every observed race is covered by
the full-history candidate sweep.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.access import READ, WRITE, Access
from repro.core.detector import RaceDetector
from repro.core.full_detector import FullHistoryDetector
from repro.core.hb import (
    SHB_RF_RULE,
    ReadsFromEdge,
    ShbGraph,
    build_shb,
    predict_races,
    reads_from_edges,
)
from repro.core.hb.backend import HB_BACKENDS, make_backend
from repro.core.hb.graph import HBGraph
from repro.core.hb.shb import (
    STATUS_CONDITIONAL,
    STATUS_SCHEDULABLE,
    classify_pair,
    observed_races,
)
from repro.core.locations import VarLocation
from repro.core.trace import Trace

LOC = VarLocation(cell_id=1, name="x")
LOC2 = VarLocation(cell_id=2, name="y")
LOC3 = VarLocation(cell_id=3, name="z")


def make_trace(n_ops, edges, accesses):
    """A synthetic trace + rule graph: ``accesses`` is a list of
    ``(kind, op_id, location)`` in trace order."""
    trace = Trace()
    for _ in range(n_ops):
        trace.operations.create("exe")
    graph = HBGraph()
    for op_id in range(1, n_ops + 1):
        graph.add_operation(op_id)
    for src, dst in edges:
        graph.add_edge(src, dst, "1a:static-order")
    for kind, op_id, location in accesses:
        trace.record(Access(kind=kind, op_id=op_id, location=location))
    return trace, graph


class TestBackendRegistration:
    def test_shb_listed(self):
        assert "shb" in HB_BACKENDS

    def test_make_backend_returns_shb_graph(self):
        assert isinstance(make_backend("shb"), ShbGraph)

    def test_shb_is_predictive_marker(self):
        assert ShbGraph().is_predictive is True
        for name in ("graph", "chains", "crosscheck"):
            assert not getattr(make_backend(name), "is_predictive", False)

    def test_online_queries_match_chains(self):
        edges = [(1, 2), (1, 3), (2, 4)]
        shb, chains = make_backend("shb"), make_backend("chains")
        for store in (shb, chains):
            for src, dst in edges:
                store.add_edge(src, dst)
        for a in range(1, 5):
            for b in range(1, 5):
                assert shb.happens_before(a, b) == chains.happens_before(a, b)


class TestReadsFromEdges:
    def test_read_pairs_with_last_write(self):
        trace, graph = make_trace(
            4,
            [(1, 2), (1, 3), (1, 4)],
            [(WRITE, 2, LOC), (WRITE, 3, LOC), (READ, 4, LOC)],
        )
        edges = reads_from_edges(trace, graph)
        assert [(e.src, e.dst) for e in edges] == [(3, 4)]

    def test_same_operation_skipped(self):
        trace, graph = make_trace(2, [(1, 2)], [(WRITE, 2, LOC), (READ, 2, LOC)])
        assert reads_from_edges(trace, graph) == []

    def test_read_before_any_write_skipped(self):
        trace, graph = make_trace(2, [(1, 2)], [(READ, 2, LOC)])
        assert reads_from_edges(trace, graph) == []

    def test_deduplicated_per_pair_and_location(self):
        trace, graph = make_trace(
            3,
            [(1, 2), (1, 3)],
            [(WRITE, 2, LOC), (READ, 3, LOC), (READ, 3, LOC)],
        )
        assert len(reads_from_edges(trace, graph)) == 1

    def test_racy_flag_tracks_rule_concurrency(self):
        trace, graph = make_trace(
            4,
            [(1, 2), (2, 3), (1, 4)],
            [(WRITE, 2, LOC), (READ, 3, LOC), (WRITE, 3, LOC2), (READ, 4, LOC2)],
        )
        by_pair = {(e.src, e.dst): e for e in reads_from_edges(trace, graph)}
        assert by_pair[(2, 3)].racy is False  # 2 -> 3 is rule-ordered
        assert by_pair[(3, 4)].racy is True  # 3 and 4 are concurrent


class TestBuildShb:
    def test_keeps_rule_edges_and_labels(self):
        trace, graph = make_trace(3, [(1, 2), (1, 3)], [])
        shb, rf = build_shb(trace, graph)
        assert shb.edge_rule(1, 2) == "1a:static-order"
        assert rf == []

    def test_reads_from_edges_labeled(self):
        trace, graph = make_trace(
            3, [(1, 2), (1, 3)], [(WRITE, 2, LOC), (READ, 3, LOC)]
        )
        shb, rf = build_shb(trace, graph)
        assert shb.edge_rule(2, 3) == SHB_RF_RULE
        assert len(rf) == 1

    def test_backward_reads_from_edge_accepted(self):
        """Creation order is not execution order: a read in a lower-id
        operation can observe a write from a higher-id one.  The SHB
        graph must accept the resulting backward edge."""
        trace, graph = make_trace(
            3,
            [(1, 2), (1, 3)],
            [(WRITE, 3, LOC), (READ, 2, LOC)],
        )
        shb, rf = build_shb(trace, graph)
        assert [(e.src, e.dst) for e in rf] == [(3, 2)]
        assert shb.edge_rule(3, 2) == SHB_RF_RULE


class TestClassifyPair:
    def test_unordered_pair_is_schedulable(self):
        trace, graph = make_trace(3, [(1, 2), (1, 3)], [])
        shb, rf = build_shb(trace, graph)
        status, blocking = classify_pair(shb, rf, 2, 3)
        assert status == STATUS_SCHEDULABLE
        assert blocking == ()

    def test_direct_pair_edge_excluded(self):
        """The reads-from edge between the pair itself is the conflict
        under prediction, not a constraint on it."""
        trace, graph = make_trace(
            3, [(1, 2), (1, 3)], [(WRITE, 2, LOC), (READ, 3, LOC)]
        )
        shb, rf = build_shb(trace, graph)
        status, _ = classify_pair(shb, rf, 2, 3)
        assert status == STATUS_SCHEDULABLE

    def test_path_through_racy_rf_is_conditional(self):
        trace, graph = make_trace(
            4,
            [(1, 2), (1, 3), (1, 4)],
            [
                (WRITE, 2, LOC), (READ, 3, LOC),     # racy rf 2 -> 3
                (WRITE, 3, LOC2), (READ, 4, LOC2),   # racy rf 3 -> 4
            ],
        )
        shb, rf = build_shb(trace, graph)
        status, blocking = classify_pair(shb, rf, 2, 4)
        assert status == STATUS_CONDITIONAL
        assert [(e.src, e.dst) for e in blocking] == [(2, 3), (3, 4)]
        assert all(e.racy for e in blocking)

    def test_rule_ordered_path_has_no_blocking_edges(self):
        trace, graph = make_trace(3, [(1, 2), (2, 3)], [])
        shb, rf = build_shb(trace, graph)
        status, blocking = classify_pair(shb, rf, 1, 3)
        assert status == STATUS_CONDITIONAL
        assert blocking == ()


class TestPredictRaces:
    def test_suppressed_pair_becomes_prediction(self):
        """Footnote 13 (one race per location) hides the second racing
        pair from the exact detector; SHB predicts it."""
        trace, graph = make_trace(
            4,
            [(1, 2), (1, 3), (1, 4)],
            [(WRITE, 2, LOC), (READ, 3, LOC), (READ, 4, LOC)],
        )
        analysis = predict_races(trace, graph)
        assert [r.op_pair() for r in analysis.observed] == [(2, 3)]
        assert [p.op_pair() for p in analysis.predictions] == [(2, 4)]
        assert analysis.predictions[0].status == STATUS_SCHEDULABLE

    def test_observed_supplied_or_recomputed_agree(self):
        trace, graph = make_trace(
            4,
            [(1, 2), (1, 3), (1, 4)],
            [(WRITE, 2, LOC), (READ, 3, LOC), (READ, 4, LOC)],
        )
        supplied = predict_races(trace, graph, observed_races(trace, graph))
        recomputed = predict_races(trace, graph)
        assert supplied.summary() == recomputed.summary()

    def test_no_conflicts_no_predictions(self):
        trace, graph = make_trace(3, [(1, 2), (2, 3)], [(WRITE, 2, LOC)])
        analysis = predict_races(trace, graph)
        assert analysis.observed == []
        assert analysis.predictions == []
        assert analysis.candidates == 0

    def test_summary_counts(self):
        trace, graph = make_trace(
            4,
            [(1, 2), (1, 3), (1, 4)],
            [(WRITE, 2, LOC), (READ, 3, LOC), (READ, 4, LOC)],
        )
        analysis = predict_races(trace, graph)
        assert "1 observed" in analysis.summary()
        assert "1 predicted" in analysis.summary()

    def test_describe_mentions_blocking_edges(self):
        prediction_trace, graph = make_trace(
            5,
            [(1, 2), (1, 3), (1, 4), (1, 5)],
            [
                (WRITE, 2, LOC), (READ, 3, LOC), (READ, 4, LOC),
                (WRITE, 3, LOC2), (READ, 4, LOC2),
            ],
        )
        analysis = predict_races(prediction_trace, graph)
        conditional = analysis.by_status(STATUS_CONDITIONAL)
        assert conditional
        assert "requires flipping reads-from" in conditional[0].describe()


def _race_keys(races):
    return {
        (str(race.location), min(*race.op_pair()), max(*race.op_pair()))
        for race in races
        if race.prior.op_id != race.current.op_id
    }


@st.composite
def random_trace(draw):
    n_ops = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for dst in range(2, n_ops + 1):
        for src in range(1, dst):
            if draw(st.booleans()):
                edges.append((src, dst))
    n_accesses = draw(st.integers(min_value=0, max_value=12))
    locations = [LOC, LOC2, LOC3]
    accesses = [
        (
            draw(st.sampled_from([READ, WRITE])),
            draw(st.integers(min_value=1, max_value=n_ops)),
            draw(st.sampled_from(locations)),
        )
        for _ in range(n_accesses)
    ]
    return n_ops, edges, accesses


class TestPredictionSoundness:
    """Satellite property: SHB's candidate sweep covers every race the
    exact detector reports, and predictions never duplicate them."""

    @given(random_trace())
    @settings(max_examples=60, deadline=None)
    def test_exact_races_covered_and_disjoint(self, shape):
        n_ops, edges, accesses = shape
        trace, graph = make_trace(n_ops, edges, accesses)

        exact = RaceDetector(graph)
        sweep = FullHistoryDetector(graph)
        for access in trace.accesses:
            exact.on_access(access)
            sweep.on_access(access)

        analysis = predict_races(trace, graph)
        observed_keys = _race_keys(analysis.observed)
        predicted_keys = _race_keys([p.race for p in analysis.predictions])
        sweep_keys = _race_keys(sweep.races)

        # The analysis baseline is exactly the exact detector's output.
        assert observed_keys == _race_keys(exact.races)
        # Every exact race is also seen by the full-history sweep …
        assert observed_keys <= sweep_keys
        # … and predictions are precisely the sweep's surplus.
        assert predicted_keys == sweep_keys - observed_keys
        assert not (predicted_keys & observed_keys)
        # Every prediction carries a valid classification.
        for prediction in analysis.predictions:
            assert prediction.status in (
                STATUS_SCHEDULABLE, STATUS_CONDITIONAL,
            )
            if prediction.status == STATUS_SCHEDULABLE:
                assert prediction.blocking_rf == ()

    @given(random_trace())
    @settings(max_examples=30, deadline=None)
    def test_crosscheck_backend_agrees(self, shape):
        n_ops, edges, accesses = shape
        trace, _ = make_trace(n_ops, edges, accesses)
        by_backend = {}
        for name in ("graph", "crosscheck", "shb"):
            hb = make_backend(name)
            for op_id in range(1, n_ops + 1):
                hb.add_operation(op_id)
            for src, dst in edges:
                hb.add_edge(src, dst, "1a:static-order")
            analysis = predict_races(trace, hb)
            by_backend[name] = (
                _race_keys(analysis.observed),
                _race_keys([p.race for p in analysis.predictions]),
                sorted(p.status for p in analysis.predictions),
            )
        assert by_backend["graph"] == by_backend["crosscheck"]
        assert by_backend["graph"] == by_backend["shb"]
