"""Tests for the constant-memory race detector (Section 5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.access import READ, WRITE, Access
from repro.core.detector import READ_WRITE, WRITE_WRITE, RaceDetector
from repro.core.full_detector import FullHistoryDetector
from repro.core.hb.graph import HBGraph
from repro.core.locations import VarLocation

LOC = VarLocation(cell_id=1, name="x")
OTHER = VarLocation(cell_id=2, name="y")


def access(kind, op, location=LOC):
    return Access(kind=kind, op_id=op, location=location)


def detector_with(edges, **kwargs):
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    return RaceDetector(graph, **kwargs)


class TestBasicDetection:
    def test_concurrent_write_write_race(self):
        det = detector_with([(1, 2), (1, 3)])
        det.on_access(access(WRITE, 2))
        det.on_access(access(WRITE, 3))
        assert len(det.races) == 1
        assert det.races[0].kind == WRITE_WRITE

    def test_concurrent_write_then_read_race(self):
        det = detector_with([(1, 2), (1, 3)])
        det.on_access(access(WRITE, 2))
        det.on_access(access(READ, 3))
        assert det.races[0].kind == READ_WRITE

    def test_concurrent_read_then_write_race(self):
        det = detector_with([(1, 2), (1, 3)])
        det.on_access(access(READ, 2))
        det.on_access(access(WRITE, 3))
        assert det.races[0].kind == READ_WRITE

    def test_ordered_accesses_do_not_race(self):
        det = detector_with([(2, 3)])
        det.on_access(access(WRITE, 2))
        det.on_access(access(WRITE, 3))
        assert det.races == []

    def test_read_read_never_races(self):
        det = detector_with([(1, 2), (1, 3)])
        det.on_access(access(READ, 2))
        det.on_access(access(READ, 3))
        assert det.races == []

    def test_same_operation_does_not_race_with_itself(self):
        det = detector_with([])
        det.on_access(access(WRITE, 2))
        det.on_access(access(WRITE, 2))
        assert det.races == []

    def test_initial_access_never_races(self):
        det = detector_with([])
        det.on_access(access(WRITE, 5))
        assert det.races == []

    def test_distinct_locations_do_not_interact(self):
        det = detector_with([(1, 2), (1, 3)])
        det.on_access(access(WRITE, 2, LOC))
        det.on_access(access(WRITE, 3, OTHER))
        assert det.races == []


class TestReportingPolicy:
    def test_one_race_per_location_by_default(self):
        """Footnote 13: at most one race per location per run."""
        det = detector_with([(1, 2), (1, 3), (1, 4)])
        det.on_access(access(WRITE, 2))
        det.on_access(access(WRITE, 3))
        det.on_access(access(WRITE, 4))
        assert len(det.races) == 1

    def test_report_all_per_location(self):
        det = detector_with([(1, 2), (1, 3), (1, 4)], report_all_per_location=True)
        det.on_access(access(WRITE, 2))
        det.on_access(access(WRITE, 3))
        det.on_access(access(WRITE, 4))
        # (2,3) and (3,4); (2,4) is invisible — only the last write is kept.
        assert len(det.races) == 2

    def test_write_prefers_ww_over_rw(self):
        det = detector_with([(1, 2), (1, 3), (1, 4)])
        det.on_access(access(READ, 2))
        det.on_access(access(WRITE, 3))  # RW race vs read 2
        assert det.races[0].kind == READ_WRITE

    def test_chc_queries_counted(self):
        det = detector_with([(1, 2), (1, 3)])
        det.on_access(access(WRITE, 2))
        det.on_access(access(READ, 3))
        assert det.chc_queries >= 1

    def test_self_pairs_do_not_count_as_queries(self):
        """Same-operation pairs short-circuit before the HB relation is
        consulted, so they must not inflate the E9 cost metric."""
        det = detector_with([])
        det.on_access(access(WRITE, 2))
        det.on_access(access(WRITE, 2))
        det.on_access(access(READ, 2))
        assert det.chc_queries == 0

    def test_cross_operation_pairs_count_once_each(self):
        det = detector_with([(2, 3)])
        det.on_access(access(WRITE, 2))
        det.on_access(access(WRITE, 3))  # one write-vs-write CHC query
        assert det.chc_queries == 1


class TestPaperLimitation:
    def test_section_5_1_miss_example(self):
        """The paper's own example: ops 1,2,3 access e; only 1 ≺ 2.
        Schedule 3·1·2 hides the (2,3) race from the constant-memory
        detector but not from the full-history detector."""
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.add_operation(3)
        constant = RaceDetector(graph)
        full = FullHistoryDetector(graph)

        sequence = [access(READ, 3), access(READ, 1), access(WRITE, 2)]
        for acc in sequence:
            constant.on_access(acc)
        for acc in sequence:
            full.on_access(acc)

        # Constant-memory: the write checks only LastRead = op 1 (ordered),
        # so it misses the 2-3 race entirely.
        assert constant.races == []
        # Full history sees the (3, 2) pair.
        assert len(full.races) == 1
        assert {full.races[0].prior.op_id, full.races[0].current.op_id} == {2, 3}

    def test_favourable_schedule_catches_it(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.add_operation(3)
        constant = RaceDetector(graph)
        for acc in [access(READ, 1), access(READ, 3), access(WRITE, 2)]:
            constant.on_access(acc)
        assert len(constant.races) == 1


# ----------------------------------------------------------------------
# hypothesis: detector invariants against brute force

ops = st.integers(1, 10)
edges_strategy = st.lists(
    st.tuples(ops, ops).map(lambda p: (min(p), max(p))).filter(lambda p: p[0] != p[1]),
    max_size=15,
)
accesses_strategy = st.lists(
    st.tuples(st.sampled_from([READ, WRITE]), ops), min_size=1, max_size=15
)


@given(edges_strategy, accesses_strategy)
@settings(max_examples=200, deadline=None)
def test_every_reported_race_is_a_real_race(edges, raw_accesses):
    """Soundness: each reported race is CHC-unordered and involves a write."""
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    for _kind, op in raw_accesses:
        graph.add_operation(op)
    det = RaceDetector(graph, report_all_per_location=True)
    for kind, op in raw_accesses:
        det.on_access(access(kind, op))
    for race in det.races:
        assert race.prior.is_write or race.current.is_write
        assert graph.concurrent(race.prior.op_id, race.current.op_id)


@given(edges_strategy, accesses_strategy)
@settings(max_examples=200, deadline=None)
def test_constant_memory_detector_subset_of_full(edges, raw_accesses):
    """Every racing location the paper's detector reports, the full-history
    detector reports too (the converse fails — Section 5.1 limitation)."""
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    for _kind, op in raw_accesses:
        graph.add_operation(op)
    constant = RaceDetector(graph)
    full = FullHistoryDetector(graph)
    for kind, op in raw_accesses:
        constant.on_access(access(kind, op))
        full.on_access(access(kind, op))
    constant_locations = {race.location for race in constant.races}
    full_locations = {race.location for race in full.races}
    assert constant_locations <= full_locations


@given(edges_strategy, accesses_strategy)
@settings(max_examples=200, deadline=None)
def test_full_detector_matches_brute_force(edges, raw_accesses):
    """The full-history detector reports exactly the brute-force racing
    pairs of the executed schedule."""
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    for _kind, op in raw_accesses:
        graph.add_operation(op)
    full = FullHistoryDetector(graph)
    recorded = [access(kind, op) for kind, op in raw_accesses]
    for acc in recorded:
        full.on_access(acc)

    expected_pairs = set()
    for i, first in enumerate(recorded):
        for second in recorded[i + 1 :]:
            if first.op_id == second.op_id:
                continue
            if not (first.is_write or second.is_write):
                continue
            if graph.concurrent(first.op_id, second.op_id):
                expected_pairs.add(
                    (min(first.op_id, second.op_id), max(first.op_id, second.op_id))
                )
    got_pairs = {
        (min(r.prior.op_id, r.current.op_id), max(r.prior.op_id, r.current.op_id))
        for r in full.races
    }
    assert got_pairs == expected_pairs
