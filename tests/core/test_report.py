"""Tests for race classification and harmfulness (Sections 2 & 6)."""

from repro.core.access import READ, WRITE, Access
from repro.core.detector import Race, READ_WRITE, WRITE_WRITE
from repro.core.locations import (
    ATTR_SLOT,
    DomPropLocation,
    HandlerLocation,
    HElemLocation,
    PropLocation,
    VarLocation,
    id_key,
    node_key,
)
from repro.core.report import (
    EVENT_DISPATCH,
    FUNCTION,
    HTML,
    VARIABLE,
    HarmfulnessJudge,
    RaceReport,
    build_report,
    classify_race,
)
from repro.core.trace import Trace
from repro.js.errors import JSErrorValue, ScriptCrash


def race_on(location, prior, current):
    kind = WRITE_WRITE if prior.is_write and current.is_write else READ_WRITE
    return Race(location=location, prior=prior, current=current, kind=kind)


class TestClassification:
    def test_helem_is_html_race(self):
        location = HElemLocation(id_key(1, "dw"))
        race = race_on(
            location,
            Access(kind=READ, op_id=2, location=location),
            Access(kind=WRITE, op_id=3, location=location),
        )
        assert classify_race(race) == HTML

    def test_eloc_is_event_dispatch_race(self):
        location = HandlerLocation(node_key(1), "load", ATTR_SLOT)
        race = race_on(
            location,
            Access(kind=WRITE, op_id=2, location=location),
            Access(kind=READ, op_id=3, location=location),
        )
        assert classify_race(race) == EVENT_DISPATCH

    def test_function_decl_write_makes_function_race(self):
        location = PropLocation(1, "doNextStep")
        race = race_on(
            location,
            Access(kind=READ, op_id=2, location=location, is_call=True),
            Access(kind=WRITE, op_id=3, location=location, is_function_decl=True),
        )
        assert classify_race(race) == FUNCTION

    def test_call_racing_with_function_value_write(self):
        location = PropLocation(1, "handler")
        race = race_on(
            location,
            Access(kind=READ, op_id=2, location=location, is_call=True),
            Access(
                kind=WRITE,
                op_id=3,
                location=location,
                detail={"writes_function": True},
            ),
        )
        assert classify_race(race) == FUNCTION

    def test_plain_jsvar_is_variable_race(self):
        location = VarLocation(1, "x")
        race = race_on(
            location,
            Access(kind=WRITE, op_id=2, location=location),
            Access(kind=WRITE, op_id=3, location=location),
        )
        assert classify_race(race) == VARIABLE


class TestHtmlHarmfulness:
    def make_trace(self, crash_op=None):
        trace = Trace()
        if crash_op is not None:
            trace.record_crash(
                ScriptCrash(crash_op, JSErrorValue("TypeError", "null deref"))
            )
        return trace

    def test_missed_lookup_with_crash_is_harmful(self):
        location = HElemLocation(id_key(1, "dw"))
        read = Access(kind=READ, op_id=5, location=location, detail={"found": False})
        write = Access(kind=WRITE, op_id=6, location=location)
        race = race_on(location, read, write)
        judge = HarmfulnessJudge(self.make_trace(crash_op=5))
        assert judge.judge(race, HTML).harmful

    def test_missed_lookup_without_crash_is_benign(self):
        """The Ford polling pattern: the miss is guarded."""
        location = HElemLocation(id_key(1, "last"))
        read = Access(kind=READ, op_id=5, location=location, detail={"found": False})
        write = Access(kind=WRITE, op_id=6, location=location)
        race = race_on(location, read, write)
        judge = HarmfulnessJudge(self.make_trace())
        verdict = judge.judge(race, HTML)
        assert not verdict.harmful
        assert "guarded" in verdict.reason

    def test_found_lookup_is_benign(self):
        location = HElemLocation(id_key(1, "n1"))
        read = Access(kind=READ, op_id=5, location=location, detail={"found": True})
        write = Access(kind=WRITE, op_id=4, location=location)
        race = race_on(location, write, read)
        judge = HarmfulnessJudge(self.make_trace())
        assert not judge.judge(race, HTML).harmful


class TestFunctionHarmfulness:
    def test_crashed_call_is_harmful(self):
        location = PropLocation(1, "openMenu")
        read = Access(kind=READ, op_id=5, location=location, is_call=True)
        write = Access(kind=WRITE, op_id=6, location=location, is_function_decl=True)
        race = race_on(location, read, write)
        trace = Trace()
        trace.record_crash(ScriptCrash(5, JSErrorValue("ReferenceError", "nope")))
        assert HarmfulnessJudge(trace).judge(race, FUNCTION).harmful

    def test_latent_race_is_benign(self):
        location = PropLocation(1, "openMenu")
        write = Access(kind=WRITE, op_id=3, location=location, is_function_decl=True)
        read = Access(kind=READ, op_id=5, location=location, is_call=True)
        race = race_on(location, write, read)
        assert not HarmfulnessJudge(Trace()).judge(race, FUNCTION).harmful


class TestVariableHarmfulness:
    FORM = DomPropLocation(id_key(1, "depart"), "value", tag="input")

    def test_user_input_erasable_is_harmful(self):
        user = Access(kind=WRITE, op_id=4, location=self.FORM,
                      detail={"user_input": True})
        script = Access(kind=WRITE, op_id=5, location=self.FORM)
        race = race_on(self.FORM, user, script)
        assert HarmfulnessJudge(Trace()).judge(race, VARIABLE).harmful

    def test_script_vs_script_is_benign(self):
        first = Access(kind=WRITE, op_id=4, location=self.FORM)
        second = Access(kind=WRITE, op_id=5, location=self.FORM)
        race = race_on(self.FORM, first, second)
        assert not HarmfulnessJudge(Trace()).judge(race, VARIABLE).harmful

    def test_guarded_script_write_is_benign(self):
        user = Access(kind=WRITE, op_id=4, location=self.FORM,
                      detail={"user_input": True})
        script = Access(kind=WRITE, op_id=5, location=self.FORM,
                        detail={"read_before_write": True})
        race = race_on(self.FORM, user, script)
        assert not HarmfulnessJudge(Trace()).judge(race, VARIABLE).harmful

    def test_non_form_variable_is_benign(self):
        location = VarLocation(9, "x")
        race = race_on(
            location,
            Access(kind=WRITE, op_id=4, location=location),
            Access(kind=WRITE, op_id=5, location=location),
        )
        assert not HarmfulnessJudge(Trace()).judge(race, VARIABLE).harmful


class TestEventDispatchHarmfulness:
    def test_lost_load_handler_is_harmful(self):
        location = HandlerLocation(id_key(1, "img"), "load", ATTR_SLOT)
        read = Access(kind=READ, op_id=5, location=location)
        write = Access(kind=WRITE, op_id=6, location=location)
        race = race_on(location, read, write)
        assert HarmfulnessJudge(Trace()).judge(race, EVENT_DISPATCH).harmful

    def test_multi_dispatch_event_is_benign(self):
        location = HandlerLocation(id_key(1, "b"), "click", ATTR_SLOT)
        race = race_on(
            location,
            Access(kind=READ, op_id=5, location=location),
            Access(kind=WRITE, op_id=6, location=location),
        )
        assert not HarmfulnessJudge(Trace()).judge(race, EVENT_DISPATCH).harmful

    def test_handler_removal_is_benign(self):
        location = HandlerLocation(id_key(1, "img"), "load", ATTR_SLOT)
        race = race_on(
            location,
            Access(kind=READ, op_id=5, location=location),
            Access(kind=WRITE, op_id=6, location=location, detail={"removal": True}),
        )
        assert not HarmfulnessJudge(Trace()).judge(race, EVENT_DISPATCH).harmful

    def test_deliberate_delay_is_benign(self):
        location = HandlerLocation(id_key(1, "img"), "load", ATTR_SLOT)
        race = race_on(
            location,
            Access(kind=READ, op_id=5, location=location),
            Access(
                kind=WRITE,
                op_id=6,
                location=location,
                detail={"deliberate_delay": True},
            ),
        )
        assert not HarmfulnessJudge(Trace()).judge(race, EVENT_DISPATCH).harmful


class TestJudgeEdgeCases:
    """Corner cases of Section 6 judgement and Section 2 classification."""

    def test_write_write_html_race_has_no_reader(self):
        """Element creation racing with element creation: nothing is looked
        up, so the nonexistent-node criterion cannot fire."""
        location = HElemLocation(id_key(1, "dw"))
        race = race_on(
            location,
            Access(kind=WRITE, op_id=4, location=location),
            Access(kind=WRITE, op_id=5, location=location),
        )
        verdict = HarmfulnessJudge(Trace()).judge(race, HTML)
        assert not verdict.harmful
        assert verdict.reason == "write-write on element"

    def test_write_write_html_race_ignores_unrelated_crash(self):
        """A crash in one racing operation does not make a write-write
        element race harmful — only a missed *lookup* can."""
        location = HElemLocation(id_key(1, "dw"))
        race = race_on(
            location,
            Access(kind=WRITE, op_id=4, location=location),
            Access(kind=WRITE, op_id=5, location=location),
        )
        trace = Trace()
        trace.record_crash(ScriptCrash(4, JSErrorValue("TypeError", "boom")))
        assert not HarmfulnessJudge(trace).judge(race, HTML).harmful

    def test_guarded_missed_lookup_reason(self):
        location = HElemLocation(id_key(1, "last"))
        race = race_on(
            location,
            Access(kind=READ, op_id=5, location=location,
                   detail={"found": False}),
            Access(kind=WRITE, op_id=6, location=location),
        )
        verdict = HarmfulnessJudge(Trace()).judge(race, HTML)
        assert not verdict.harmful
        assert verdict.reason == "missed lookup was guarded (no crash)"

    def test_handler_removal_race_is_benign_even_on_single_dispatch(self):
        """Removing a handler cannot lose a registration, even for load."""
        location = HandlerLocation(id_key(1, "img"), "load", ATTR_SLOT)
        race = race_on(
            location,
            Access(kind=READ, op_id=5, location=location),
            Access(kind=WRITE, op_id=6, location=location,
                   detail={"removal": True}),
        )
        verdict = HarmfulnessJudge(Trace()).judge(race, EVENT_DISPATCH)
        assert not verdict.harmful
        assert verdict.reason == "racing access removes a handler"

    def test_call_vs_plain_write_without_function_value_is_variable(self):
        """The report.py call-vs-write path: a call racing with a write
        only becomes a function race when the write stores a function."""
        location = PropLocation(1, "handler")
        race = race_on(
            location,
            Access(kind=READ, op_id=2, location=location, is_call=True),
            Access(kind=WRITE, op_id=3, location=location),
        )
        assert classify_race(race) == VARIABLE

    def test_call_vs_write_checks_both_sides_for_function_value(self):
        """writes_function may sit on either side of the pair."""
        location = PropLocation(1, "handler")
        race = race_on(
            location,
            Access(
                kind=WRITE,
                op_id=2,
                location=location,
                detail={"writes_function": True},
            ),
            Access(kind=READ, op_id=3, location=location, is_call=True),
        )
        assert classify_race(race) == FUNCTION


class TestRaceReport:
    def build(self):
        form = DomPropLocation(id_key(1, "q"), "value", tag="input")
        element = HElemLocation(id_key(1, "dw"))
        races = [
            race_on(
                form,
                Access(kind=WRITE, op_id=2, location=form, detail={"user_input": True}),
                Access(kind=WRITE, op_id=3, location=form),
            ),
            race_on(
                element,
                Access(kind=READ, op_id=4, location=element, detail={"found": False}),
                Access(kind=WRITE, op_id=5, location=element),
            ),
        ]
        trace = Trace()
        trace.record_crash(ScriptCrash(4, JSErrorValue("TypeError", "boom")))
        return build_report(races, trace)

    def test_counts(self):
        report = self.build()
        counts = report.counts()
        assert counts[VARIABLE] == 1
        assert counts[HTML] == 1
        assert report.total() == 2

    def test_harmful_counts(self):
        report = self.build()
        harmful = report.harmful_counts()
        assert harmful[VARIABLE] == 1
        assert harmful[HTML] == 1

    def test_by_type(self):
        report = self.build()
        assert len(report.by_type(HTML)) == 1
        assert report.by_type(FUNCTION) == []

    def test_summary_mentions_types(self):
        text = self.build().summary()
        assert "html" in text and "variable" in text

    def test_empty_report(self):
        report = RaceReport()
        assert report.total() == 0
        assert report.harmful() == []
