"""Tests for the budgeted sampling detector (two-tier screening)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.access import READ, WRITE, Access
from repro.core.detector import RaceDetector
from repro.core.hb.graph import HBGraph
from repro.core.locations import VarLocation
from repro.core.sampling import (
    DEFAULT_SAMPLE_BUDGET,
    SamplingDetector,
    derive_sample_seed,
    escalate,
    screen_races,
)


def var(index):
    return VarLocation(cell_id=index, name=f"v{index}")


def access(kind, op, location, seq=-1):
    return Access(kind=kind, op_id=op, location=location, seq=seq)


def concurrent_graph(*ops):
    """A graph where every listed operation is pairwise concurrent."""
    graph = HBGraph()
    for op in ops:
        graph.add_edge(0, op)
    return graph


class TestConstruction:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="sample budget"):
            SamplingDetector(HBGraph(), budget=0)
        with pytest.raises(ValueError):
            SamplingDetector(HBGraph(), budget=-3)

    def test_defaults(self):
        det = SamplingDetector(HBGraph())
        assert det.budget == DEFAULT_SAMPLE_BUDGET
        assert det.tracked_count == 0
        assert det.stats()["races_sampled"] == 0


class TestCandidateGating:
    def test_single_operation_locations_never_enter_the_reservoir(self):
        det = SamplingDetector(concurrent_graph(1), budget=4)
        for index in range(10):
            det.on_access(access(WRITE, 1, var(index)))
            det.on_access(access(READ, 1, var(index)))
        assert det.candidate_count == 0
        assert det.tracked_count == 0
        assert det.distinct_locations == 10

    def test_second_operation_promotes(self):
        det = SamplingDetector(concurrent_graph(1, 2), budget=4)
        det.on_access(access(WRITE, 1, var(0)))
        assert not det.is_tracked(var(0))
        det.on_access(access(READ, 2, var(0)))
        assert det.is_tracked(var(0))
        assert det.candidate_count == 1


class TestBudgetEnforcement:
    def test_reservoir_never_exceeds_budget(self):
        det = SamplingDetector(concurrent_graph(1, 2), budget=3, seed=7)
        for index in range(50):
            det.on_access(access(WRITE, 1, var(index)))
            det.on_access(access(READ, 2, var(index)))
        assert det.candidate_count == 50
        assert det.tracked_count <= 3
        assert det.tracked_peak <= 3
        # Every admission either fills a slot or evicts a prior tenant.
        admitted = det.tracked_count + det.evictions
        assert admitted <= det.candidate_count

    def test_some_seed_exercises_eviction(self):
        # Algorithm R with budget 1 over 30 candidates replaces the
        # tenant with probability 1/k at candidate k; at least one seed
        # in a small deterministic range must do so.
        evicted = []
        for seed in range(20):
            det = SamplingDetector(concurrent_graph(1, 2), budget=1, seed=seed)
            for index in range(30):
                det.on_access(access(WRITE, 1, var(index)))
                det.on_access(access(READ, 2, var(index)))
            evicted.append(det.evictions)
        assert any(evicted)

    def test_evicted_location_stops_tracking(self):
        for seed in range(20):
            det = SamplingDetector(concurrent_graph(1, 2), budget=1, seed=seed)
            for index in range(30):
                det.on_access(access(WRITE, 1, var(index)))
                det.on_access(access(READ, 2, var(index)))
            if det.evictions:
                break
        assert det.evictions
        assert det.tracked_count == 1
        tracked = [
            var(index) for index in range(30) if det.is_tracked(var(index))
        ]
        assert len(tracked) == 1
        # Later accesses to a non-tracked candidate are ignored silently.
        races_before = len(det.races)
        untracked = next(
            var(index) for index in range(30) if not det.is_tracked(var(index))
        )
        det.on_access(access(WRITE, 2, untracked))
        assert len(det.races) == races_before


class TestEnvelopeReplay:
    def test_two_access_race_is_caught_despite_late_promotion(self):
        # The most common web race shape: the parser writes (op 1), a
        # script reads (op 2), nothing else touches the location.  The
        # location only becomes a candidate on the read — the write must
        # be replayed from the cold envelope or the race is invisible.
        det = SamplingDetector(concurrent_graph(1, 2), budget=4)
        det.on_access(access(WRITE, 1, var(0), seq=0))
        det.on_access(access(READ, 2, var(0), seq=1))
        assert len(det.races) == 1
        assert det.races[0].prior.op_id == 1
        assert det.races[0].current.op_id == 2

    def test_envelope_keeps_first_read_and_last_write(self):
        # op 1: read, write, write; op 2 then writes concurrently.  The
        # envelope must surface op 1's first read (for read/write races
        # and the filters' read_before) and its last write.
        det = SamplingDetector(concurrent_graph(1, 2), budget=4)
        det.on_access(access(READ, 1, var(0), seq=0))
        det.on_access(access(WRITE, 1, var(0), seq=1))
        det.on_access(access(WRITE, 1, var(0), seq=2))
        det.on_access(access(WRITE, 2, var(0), seq=3))
        kinds = {(race.prior.seq, race.current.seq) for race in det.races}
        assert (2, 3) in kinds  # last write vs the new write
        index = det.sampled_index()
        assert index.read_before(1, var(0), seq=3)
        assert index.write_after(1, var(0), seq=1)

    def test_ordered_two_access_pair_does_not_race(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        det = SamplingDetector(graph, budget=4)
        det.on_access(access(WRITE, 1, var(0), seq=0))
        det.on_access(access(READ, 2, var(0), seq=1))
        assert det.races == []


class TestDeterminism:
    def feed(self, seed, budget=2):
        det = SamplingDetector(concurrent_graph(1, 2), budget=budget, seed=seed)
        seq = 0
        for index in range(40):
            det.on_access(access(WRITE, 1, var(index), seq=seq))
            det.on_access(access(READ, 2, var(index), seq=seq + 1))
            seq += 2
        return det

    def test_same_seed_same_everything(self):
        a, b = self.feed(seed=5), self.feed(seed=5)
        assert a.stats() == b.stats()
        assert [race.pair_key() for race in a.races] == [
            race.pair_key() for race in b.races
        ]
        assert a._slots == b._slots

    def test_different_seeds_can_differ(self):
        tracked = {
            tuple(self.feed(seed=seed)._slots) for seed in range(10)
        }
        assert len(tracked) > 1

    def test_derive_sample_seed_is_position_independent(self):
        seeds = [derive_sample_seed(0, index) for index in range(100)]
        assert len(set(seeds)) == 100
        assert all(0 <= seed < 2**31 for seed in seeds)
        assert derive_sample_seed(0, 7) == derive_sample_seed(0, 7)
        assert derive_sample_seed(0, 7) != derive_sample_seed(1, 7)


class TestScreenAndEscalate:
    def test_screen_with_no_sampled_races_is_clean(self):
        det = SamplingDetector(concurrent_graph(1, 2), budget=4)

        class _Trace:
            accesses = ()

        kept, removed = screen_races(det, _Trace())
        assert kept == []
        assert removed == {}

    def test_escalate_equals_exact_offline_analysis(self):
        graph = concurrent_graph(1, 2, 3)

        class _Trace:
            accesses = [
                access(WRITE, 1, var(0), seq=0),
                access(READ, 2, var(0), seq=1),
                access(WRITE, 3, var(1), seq=2),
                access(WRITE, 2, var(1), seq=3),
            ]

        trace = _Trace()
        exact = RaceDetector(graph)
        for acc in trace.accesses:
            exact.on_access(acc)
        escalated = escalate(trace, graph)
        assert [race.pair_key() for race in escalated.races] == [
            race.pair_key() for race in exact.races
        ]
        assert escalated.chc_queries == exact.chc_queries


# ----------------------------------------------------------------------
# hypothesis: sweep() must be behaviourally identical to per-access
# on_access (the online path), and sampled races a subset of exact ones.

ops = st.integers(1, 8)
edges_strategy = st.lists(
    st.tuples(ops, ops)
    .map(lambda p: (min(p), max(p)))
    .filter(lambda p: p[0] != p[1]),
    max_size=12,
)
accesses_strategy = st.lists(
    st.tuples(st.sampled_from([READ, WRITE]), ops, st.integers(0, 5)),
    min_size=1,
    max_size=30,
)


def _build(edges, raw):
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    for _kind, op, _loc in raw:
        graph.add_operation(op)
    recorded = [
        access(kind, op, var(loc), seq=seq)
        for seq, (kind, op, loc) in enumerate(raw)
    ]
    return graph, recorded


@given(edges_strategy, accesses_strategy, st.integers(0, 2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_sweep_equals_per_access_on_access(edges, raw, seed):
    graph, recorded = _build(edges, raw)
    online = SamplingDetector(graph, budget=3, seed=seed)
    for acc in recorded:
        online.on_access(acc)
    batched = SamplingDetector(graph, budget=3, seed=seed)
    batched.sweep(recorded)
    assert online.stats() == batched.stats()
    assert [race.pair_key() for race in online.races] == [
        race.pair_key() for race in batched.races
    ]
    assert online._slots == batched._slots


@given(edges_strategy, accesses_strategy, st.integers(0, 2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_sampled_races_are_a_subset_of_exact_races(edges, raw, seed):
    graph, recorded = _build(edges, raw)
    exact = RaceDetector(graph, report_all_per_location=True)
    sampled = SamplingDetector(
        graph, budget=2, seed=seed, report_all_per_location=True
    )
    for acc in recorded:
        exact.on_access(acc)
        sampled.on_access(acc)
    exact_keys = {race.pair_key() for race in exact.races}
    sampled_keys = {race.pair_key() for race in sampled.races}
    assert sampled_keys <= exact_keys
