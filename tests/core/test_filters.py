"""Tests for the Section 5.3 race filters."""

from repro.core.access import READ, WRITE, Access
from repro.core.detector import Race, READ_WRITE, WRITE_WRITE
from repro.core.filters import (
    FilterChain,
    apply_default_filters,
    form_race_filter,
    single_dispatch_filter,
)
from repro.core.locations import (
    ATTR_SLOT,
    DomPropLocation,
    HandlerLocation,
    HElemLocation,
    PropLocation,
    id_key,
    node_key,
)
from repro.core.trace import Trace


def make_race(location, prior_kind=WRITE, current_kind=WRITE, prior_op=2, current_op=3,
              prior_detail=None, current_detail=None):
    prior = Access(kind=prior_kind, op_id=prior_op, location=location,
                   detail=prior_detail or {})
    current = Access(kind=current_kind, op_id=current_op, location=location,
                     detail=current_detail or {})
    kind = WRITE_WRITE if prior_kind == WRITE and current_kind == WRITE else READ_WRITE
    return Race(location=location, prior=prior, current=current, kind=kind)


FORM_VALUE = DomPropLocation(id_key(1, "depart"), "value", tag="input")
PLAIN_GLOBAL = PropLocation(5, "x")
LOAD_HANDLER = HandlerLocation(id_key(1, "img"), "load", ATTR_SLOT)
CLICK_HANDLER = HandlerLocation(id_key(1, "btn"), "click", ATTR_SLOT)
ELEMENT = HElemLocation(id_key(1, "dw"))


class TestFormFilter:
    def test_keeps_form_value_race(self):
        race = make_race(FORM_VALUE)
        assert form_race_filter(race, "variable", Trace())

    def test_drops_plain_variable_race(self):
        race = make_race(PLAIN_GLOBAL)
        assert not form_race_filter(race, "variable", Trace())

    def test_drops_non_form_dom_prop(self):
        location = DomPropLocation(id_key(1, "d"), "style", tag="div")
        race = make_race(location)
        assert not form_race_filter(race, "variable", Trace())

    def test_passes_through_other_race_types(self):
        race = make_race(PLAIN_GLOBAL)
        assert form_race_filter(race, "html", Trace())
        assert form_race_filter(race, "event_dispatch", Trace())

    def test_drops_guarded_write_via_detail(self):
        race = make_race(FORM_VALUE, current_detail={"read_before_write": True})
        assert not form_race_filter(race, "variable", Trace())

    def test_drops_guarded_write_via_trace_scan(self):
        trace = Trace()
        guard_read = Access(kind=READ, op_id=3, location=FORM_VALUE)
        trace.record(guard_read)
        write = Access(kind=WRITE, op_id=3, location=FORM_VALUE)
        trace.record(write)
        race = Race(
            location=FORM_VALUE,
            prior=Access(kind=WRITE, op_id=2, location=FORM_VALUE),
            current=write,
            kind=WRITE_WRITE,
        )
        assert not form_race_filter(race, "variable", trace)

    def test_drops_guard_read_racing_with_user_write(self):
        trace = Trace()
        read = Access(kind=READ, op_id=3, location=FORM_VALUE)
        trace.record(read)
        trace.record(Access(kind=WRITE, op_id=3, location=FORM_VALUE))
        race = Race(
            location=FORM_VALUE,
            prior=Access(kind=WRITE, op_id=2, location=FORM_VALUE,
                         detail={"user_input": True}),
            current=read,
            kind=READ_WRITE,
        )
        assert not form_race_filter(race, "variable", trace)


class TestReconstructedTraces:
    """Filters must key off ``seq`` values, not list positions.

    A trace that was sliced, merged, or reconstructed offline can have
    non-contiguous seqs; the old list-slicing helpers silently missed
    guards there (``accesses[seq + 1:]`` walked past the end)."""

    @staticmethod
    def sparse_trace():
        trace = Trace()
        read = Access(kind=READ, op_id=3, location=FORM_VALUE, seq=5)
        write = Access(kind=WRITE, op_id=3, location=FORM_VALUE, seq=7)
        # Bypass record(): reconstructed traces keep their original seqs.
        trace.accesses.extend([read, write])
        return trace, read, write

    def test_guard_read_found_despite_sparse_seqs(self):
        trace, read, write = self.sparse_trace()
        race = Race(
            location=FORM_VALUE,
            prior=Access(kind=WRITE, op_id=2, location=FORM_VALUE,
                         detail={"user_input": True}, seq=6),
            current=read,
            kind=READ_WRITE,
        )
        # op 3 writes the field at seq 7 > 5: the read is a typing guard.
        assert not form_race_filter(race, "variable", trace)

    def test_guarded_write_found_despite_sparse_seqs(self):
        trace, read, write = self.sparse_trace()
        race = Race(
            location=FORM_VALUE,
            prior=Access(kind=WRITE, op_id=2, location=FORM_VALUE, seq=6),
            current=write,
            kind=WRITE_WRITE,
        )
        # op 3 read the field at seq 5 < 7 before writing it: guarded.
        assert not form_race_filter(race, "variable", trace)

    def test_unguarded_sparse_trace_keeps_race(self):
        trace = Trace()
        write = Access(kind=WRITE, op_id=3, location=FORM_VALUE, seq=11)
        trace.accesses.append(write)
        race = Race(
            location=FORM_VALUE,
            prior=Access(kind=WRITE, op_id=2, location=FORM_VALUE, seq=4),
            current=write,
            kind=WRITE_WRITE,
        )
        assert form_race_filter(race, "variable", trace)

    def test_index_rebuilds_when_trace_grows(self):
        trace = Trace()
        write = Access(kind=WRITE, op_id=3, location=FORM_VALUE)
        trace.record(write)
        assert not trace.access_index().read_before(3, FORM_VALUE, write.seq)
        trace.record(Access(kind=READ, op_id=3, location=FORM_VALUE))
        later_write = Access(kind=WRITE, op_id=3, location=FORM_VALUE)
        trace.record(later_write)
        assert trace.access_index().read_before(3, FORM_VALUE, later_write.seq)


class TestSingleDispatchFilter:
    def test_keeps_load_handler_race(self):
        race = make_race(LOAD_HANDLER)
        assert single_dispatch_filter(race, "event_dispatch", Trace())

    def test_drops_click_handler_race(self):
        race = make_race(CLICK_HANDLER)
        assert not single_dispatch_filter(race, "event_dispatch", Trace())

    def test_drops_mouseover(self):
        race = make_race(HandlerLocation(node_key(2), "mouseover"))
        assert not single_dispatch_filter(race, "event_dispatch", Trace())

    def test_keeps_readystatechange(self):
        race = make_race(HandlerLocation(node_key(9), "readystatechange"))
        assert single_dispatch_filter(race, "event_dispatch", Trace())

    def test_keeps_domcontentloaded(self):
        race = make_race(HandlerLocation(node_key(9), "DOMContentLoaded"))
        assert single_dispatch_filter(race, "event_dispatch", Trace())

    def test_passes_through_other_types(self):
        race = make_race(ELEMENT)
        assert single_dispatch_filter(race, "html", Trace())


class TestFilterChain:
    def test_html_races_untouched(self):
        """Table 2's HTML and function columns are unchanged by filters."""
        races = [make_race(ELEMENT, prior_kind=READ)]
        kept = apply_default_filters(races, Trace())
        assert kept == races

    def test_mixed_filtering(self):
        races = [
            make_race(ELEMENT, prior_kind=READ),  # html, kept
            make_race(PLAIN_GLOBAL),  # variable, dropped
            make_race(FORM_VALUE),  # variable, kept
            make_race(CLICK_HANDLER, prior_kind=READ),  # ed, dropped
            make_race(LOAD_HANDLER, prior_kind=READ),  # ed, kept
        ]
        chain = FilterChain()
        kept = chain.apply(races, Trace())
        assert len(kept) == 3
        assert chain.removed_count() == 2
        assert set(chain.removed) == {"form_race_filter", "single_dispatch_filter"}

    def test_empty_input(self):
        assert FilterChain().apply([], Trace()) == []

    def test_custom_filter_list(self):
        chain = FilterChain(filters=[single_dispatch_filter])
        races = [make_race(PLAIN_GLOBAL)]  # variable noise survives now
        assert chain.apply(races, Trace()) == races
