"""Tests for the text rendering helpers."""

from repro.core.access import READ, WRITE, Access
from repro.core.detector import Race, READ_WRITE
from repro.core.locations import HElemLocation, id_key
from repro.core.render import (
    render_crashes,
    render_race_report,
    render_table1,
    render_table2,
)
from repro.core.report import RaceReport, build_report
from repro.core.trace import Trace
from repro.js.errors import JSErrorValue, ScriptCrash


def make_report(harmful=True):
    location = HElemLocation(id_key(1, "dw"))
    race = Race(
        location=location,
        prior=Access(kind=READ, op_id=2, location=location, detail={"found": False}),
        current=Access(kind=WRITE, op_id=3, location=location),
        kind=READ_WRITE,
    )
    trace = Trace()
    if harmful:
        trace.record_crash(ScriptCrash(2, JSErrorValue("TypeError", "x")))
    return build_report([race], trace)


class TestRaceReportRendering:
    def test_empty_report(self):
        text = render_race_report(RaceReport(), title="Empty")
        assert "Empty" in text
        assert "no races" in text

    def test_harmful_marked(self):
        text = render_race_report(make_report(harmful=True))
        assert "!!" in text
        assert "HTML 1 (1)" in text

    def test_benign_not_marked(self):
        text = render_race_report(make_report(harmful=False))
        assert "!!" not in text
        assert "HTML 1 (0)" in text

    def test_total_line(self):
        assert "total: 1" in render_race_report(make_report())


class TestTableRendering:
    T1 = {
        "html": {"mean": 2.2, "median": 0.0, "max": 112},
        "function": {"mean": 0.4, "median": 0.0, "max": 6},
        "variable": {"mean": 22.4, "median": 5.5, "max": 269},
        "event_dispatch": {"mean": 22.3, "median": 7.0, "max": 198},
        "all": {"mean": 47.3, "median": 27.0, "max": 278},
    }

    def test_table1_without_paper(self):
        text = render_table1(self.T1)
        assert "HTML" in text and "112" in text
        assert "p.Mean" not in text

    def test_table1_with_paper_columns(self):
        text = render_table1(self.T1, paper=self.T1)
        assert "p.Mean" in text

    def test_table2_rows_and_totals(self):
        rows = [
            {
                "site": "Ford",
                "html": (112, 0),
                "function": (0, 0),
                "variable": (0, 0),
                "event_dispatch": (0, 0),
            }
        ]
        totals = {
            "html": (112, 0),
            "function": (0, 0),
            "variable": (0, 0),
            "event_dispatch": (0, 0),
        }
        text = render_table2(rows, totals=totals, paper_totals=totals)
        assert "Ford" in text
        assert "112 (0)" in text
        assert "Total" in text and "Paper" in text

    def test_table2_empty_cells_blank(self):
        rows = [
            {
                "site": "Clean",
                "html": (0, 0),
                "function": (0, 0),
                "variable": (0, 0),
                "event_dispatch": (0, 0),
            }
        ]
        text = render_table2(rows)
        line = [l for l in text.splitlines() if "Clean" in l][0]
        assert "(" not in line


class TestCrashRendering:
    def test_no_crashes(self):
        assert "no hidden crashes" in render_crashes([])

    def test_crash_lines(self):
        crash = ScriptCrash(5, JSErrorValue("ReferenceError", "f is not defined"))
        text = render_crashes([crash])
        assert "op 5" in text
        assert "ReferenceError" in text
