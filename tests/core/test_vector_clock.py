"""Tests for the chain-decomposition vector-clock representation (E9)."""

from hypothesis import given, settings, strategies as st

from repro.core.hb.graph import HBGraph
from repro.core.hb.vector_clock import ChainVectorClocks


def make_graph(edges, nodes=()):
    graph = HBGraph()
    for node in nodes:
        graph.add_operation(node)
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


class TestChains:
    def test_linear_graph_is_one_chain(self):
        graph = make_graph([(1, 2), (2, 3), (3, 4)])
        clocks = ChainVectorClocks(graph)
        assert clocks.chain_count == 1

    def test_disjoint_nodes_get_own_chains(self):
        graph = make_graph([], nodes=[1, 2, 3])
        clocks = ChainVectorClocks(graph)
        assert clocks.chain_count == 3

    def test_fork_join(self):
        graph = make_graph([(1, 2), (1, 3), (2, 4), (3, 4)])
        clocks = ChainVectorClocks(graph)
        assert clocks.happens_before(1, 4)
        assert clocks.happens_before(2, 4)
        assert clocks.happens_before(3, 4)
        assert clocks.concurrent(2, 3)
        # Two parallel branches -> at least two chains.
        assert clocks.chain_count >= 2

    def test_chains_partition_operations(self):
        graph = make_graph([(1, 2), (1, 3), (3, 5), (2, 4)])
        clocks = ChainVectorClocks(graph)
        seen = [op for chain in clocks.chains() for op in chain]
        assert sorted(seen) == graph.operation_ids()

    def test_memory_cells_positive(self):
        graph = make_graph([(1, 2), (2, 3)])
        assert ChainVectorClocks(graph).memory_cells() >= 3


class TestQueries:
    def test_chc_bottom(self):
        graph = make_graph([(1, 2)])
        clocks = ChainVectorClocks(graph)
        assert not clocks.chc(0, 2)
        assert not clocks.chc(1, 0)

    def test_unknown_operation_not_ordered(self):
        graph = make_graph([(1, 2)])
        clocks = ChainVectorClocks(graph)
        assert not clocks.happens_before(1, 99)
        assert not clocks.happens_before(99, 1)


forward_edges = st.lists(
    st.tuples(st.integers(1, 25), st.integers(1, 25)).map(
        lambda pair: (min(pair), max(pair))
    ).filter(lambda pair: pair[0] != pair[1]),
    max_size=50,
)


@given(forward_edges)
@settings(max_examples=200, deadline=None)
def test_vector_clocks_equivalent_to_graph(edges):
    """The VC representation answers every HB query exactly like the graph —
    the soundness requirement for using it as the fast path."""
    graph = make_graph(edges)
    clocks = ChainVectorClocks(graph)
    nodes = graph.operation_ids()
    for a in nodes:
        for b in nodes:
            assert clocks.happens_before(a, b) == graph.happens_before(a, b), (
                a,
                b,
                edges,
            )


@given(forward_edges)
@settings(max_examples=100, deadline=None)
def test_vector_clock_concurrency_matches(edges):
    graph = make_graph(edges)
    clocks = ChainVectorClocks(graph)
    nodes = graph.operation_ids()
    for a in nodes:
        for b in nodes:
            assert clocks.concurrent(a, b) == graph.concurrent(a, b)
