"""Tests for the paper's happens-before rule engine (Section 3.3)."""

import pytest

from repro.core.hb import rules as R
from repro.core.hb.graph import HBGraph
from repro.core.hb.rules import RuleEngine


@pytest.fixture
def engine():
    return RuleEngine(HBGraph())


class TestStaticHtmlRules:
    def test_rule_1a_orders_parses(self, engine):
        engine.static_order(1, 2)
        assert engine.happens_before(1, 2)
        assert engine.graph.edges_by_rule(R.RULE_1A)

    def test_rule_1b_inline_script(self, engine):
        engine.inline_script_before_next_parse(3, 4)
        assert engine.happens_before(3, 4)

    def test_rule_1c_sync_script_load_set(self, engine):
        engine.sync_script_load_before_next_parse([2, 3], 5)
        assert engine.happens_before(2, 5)
        assert engine.happens_before(3, 5)


class TestScriptRules:
    def test_rule_2_create_before_exe(self, engine):
        engine.create_before_exe(1, 2)
        assert engine.happens_before(1, 2)

    def test_rule_3_exe_before_load(self, engine):
        engine.exe_before_load(1, [2, 3])
        assert engine.happens_before(1, 2)
        assert engine.happens_before(1, 3)


class TestDeferredRules:
    def test_rule_4(self, engine):
        engine.pre_dcl_create_before_deferred_exe(1, 9)
        assert engine.happens_before(1, 9)

    def test_rule_5_deferred_order(self, engine):
        engine.deferred_order([4, 5], 6)
        assert engine.happens_before(4, 6)
        assert engine.happens_before(5, 6)


class TestFrameRules:
    def test_rule_6(self, engine):
        engine.iframe_create_before_nested_create(1, 7)
        assert engine.happens_before(1, 7)

    def test_rule_7(self, engine):
        engine.nested_window_load_before_iframe_load([3, 4], [8, 9])
        for nested in (3, 4):
            for outer in (8, 9):
                assert engine.happens_before(nested, outer)


class TestEventRules:
    def test_rule_8(self, engine):
        engine.target_created_before_dispatch(1, [5, 6])
        assert engine.happens_before(1, 5)
        assert engine.happens_before(1, 6)

    def test_rule_9_cross_product(self, engine):
        engine.earlier_dispatch_first([2, 3], [7, 8])
        for early in (2, 3):
            for late in (7, 8):
                assert engine.happens_before(early, late)

    def test_rule_10_ajax(self, engine):
        engine.send_before_readystatechange(2, [6])
        assert engine.happens_before(2, 6)


class TestLoadRules:
    def test_rule_11(self, engine):
        engine.dcl_before_window_load([3], [7])
        assert engine.happens_before(3, 7)

    def test_rule_12(self, engine):
        engine.parse_before_dcl(1, [4])
        assert engine.happens_before(1, 4)

    def test_rule_13(self, engine):
        engine.inline_exe_before_dcl(2, [4])
        assert engine.happens_before(2, 4)

    def test_rule_14(self, engine):
        engine.script_load_before_dcl([2], [4])
        assert engine.happens_before(2, 4)

    def test_rule_15(self, engine):
        engine.element_load_before_window_load([2, 3], [9])
        assert engine.happens_before(2, 9)
        assert engine.happens_before(3, 9)


class TestTimerRules:
    def test_rule_16(self, engine):
        engine.settimeout_before_cb(1, 5)
        assert engine.happens_before(1, 5)

    def test_rule_17_first_and_chain(self, engine):
        engine.setinterval_before_first(1, 2)
        engine.interval_successor(2, 3)
        engine.interval_successor(3, 4)
        assert engine.happens_before(1, 4)  # transitive chain

    def test_interval_callbacks_concurrent_with_other_work(self, engine):
        engine.setinterval_before_first(1, 2)
        engine.graph.add_edge(1, 9, "other")
        assert engine.chc(2, 9)


class TestAppendixRules:
    def test_inline_dispatch_split(self, engine):
        # A=1 splits around handlers {3, 4}; post-segment is 5.
        engine.inline_dispatch_split(1, [3, 4], 5)
        assert engine.happens_before(1, 3)
        assert engine.happens_before(1, 4)
        assert engine.happens_before(3, 5)
        assert engine.happens_before(4, 5)
        assert engine.happens_before(1, 5)  # transitively through handlers

    def test_event_phasing(self, engine):
        engine.event_phasing([2], [3])
        assert engine.happens_before(2, 3)


class TestEngineMechanics:
    def test_cross_product_counts_new_edges(self, engine):
        added = engine.earlier_dispatch_first([1, 2], [3, 4])
        assert added == 4
        assert engine.earlier_dispatch_first([1, 2], [3, 4]) == 0  # idempotent

    def test_chc_with_bottom(self, engine):
        engine.static_order(1, 2)
        assert not engine.chc(0, 2)
        assert not engine.chc(1, 0)

    def test_chc_unordered(self, engine):
        engine.static_order(1, 2)
        engine.static_order(1, 3)
        assert engine.chc(2, 3)

    def test_all_rule_labels_distinct(self):
        assert len(set(R.ALL_RULES)) == len(R.ALL_RULES)
