"""Tests for the happens-before graph, including hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hb.graph import HBGraph, chc, transitive_closure_pairs


class TestBasics:
    def test_direct_edge(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        assert graph.happens_before(1, 2)
        assert not graph.happens_before(2, 1)

    def test_transitivity(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.happens_before(1, 3)

    def test_no_self_ordering(self):
        graph = HBGraph()
        graph.add_operation(1)
        assert not graph.happens_before(1, 1)
        assert not graph.concurrent(1, 1)

    def test_unrelated_are_concurrent(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        assert graph.concurrent(2, 3)

    def test_self_edge_ignored(self):
        graph = HBGraph()
        assert not graph.add_edge(4, 4)

    def test_duplicate_edge_rejected(self):
        graph = HBGraph()
        assert graph.add_edge(1, 2)
        assert not graph.add_edge(1, 2)
        assert graph.edge_count() == 1

    def test_backward_edge_raises(self):
        graph = HBGraph()
        with pytest.raises(ValueError):
            graph.add_edge(5, 3)

    def test_backward_edge_allowed_when_unchecked(self):
        graph = HBGraph(assert_forward=False)
        graph.add_edge(5, 3)
        assert 5 in graph.predecessors(3)

    def test_edge_rules_recorded(self):
        graph = HBGraph()
        graph.add_edge(1, 2, rule="16:settimeout-before-cb")
        assert graph.edges_by_rule("16:settimeout-before-cb")[0].dst == 2

    def test_ancestors(self):
        graph = HBGraph()
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        graph.add_edge(3, 4)
        assert graph.ancestors(4) == {1, 2, 3}
        assert graph.ancestors(1) == frozenset()

    def test_edge_into_cached_operation_raises(self):
        graph = HBGraph()
        graph.add_edge(1, 3)
        graph.ancestors(3)  # freeze
        with pytest.raises(ValueError):
            graph.add_edge(2, 3)

    def test_edge_out_of_cached_operation_is_fine(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.ancestors(2)
        graph.add_edge(2, 5)
        assert graph.happens_before(1, 5)


class TestChc:
    def test_bottom_never_races(self):
        graph = HBGraph()
        graph.add_operation(1)
        assert not chc(graph, 0, 1)
        assert not chc(graph, 1, 0)

    def test_concurrent_ops_chc(self):
        graph = HBGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        assert chc(graph, 2, 3)
        assert not chc(graph, 1, 2)


# ----------------------------------------------------------------------
# hypothesis properties

forward_edges = st.lists(
    st.tuples(st.integers(1, 30), st.integers(1, 30)).map(
        lambda pair: (min(pair), max(pair))
    ).filter(lambda pair: pair[0] != pair[1]),
    max_size=60,
)


@given(forward_edges)
@settings(max_examples=150, deadline=None)
def test_cached_reachability_matches_plain_dfs(edges):
    """The frozen-prefix ancestor cache must agree with a reference DFS."""
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    nodes = graph.operation_ids()
    for b in nodes:
        for a in nodes:
            if a < b:
                assert graph.happens_before(a, b) == graph.has_path_uncached(a, b)


@given(forward_edges)
@settings(max_examples=100, deadline=None)
def test_happens_before_is_transitive_and_antisymmetric(edges):
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    pairs = transitive_closure_pairs(graph)
    for a, b in pairs:
        assert (b, a) not in pairs  # antisymmetry
    for a, b in pairs:
        for c, d in pairs:
            if b == c:
                assert (a, d) in pairs  # transitivity


@given(forward_edges)
@settings(max_examples=100, deadline=None)
def test_concurrent_is_symmetric(edges):
    graph = HBGraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    nodes = graph.operation_ids()
    for a in nodes:
        for b in nodes:
            assert graph.concurrent(a, b) == graph.concurrent(b, a)


@given(forward_edges, st.integers(1, 30), st.integers(1, 30))
@settings(max_examples=150, deadline=None)
def test_chc_is_exactly_not_ordered(edges, a, b):
    graph = HBGraph()
    graph.add_operation(a)
    graph.add_operation(b)
    for src, dst in edges:
        graph.add_edge(src, dst)
    if a != b and a in graph.operation_ids() and b in graph.operation_ids():
        expected = not (
            graph.has_path_uncached(a, b) or graph.has_path_uncached(b, a)
        )
        assert chc(graph, a, b) == (expected and a != b)
