"""Tests for operations and the trace."""

import pytest

from repro.core.access import READ, WRITE, Access
from repro.core.locations import VarLocation
from repro.core.operations import (
    CB,
    DISPATCH,
    EXE,
    PARSE,
    Operation,
    OperationFactory,
)
from repro.core.trace import Trace


class TestOperationFactory:
    def test_ids_start_at_one(self):
        """Id 0 is the detector's ⊥ marker and must stay free."""
        factory = OperationFactory()
        assert factory.create(PARSE).op_id == 1

    def test_ids_monotone(self):
        factory = OperationFactory()
        first = factory.create(PARSE)
        second = factory.create(EXE)
        assert first.op_id < second.op_id

    def test_lookup(self):
        factory = OperationFactory()
        op = factory.create(CB, label="cb(timeout#1)")
        assert factory.get(op.op_id) is op

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            OperationFactory().create("bogus")

    def test_meta_copied(self):
        meta = {"event": "load"}
        op = OperationFactory().create(DISPATCH, meta=meta)
        meta["event"] = "click"
        assert op.meta["event"] == "load"

    def test_iteration_and_len(self):
        factory = OperationFactory()
        factory.create(PARSE)
        factory.create(PARSE)
        assert len(factory) == 2
        assert len(list(factory)) == 2

    def test_describe(self):
        op = Operation(op_id=3, kind=EXE, label="exe(<script>)")
        assert op.describe() == "exe(<script>)"
        assert Operation(op_id=4, kind=EXE).describe() == "exe#4"


class TestTrace:
    def test_record_stamps_sequence(self):
        trace = Trace()
        location = VarLocation(1, "x")
        first = trace.record(Access(kind=WRITE, op_id=1, location=location))
        second = trace.record(Access(kind=READ, op_id=2, location=location))
        assert (first.seq, second.seq) == (0, 1)

    def test_listeners_called_in_order(self):
        trace = Trace()
        seen = []
        trace.subscribe(lambda access: seen.append(access.seq))
        trace.record(Access(kind=WRITE, op_id=1, location=VarLocation(1, "x")))
        assert seen == [0]

    def test_accesses_to(self):
        trace = Trace()
        x = VarLocation(1, "x")
        y = VarLocation(2, "y")
        trace.record(Access(kind=WRITE, op_id=1, location=x))
        trace.record(Access(kind=WRITE, op_id=1, location=y))
        trace.record(Access(kind=READ, op_id=2, location=x))
        assert len(trace.accesses_to(x)) == 2
        assert len(trace.accesses_to(y)) == 1

    def test_locations_deduplicated_in_order(self):
        trace = Trace()
        x = VarLocation(1, "x")
        trace.record(Access(kind=WRITE, op_id=1, location=x))
        trace.record(Access(kind=READ, op_id=2, location=x))
        assert trace.locations() == [x]

    def test_accesses_by_operation(self):
        trace = Trace()
        x = VarLocation(1, "x")
        trace.record(Access(kind=WRITE, op_id=1, location=x))
        trace.record(Access(kind=WRITE, op_id=2, location=x))
        assert len(trace.accesses_by_operation(2)) == 1

    def test_summary_counts(self):
        trace = Trace()
        trace.record(Access(kind=WRITE, op_id=1, location=VarLocation(1, "x")))
        assert "1 accesses" in trace.summary()
