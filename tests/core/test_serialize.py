"""Tests for trace serialization and offline analysis."""

import pytest

from repro import WebRacer
from repro.core.locations import (
    CollectionLocation,
    DomPropLocation,
    HandlerLocation,
    HElemLocation,
    PropLocation,
    VarLocation,
    id_key,
    node_key,
)
from repro.core.serialize import (
    dumps_trace,
    dump_trace,
    load_trace,
    loads_trace,
    trace_from_dict,
    trace_to_dict,
    _location_from_json,
    _location_to_json,
)

PAGE = """
<input type="text" id="depart" />
<script src="hint.js"></script>
<iframe id="i" src="a.html"></iframe>
<script>document.getElementById('i').onload = function() { r = 1; };</script>
"""
RESOURCES = {
    "hint.js": "document.getElementById('depart').value = 'hint';",
    "a.html": "<div></div>",
}


@pytest.fixture(scope="module")
def online_report():
    racer = WebRacer(seed=5)
    return racer.check_page(PAGE, resources=RESOURCES, latencies={"hint.js": 40.0})


class TestLocationRoundtrip:
    @pytest.mark.parametrize(
        "location",
        [
            VarLocation(7, "n"),
            PropLocation(12, "x"),
            DomPropLocation(id_key(3, "q"), "value", tag="input"),
            DomPropLocation(node_key(9), "childNodes", tag="div"),
            HElemLocation(id_key(3, "dw")),
            HElemLocation(node_key(4)),
            CollectionLocation(3, "tag", "img"),
            CollectionLocation(3, "images", ""),
            HandlerLocation(id_key(3, "i"), "load"),
            HandlerLocation(node_key(-2), "load", "fn:9"),
        ],
    )
    def test_roundtrip_preserves_identity(self, location):
        restored = _location_from_json(_location_to_json(location))
        assert restored == location
        assert hash(restored) == hash(location)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            _location_from_json({"t": "mystery"})


class TestTraceRoundtrip:
    def test_json_stringify_roundtrip(self, online_report):
        page = online_report.page
        text = dumps_trace(page.trace, page.monitor.graph)
        loaded = loads_trace(text)
        assert len(loaded.trace.accesses) == len(page.trace.accesses)
        assert len(loaded.trace.operations.operations) == len(
            page.trace.operations.operations
        )
        assert loaded.graph.edge_count() == page.monitor.graph.edge_count()

    def test_file_roundtrip(self, online_report, tmp_path):
        page = online_report.page
        path = tmp_path / "trace.json"
        dump_trace(page.trace, page.monitor.graph, str(path))
        loaded = load_trace(str(path))
        assert len(loaded.trace.accesses) == len(page.trace.accesses)

    def test_version_checked(self):
        with pytest.raises(ValueError):
            trace_from_dict({"version": 99})

    def test_crashes_preserved(self, online_report):
        page = online_report.page
        data = trace_to_dict(page.trace, page.monitor.graph)
        loaded = trace_from_dict(data)
        assert len(loaded.trace.crashes) == len(page.trace.crashes)
        for original, restored in zip(page.trace.crashes, loaded.trace.crashes):
            assert restored.kind == original.kind
            assert restored.operation == original.operation


class TestOfflineAnalysis:
    def test_offline_detector_reproduces_online_races(self, online_report):
        """Capture once, analyse offline: identical race list."""
        page = online_report.page
        loaded = loads_trace(dumps_trace(page.trace, page.monitor.graph))
        offline = loaded.detect()
        online_keys = {
            (race.location, race.prior.op_id, race.current.op_id)
            for race in online_report.raw_races
        }
        offline_keys = {
            (race.location, race.prior.op_id, race.current.op_id)
            for race in offline.races
        }
        assert offline_keys == online_keys

    def test_offline_report_matches_online(self, online_report):
        page = online_report.page
        loaded = loads_trace(dumps_trace(page.trace, page.monitor.graph))
        offline_report = loaded.report()
        assert offline_report.counts() == online_report.classified.counts()
        assert (
            offline_report.harmful_counts()
            == online_report.classified.harmful_counts()
        )

    def test_offline_full_history_detector(self, online_report):
        page = online_report.page
        loaded = loads_trace(dumps_trace(page.trace, page.monitor.graph))
        full = loaded.detect(full_history=True)
        constant = loaded.detect(full_history=False)
        assert {race.location for race in constant.races} <= {
            race.location for race in full.races
        }

    def test_offline_hb_queries_match(self, online_report):
        page = online_report.page
        loaded = loads_trace(dumps_trace(page.trace, page.monitor.graph))
        ops = page.monitor.graph.operation_ids()
        for a in ops[:15]:
            for b in ops[:15]:
                assert loaded.graph.happens_before(a, b) == page.monitor.graph.happens_before(a, b)
