"""Test package."""
