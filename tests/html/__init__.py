"""Test package."""
