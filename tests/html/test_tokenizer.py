"""Tests for the HTML tokenizer."""

from repro.html.tokenizer import (
    Comment,
    Doctype,
    EndTag,
    StartTag,
    Text,
    tokenize_html,
)


class TestTags:
    def test_simple_start_end(self):
        tokens = tokenize_html("<div>hello</div>")
        assert isinstance(tokens[0], StartTag)
        assert tokens[0].name == "div"
        assert isinstance(tokens[1], Text)
        assert tokens[1].data == "hello"
        assert isinstance(tokens[2], EndTag)

    def test_tag_name_case_insensitive(self):
        tokens = tokenize_html("<DIV></DIV>")
        assert tokens[0].name == "div"
        assert tokens[1].name == "div"

    def test_self_closing(self):
        tokens = tokenize_html("<br/>")
        assert tokens[0].self_closing

    def test_void_tags_implicitly_self_closing(self):
        tokens = tokenize_html("<img src='x.png'>")
        assert tokens[0].self_closing

    def test_nested(self):
        tokens = tokenize_html("<a><b></b></a>")
        names = [
            (type(token).__name__, token.name)
            for token in tokens
        ]
        assert names == [
            ("StartTag", "a"),
            ("StartTag", "b"),
            ("EndTag", "b"),
            ("EndTag", "a"),
        ]


class TestAttributes:
    def test_double_quoted(self):
        tokens = tokenize_html('<div id="a" class="x y"></div>')
        assert tokens[0].attributes == {"id": "a", "class": "x y"}

    def test_single_quoted(self):
        tokens = tokenize_html("<div id='a'></div>")
        assert tokens[0].attributes["id"] == "a"

    def test_unquoted(self):
        tokens = tokenize_html("<div id=abc></div>")
        assert tokens[0].attributes["id"] == "abc"

    def test_bare_attribute_truthy(self):
        tokens = tokenize_html('<script src="x.js" async></script>')
        assert tokens[0].attributes["async"] == "true"

    def test_attribute_names_lowercased(self):
        tokens = tokenize_html('<img OnLoad="f()">')
        assert tokens[0].attributes["onload"] == "f()"

    def test_attribute_with_entities(self):
        tokens = tokenize_html('<div title="a &amp; b"></div>')
        assert tokens[0].attributes["title"] == "a & b"

    def test_self_closing_after_attributes(self):
        tokens = tokenize_html('<input type="text" />')
        assert tokens[0].attributes["type"] == "text"
        assert tokens[0].self_closing


class TestScriptsRawText:
    def test_script_body_single_text_token(self):
        tokens = tokenize_html("<script>if (a < b) { x(); }</script>")
        assert isinstance(tokens[1], Text)
        assert tokens[1].data == "if (a < b) { x(); }"
        assert isinstance(tokens[2], EndTag)

    def test_script_with_html_like_strings(self):
        source = "<script>var s = '<div>not a tag</div>';</script>"
        tokens = tokenize_html(source)
        assert "<div>" in tokens[1].data

    def test_unterminated_script(self):
        tokens = tokenize_html("<script>var x = 1;")
        assert tokens[1].data == "var x = 1;"

    def test_empty_script(self):
        tokens = tokenize_html("<script></script>")
        kinds = [type(token).__name__ for token in tokens]
        assert kinds == ["StartTag", "EndTag"]

    def test_style_also_raw(self):
        tokens = tokenize_html("<style>a > b { color: red }</style>")
        assert "a > b" in tokens[1].data


class TestCommentsAndDoctype:
    def test_comment(self):
        tokens = tokenize_html("<!-- a comment -->")
        assert isinstance(tokens[0], Comment)
        assert tokens[0].data == " a comment "

    def test_doctype(self):
        tokens = tokenize_html("<!DOCTYPE html><div></div>")
        assert isinstance(tokens[0], Doctype)

    def test_unterminated_comment(self):
        tokens = tokenize_html("<!-- never closed")
        assert isinstance(tokens[0], Comment)


class TestText:
    def test_whitespace_only_text_dropped(self):
        tokens = tokenize_html("<div>   </div>\n  <p></p>")
        assert not any(isinstance(token, Text) for token in tokens)

    def test_entities_decoded(self):
        tokens = tokenize_html("<p>a &lt; b &amp;&amp; c &gt; d</p>")
        assert tokens[1].data == "a < b && c > d"

    def test_stray_less_than_is_text(self):
        tokens = tokenize_html("<p>1 < 2</p>")
        text = "".join(t.data for t in tokens if isinstance(t, Text))
        assert "<" in text
