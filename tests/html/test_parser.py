"""Tests for the incremental HTML parser."""

from repro.dom.document import Document
from repro.html.parser import IncrementalHtmlParser, parse_html


def fresh(source):
    document = Document("t.html")
    parser = IncrementalHtmlParser(document, source)
    return document, parser


class TestIncrementalUnits:
    def test_one_unit_per_element(self):
        _document, parser = fresh("<div id='a'></div><p></p><span></span>")
        tags = []
        while True:
            unit = parser.next_unit()
            if unit is None:
                break
            tags.append(unit.element.tag)
        assert tags == ["div", "p", "span"]

    def test_units_carry_source_order(self):
        document, parser = fresh("<div></div><p></p>")
        first = parser.next_unit()
        second = parser.next_unit()
        assert first.order < second.order

    def test_commit_is_explicit(self):
        """The element is NOT in the document until commit() — the page
        loader wraps insertion in a parse(E) operation."""
        document, parser = fresh("<div id='x'></div>")
        unit = parser.next_unit()
        assert document.get_element_by_id("x") is None
        unit.commit(document)
        assert document.get_element_by_id("x") is not None

    def test_finished_flag(self):
        _document, parser = fresh("<div></div>")
        assert parser.next_unit() is not None
        assert parser.next_unit() is None
        assert parser.finished


class TestTreeShape:
    def test_nesting(self):
        document = Document()
        parse_html(document, "<div id='a'><div id='b'></div></div><div id='c'></div>")
        a = document.get_element_by_id("a")
        b = document.get_element_by_id("b")
        c = document.get_element_by_id("c")
        assert b.parent is a
        assert c.parent is document.body
        assert a.parent is document.body

    def test_scaffold_tags_folded(self):
        document = Document()
        parse_html(document, "<html><head></head><body><div id='d'></div></body></html>")
        element = document.get_element_by_id("d")
        assert element.parent is document.body

    def test_void_elements_do_not_nest(self):
        document = Document()
        parse_html(document, "<img src='a.png'><div id='after'></div>")
        after = document.get_element_by_id("after")
        assert after.parent is document.body

    def test_unmatched_end_tag_ignored(self):
        document = Document()
        elements = parse_html(document, "</div><p id='p'></p>")
        assert document.get_element_by_id("p") is not None

    def test_implicitly_closed_by_outer_end_tag(self):
        document = Document()
        parse_html(document, "<div id='o'><span id='i'></div><p id='p'></p>")
        assert document.get_element_by_id("i").parent is document.get_element_by_id("o")
        assert document.get_element_by_id("p").parent is document.body


class TestTextAndScripts:
    def test_text_attaches_to_innermost(self):
        document = Document()
        parse_html(document, "<div id='d'>hello <b id='b'>bold</b></div>")
        assert "hello" in document.get_element_by_id("d").text
        assert document.get_element_by_id("b").text == "bold"

    def test_script_source_captured_before_unit_returned(self):
        _document, parser = fresh("<script>var x = 1 < 2;</script>")
        unit = parser.next_unit()
        assert unit.element.tag == "script"
        assert unit.element.text == "var x = 1 < 2;"

    def test_script_is_single_unit(self):
        _document, parser = fresh("<script>code();</script><div></div>")
        assert parser.next_unit().element.tag == "script"
        assert parser.next_unit().element.tag == "div"

    def test_attributes_preserved(self):
        document = Document()
        elements = parse_html(
            document, '<script src="a.js" defer="true"></script>'
        )
        assert elements[0].is_deferred

    def test_handler_attribute_raw(self):
        document = Document()
        elements = parse_html(document, '<img id="g" onload="doWorkA()">')
        assert elements[0].get_attribute("onload") == "doWorkA()"


class TestParseHtmlHelper:
    def test_returns_elements_in_parse_order(self):
        document = Document()
        elements = parse_html(document, "<div></div><p></p>")
        assert [element.tag for element in elements] == ["div", "p"]

    def test_empty_source(self):
        document = Document()
        assert parse_html(document, "") == []

    def test_comment_only(self):
        document = Document()
        assert parse_html(document, "<!-- nothing here -->") == []
