"""Hypothesis robustness tests for the HTML pipeline.

The corpus generator feeds arbitrary synthesized markup through the
tokenizer and incremental parser; neither may hang, crash, or corrupt the
tree on any input.
"""

from hypothesis import given, settings, strategies as st

from repro.dom.document import Document
from repro.dom.element import Element
from repro.html.parser import IncrementalHtmlParser, parse_html
from repro.html.tokenizer import tokenize_html

html_text = st.text(
    alphabet=" \t\nabcdiv<>/='\"!-#.;:scriptXYZ0123456789",
    max_size=200,
)


@given(html_text)
@settings(max_examples=300, deadline=None)
def test_tokenizer_total(source):
    """The tokenizer never raises on arbitrary text."""
    tokens = tokenize_html(source)
    assert isinstance(tokens, list)


@given(html_text)
@settings(max_examples=200, deadline=None)
def test_parser_always_terminates(source):
    """The incremental parser consumes any token soup in bounded steps."""
    document = Document("fuzz.html")
    parser = IncrementalHtmlParser(document, source)
    steps = 0
    while parser.next_unit() is not None:
        steps += 1
        assert steps <= len(source) + 10, "parser failed to make progress"


@given(html_text)
@settings(max_examples=200, deadline=None)
def test_parsed_tree_is_well_formed(source):
    """Whatever the input, the resulting DOM is a consistent tree."""
    document = Document("fuzz.html")
    elements = parse_html(document, source)
    for element in elements:
        assert element.inserted
        assert element.root() is document
        # Parent/child links are mutually consistent.
        if element.parent is not None:
            assert element in element.parent.children
        for child in element.children:
            assert child.parent is element


@given(html_text)
@settings(max_examples=100, deadline=None)
def test_id_index_consistent_after_fuzz(source):
    document = Document("fuzz.html")
    parse_html(document, source)
    for element in document.all_elements():
        if element.element_id:
            found = document._id_index.get(element.element_id)
            assert found is not None
            assert found.element_id == element.element_id


@given(st.lists(st.sampled_from(
    ["<div id='a'>", "</div>", "<p>", "</p>", "text ", "<img src='x'>",
     "<script>var a = 1;</script>", "<!-- c -->", "<input>", "</span>"]),
    min_size=1, max_size=20))
@settings(max_examples=200, deadline=None)
def test_tag_soup_loads_in_browser(fragments):
    """Arbitrary recombinations of valid fragments load end-to-end: the
    page settles, window load fires, no Python exceptions escape."""
    from repro.browser.page import Browser

    source = "".join(fragments)
    page = Browser(seed=0, resources={"x": "bin"}).load(source)
    assert page.loaded()
