"""Tests for site generation and the corpus recipes."""

import pytest

from repro.core.report import EVENT_DISPATCH, FUNCTION, HTML, VARIABLE
from repro.sites.corpus import (
    CLEAN_SITES,
    PAPER_TABLE2_TOTALS,
    TABLE2_SPECS,
    build_corpus,
    corpus_specs,
    expected_table2_totals,
    noise_levels,
)
from repro.sites.generator import Site, SiteSpec, build_site


class TestBuildSite:
    def test_single_pattern(self):
        site = build_site(SiteSpec(name="One").add("valero_email_link"))
        assert site.expected[HTML] == (1, 1)
        assert "javascript:" in site.html

    def test_expectations_additive(self):
        site = build_site(
            SiteSpec(name="Two")
            .add("valero_email_link")
            .add("valero_email_link")
            .add("southwest_form_hint")
        )
        assert site.expected[HTML] == (2, 2)
        assert site.expected[VARIABLE] == (1, 1)

    def test_resources_merged(self):
        site = build_site(
            SiteSpec(name="Res")
            .add("southwest_form_hint")
            .add("function_race_unguarded")
        )
        assert len(site.resources) == 2

    def test_resource_collision_detected(self):
        # Same pattern twice gets distinct uids, so no collision.
        site = build_site(
            SiteSpec(name="Dup")
            .add("southwest_form_hint")
            .add("southwest_form_hint")
        )
        assert len(site.resources) == 2

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError):
            build_site(SiteSpec(name="Bad").add("no_such_pattern"))

    def test_expected_totals_helpers(self):
        site = build_site(
            SiteSpec(name="T").add("valero_email_link").add("two_script_form_hint")
        )
        assert site.expected_filtered_total() == 2
        assert site.expected_harmful_total() == 1


class TestCorpusRecipes:
    def test_exactly_100_sites(self):
        assert len(corpus_specs()) == 100
        assert len(TABLE2_SPECS) + len(CLEAN_SITES) == 100

    def test_seeded_totals_match_paper_exactly(self):
        """The corpus is constructed to reproduce Table 2's totals."""
        assert expected_table2_totals() == PAPER_TABLE2_TOTALS

    def test_41_sites_with_races(self):
        assert len(TABLE2_SPECS) == 41

    def test_site_names_unique(self):
        names = [spec.name for spec in corpus_specs()]
        assert len(set(names)) == 100

    def test_build_corpus_limit(self):
        sites = build_corpus(limit=5)
        assert len(sites) == 5
        assert all(isinstance(site, Site) for site in sites)

    def test_corpus_deterministic_in_seed(self):
        first = build_corpus(master_seed=2, limit=10)
        second = build_corpus(master_seed=2, limit=10)
        assert [site.html for site in first] == [site.html for site in second]

    def test_corpus_varies_with_seed(self):
        first = build_corpus(master_seed=1, limit=10)
        second = build_corpus(master_seed=2, limit=10)
        assert [site.html for site in first] != [site.html for site in second]

    def test_ford_site_has_112_expected_html_races(self):
        ford = next(s for s in build_corpus(limit=41) if s.name == "Ford")
        assert ford.expected[HTML] == (112, 0)

    def test_metlife_has_35_harmful_dispatch_races(self):
        metlife = next(s for s in build_corpus(limit=41) if s.name == "MetLife")
        assert metlife.expected[EVENT_DISPATCH] == (35, 35)

    def test_noise_levels_deterministic(self):
        assert noise_levels(17, 3) == noise_levels(17, 3)

    def test_noise_levels_skewed(self):
        levels = [noise_levels(i, 0) for i in range(100)]
        variable = sorted(level[0] for level in levels)
        # Long tail: median well below max.
        assert variable[49] < variable[-1] / 3

    def test_clean_sites_have_no_expected_filtered_races(self):
        sites = build_corpus(limit=100)
        clean = [site for site in sites if site.name in CLEAN_SITES]
        assert len(clean) == 59
        for site in clean:
            assert site.expected_filtered_total() == 0
