"""The Table-2 reconstruction must be robust to the noise master seed:
different noise draws change Table 1's tails, never the seeded rows."""

import pytest

from repro import WebRacer
from repro.core.report import RACE_TYPES
from repro.sites import build_corpus


@pytest.mark.parametrize("master_seed", [1, 2])
def test_table2_slice_invariant_under_noise_seed(master_seed):
    sites = build_corpus(master_seed=master_seed)[:8]
    racer = WebRacer(seed=master_seed)
    for site in sites:
        report = racer.check_site(site)
        got = {
            race_type: (
                report.filtered_counts()[race_type],
                report.harmful_counts()[race_type],
            )
            for race_type in RACE_TYPES
        }
        expected = {
            race_type: site.expected.get(race_type, (0, 0))
            for race_type in RACE_TYPES
        }
        assert got == expected, f"seed {master_seed}, {site.name}"


def test_noise_actually_varies_with_seed():
    first = build_corpus(master_seed=1)[:8]
    second = build_corpus(master_seed=2)[:8]
    assert [s.html for s in first] != [s.html for s in second]
    # ... but the seeded expectations are identical.
    assert [s.expected for s in first] == [s.expected for s in second]
