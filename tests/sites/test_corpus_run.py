"""End-to-end verification that WebRacer recovers the seeded ground truth
on a representative slice of the corpus (the full 100-site run lives in
the Table 1/2 benchmarks)."""

import pytest

from repro import WebRacer
from repro.core.report import RACE_TYPES
from repro.sites import build_corpus

#: A slice covering every pattern family: polling-heavy (AmEx), pure
#: function (BestBuy), mixed (Citigroup), gomez (Humana), form (IBM),
#: and clean (ExxonMobil is site #41).
SLICE = slice(0, 12)


@pytest.fixture(scope="module")
def slice_reports():
    sites = build_corpus(master_seed=0)[SLICE]
    racer = WebRacer(seed=0)
    reports = [
        racer.check_site(site, seed=index * 101) for index, site in enumerate(sites)
    ]
    return list(zip(sites, reports))


def test_every_site_in_slice_matches_ground_truth(slice_reports):
    for site, report in slice_reports:
        got = {
            race_type: (
                report.filtered_counts()[race_type],
                report.harmful_counts()[race_type],
            )
            for race_type in RACE_TYPES
        }
        expected = {
            race_type: site.expected.get(race_type, (0, 0))
            for race_type in RACE_TYPES
        }
        assert got == expected, f"{site.name}: {got} != {expected}"


def test_raw_counts_at_least_seeded_minimum(slice_reports):
    for site, report in slice_reports:
        raw = report.raw_counts()
        for race_type, minimum in site.raw_min.items():
            assert raw[race_type] >= minimum, (site.name, race_type)


def test_pages_all_settle(slice_reports):
    for site, report in slice_reports:
        assert report.page.loaded(), f"{site.name} never fired window load"


def test_hidden_crashes_only_on_harmful_sites(slice_reports):
    """Crashes imply the site had a harmful html/function race seeded (the
    benign patterns never crash)."""
    for site, report in slice_reports:
        seeded_harmful = site.expected.get("html", (0, 0))[1] + site.expected.get(
            "function", (0, 0)
        )[1]
        crash_kinds = {crash.kind for crash in report.trace.crashes}
        fatal = crash_kinds & {"TypeError", "ReferenceError"}
        if seeded_harmful == 0:
            assert not fatal, f"{site.name} crashed unexpectedly: {crash_kinds}"
        else:
            assert fatal, f"{site.name} seeded harmful races but never crashed"


def test_determinism_of_site_reports():
    sites = build_corpus(master_seed=0)[:3]
    racer = WebRacer(seed=0)

    def run_all():
        return [
            (
                tuple(sorted(racer.check_site(site, seed=7).filtered_counts().items())),
            )
            for site in sites
        ]

    assert run_all() == run_all()
