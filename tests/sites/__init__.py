"""Test package."""
