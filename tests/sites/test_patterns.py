"""Tests for the race-pattern library: each pattern produces exactly the
filtered races (and harmfulness) it advertises."""

import pytest

from repro import WebRacer
from repro.core.report import RACE_TYPES
from repro.sites.generator import SiteSpec, build_site
from repro.sites.patterns import PATTERNS


def measure(pattern_name, seed=5, **kwargs):
    spec = SiteSpec(name=f"unit-{pattern_name}").add(pattern_name, **kwargs)
    site = build_site(spec)
    report = WebRacer(seed=seed).check_site(site)
    got = {
        race_type: (
            report.filtered_counts()[race_type],
            report.harmful_counts()[race_type],
        )
        for race_type in RACE_TYPES
    }
    expected = {race_type: site.expected.get(race_type, (0, 0)) for race_type in RACE_TYPES}
    return got, expected, report, site


@pytest.mark.parametrize(
    "pattern_name,kwargs",
    [
        ("southwest_form_hint", {}),
        ("two_script_form_hint", {}),
        ("guarded_form_hint", {}),
        ("valero_email_link", {}),
        ("ford_polling", {"nodes": 4}),
        ("ford_polling", {"nodes": 0}),
        ("function_race_unguarded", {}),
        ("function_race_guarded", {}),
        ("gomez_monitoring", {"images": 3}),
        ("late_onload_attach", {}),
        ("delayed_onload_attach", {}),
        ("delayed_widget_script", {"widgets": 3}),
        ("iframe_variable_race", {}),
        ("async_global_noise", {"globals_count": 4}),
        ("ajax_global_write", {}),
        ("cookie_race", {}),
        ("static_noise", {}),
    ],
)
def test_pattern_meets_expectation(pattern_name, kwargs):
    got, expected, _report, _site = measure(pattern_name, **kwargs)
    assert got == expected


@pytest.mark.parametrize("seed", [1, 5, 11, 23])
def test_key_patterns_stable_across_seeds(seed):
    for pattern_name in (
        "southwest_form_hint",
        "valero_email_link",
        "gomez_monitoring",
        "function_race_unguarded",
    ):
        got, expected, _report, _site = measure(pattern_name, seed=seed)
        assert got == expected, f"{pattern_name} unstable at seed {seed}"


class TestRawContributions:
    def test_noise_patterns_contribute_raw_races(self):
        for pattern_name, kwargs, race_type in [
            ("async_global_noise", {"globals_count": 6}, "variable"),
            ("delayed_widget_script", {"widgets": 4}, "event_dispatch"),
            ("iframe_variable_race", {}, "variable"),
            ("ajax_global_write", {}, "variable"),
        ]:
            _got, _expected, report, site = measure(pattern_name, **kwargs)
            assert report.raw_counts()[race_type] >= site.raw_min[race_type]
            # ... and the filters remove all of them.
            assert report.filtered_counts()[race_type] == 0

    def test_ford_races_are_all_benign(self):
        _got, _expected, report, _site = measure("ford_polling", nodes=6)
        html_races = report.classified.by_type("html")
        assert len(html_races) == 7
        assert not any(race.harmful for race in html_races)

    def test_gomez_races_all_harmful(self):
        _got, _expected, report, _site = measure("gomez_monitoring", images=4)
        dispatch_races = report.classified.by_type("event_dispatch")
        assert len(dispatch_races) == 4
        assert all(race.harmful for race in dispatch_races)

    def test_static_noise_is_race_free(self):
        _got, _expected, report, _site = measure("static_noise", blocks=4)
        assert report.raw_races == []


class TestRegistry:
    def test_all_patterns_registered(self):
        assert len(PATTERNS) >= 15

    def test_patterns_take_uid_first(self):
        for name, builder in PATTERNS.items():
            fragment = builder("uidtest")
            assert fragment.html, f"{name} produced empty html"

    def test_uids_namespace_resources(self):
        first = PATTERNS["southwest_form_hint"]("a1")
        second = PATTERNS["southwest_form_hint"]("a2")
        assert not set(first.resources) & set(second.resources)
