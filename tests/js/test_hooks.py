"""Tests for the interpreter's instrumentation hooks.

These verify that the engine reports exactly the shared-memory accesses the
paper's JSVar model needs (Section 4.1): global reads/writes as properties
of the global object, closure-cell accesses, object property accesses,
call-target lookups flagged ``is_call``, and hoisted function declarations
flagged ``is_function_decl``.
"""

from repro.js.builtins import install_builtins
from repro.js.interpreter import AccessHooks, Interpreter
from repro.js.parser import parse


class RecordingHooks(AccessHooks):
    def __init__(self):
        self.events = []

    def var_read(self, cell_id, name, is_call=False):
        self.events.append(("var_read", name, is_call))

    def var_write(self, cell_id, name, is_function_decl=False, writes_function=False):
        self.events.append(("var_write", name, is_function_decl, writes_function))

    def prop_read(self, object_id, name, is_call=False):
        self.events.append(("prop_read", name, is_call))

    def prop_write(self, object_id, name, is_function_decl=False, writes_function=False):
        self.events.append(("prop_write", name, is_function_decl, writes_function))


def run(source):
    hooks = RecordingHooks()
    interp = Interpreter(hooks=hooks)
    install_builtins(interp)
    interp.run(parse(source))
    return hooks.events


class TestGlobalAccesses:
    def test_global_write_is_prop_write(self):
        events = run("x = 1;")
        assert ("prop_write", "x", False, False) in events

    def test_global_read_is_prop_read(self):
        events = run("x = 1; var y = x;")
        assert ("prop_read", "x", False) in events

    def test_builtin_reads_not_instrumented(self):
        events = run("var a = Math.floor(1.5);")
        names = [event[1] for event in events if event[0] == "prop_read"]
        assert "Math" not in names

    def test_var_declared_global_still_prop(self):
        events = run("var g = 2; g;")
        assert ("prop_write", "g", False, False) in events
        assert ("prop_read", "g", False) in events


class TestLocalAndClosureAccesses:
    def test_local_write_and_read(self):
        events = run("function f() { var a = 1; return a; } f();")
        assert ("var_write", "a", False, False) in events
        assert ("var_read", "a", False) in events

    def test_closure_cell_shared(self):
        hooks = RecordingHooks()
        interp = Interpreter(hooks=hooks)
        install_builtins(interp)

        class CellTracker(RecordingHooks):
            pass

        tracker = {"ids": set()}

        class IdHooks(AccessHooks):
            def var_read(self, cell_id, name, is_call=False):
                if name == "n":
                    tracker["ids"].add(cell_id)

            def var_write(self, cell_id, name, **kwargs):
                if name == "n":
                    tracker["ids"].add(cell_id)

        interp2 = Interpreter(hooks=IdHooks())
        install_builtins(interp2)
        interp2.run(
            parse(
                """
                function mk() { var n = 0; return function() { n++; return n; }; }
                var c = mk(); c(); c();
                """
            )
        )
        # All accesses to `n` hit the same cell — the same JSVar location.
        assert len(tracker["ids"]) == 1


class TestCallFlags:
    def test_call_lookup_flagged(self):
        events = run("function f() {} f();")
        call_reads = [event for event in events if event[0] == "prop_read" and event[2]]
        assert ("prop_read", "f", True) in call_reads

    def test_plain_read_not_flagged(self):
        events = run("function f() {} var g = f;")
        assert ("prop_read", "f", False) in events

    def test_failed_call_lookup_still_reported(self):
        # A function race reads the (future) global even when the call
        # crashes — the read must be observable (Section 2.4).
        from repro.js.errors import JSThrow
        import pytest

        hooks = RecordingHooks()
        interp = Interpreter(hooks=hooks)
        install_builtins(interp)
        with pytest.raises(JSThrow):
            interp.run(parse("neverDefined();"))
        assert ("prop_read", "neverDefined", True) in hooks.events


class TestFunctionDeclarations:
    def test_hoisted_declaration_is_function_decl_write(self):
        events = run("function top() {}")
        assert ("prop_write", "top", True, True) in events

    def test_nested_declaration_is_var_write(self):
        events = run("function outer() { function inner() {} } outer();")
        assert ("var_write", "inner", True, True) in events

    def test_function_expression_assignment_flags_writes_function(self):
        events = run("handler = function() {};")
        assert ("prop_write", "handler", False, True) in events


class TestObjectPropertyAccesses:
    def test_object_property_write_and_read(self):
        events = run("var o = {}; o.field = 3; o.field;")
        assert ("prop_write", "field", False, False) in events
        assert ("prop_read", "field", False) in events

    def test_array_element_accesses(self):
        events = run("var a = []; a[0] = 'x'; a[0];")
        assert ("prop_write", "0", False, False) in events
        assert ("prop_read", "0", False) in events

    def test_array_push_instruments_element_write(self):
        events = run("var a = []; a.push(1);")
        assert ("prop_write", "0", False, False) in events

    def test_delete_is_a_write(self):
        # Object-literal initialization is not instrumented (the object is
        # freshly allocated, unshared); the delete is the only write.
        events = run("var o = {k: 1}; delete o.k;")
        writes = [event for event in events if event[0] == "prop_write" and event[1] == "k"]
        assert len(writes) == 1

    def test_assignment_after_literal_is_write(self):
        events = run("var o = {}; o.k = 1; delete o.k;")
        writes = [event for event in events if event[0] == "prop_write" and event[1] == "k"]
        assert len(writes) == 2
