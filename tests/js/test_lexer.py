"""Tests for the JavaScript lexer."""

import pytest

from repro.js.errors import JSSyntaxError
from repro.js.lexer import Token, tokenize


def types(source):
    return [token.type for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type == "eof"

    def test_whitespace_only_yields_eof(self):
        assert types("  \t\n\r  ") == ["eof"]

    def test_identifier(self):
        tokens = tokenize("foo")
        assert tokens[0].type == "ident"
        assert tokens[0].value == "foo"

    def test_identifier_with_digits_and_specials(self):
        assert values("$jQuery _priv x1y2") == ["$jQuery", "_priv", "x1y2"]

    def test_identifier_at_end_of_input_terminates(self):
        # Regression: "" in "_$" is True in Python; the loop must not spin.
        tokens = tokenize("x")
        assert tokens[0].value == "x"
        assert tokens[1].type == "eof"

    def test_keywords_are_distinct_token_types(self):
        assert types("var function return if") == [
            "var",
            "function",
            "return",
            "if",
            "eof",
        ]

    def test_keyword_prefix_is_still_identifier(self):
        tokens = tokenize("variable functional iffy")
        assert all(token.type == "ident" for token in tokens[:-1])


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42.0]

    def test_float(self):
        assert values("3.25") == [3.25]

    def test_leading_dot(self):
        assert values(".5") == [0.5]

    def test_exponent(self):
        assert values("1e3 2.5e-2 1E+2") == [1000.0, 0.025, 100.0]

    def test_number_at_end_of_input(self):
        assert values("x = 2")[-1] == 2.0

    def test_hex(self):
        assert values("0xff 0X10") == [255.0, 16.0]

    def test_malformed_hex_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("0x")

    def test_malformed_exponent_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("1e")


class TestStrings:
    def test_double_quoted(self):
        assert values('"hello"') == ["hello"]

    def test_single_quoted(self):
        assert values("'world'") == ["world"]

    def test_escapes(self):
        assert values(r"'a\nb\tc\\d'") == ["a\nb\tc\\d"]

    def test_quote_escapes(self):
        assert values(r'"she said \"hi\""') == ['she said "hi"']

    def test_unicode_escape(self):
        assert values(r"'A'") == ["A"]

    def test_hex_escape(self):
        assert values(r"'\x41'") == ["A"]

    def test_unknown_escape_keeps_char(self):
        assert values(r"'\q'") == ["q"]

    def test_unterminated_string_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("'abc")

    def test_newline_in_string_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("'a\nb'")

    def test_empty_string(self):
        assert values("''") == [""]


class TestComments:
    def test_line_comment_skipped(self):
        assert values("1 // comment\n2") == [1.0, 2.0]

    def test_block_comment_skipped(self):
        assert values("1 /* lots \n of stuff */ 2") == [1.0, 2.0]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("/* never ends")

    def test_comment_only_source(self):
        assert types("// just a comment") == ["eof"]


class TestPunctuators:
    def test_maximal_munch(self):
        assert values("=== == =") == ["===", "==", "="]

    def test_shift_operators(self):
        assert values(">>> >> >") == [">>>", ">>", ">"]

    def test_increment_vs_plus(self):
        assert values("++ + +=") == ["++", "+", "+="]

    def test_logical_operators(self):
        assert values("&& || & |") == ["&&", "||", "&", "|"]

    def test_brackets(self):
        assert values("( ) [ ] { }") == ["(", ")", "[", "]", "{", "}"]

    def test_unexpected_character_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("@")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(JSSyntaxError) as exc_info:
            tokenize("ok\n  @")
        assert exc_info.value.line == 2

    def test_is_punct_helper(self):
        token = Token("punct", "{", 1, 1)
        assert token.is_punct("{")
        assert not token.is_punct("}")
        assert not Token("ident", "{", 1, 1).is_punct("{")
