"""Tests for the JavaScript parser."""

import pytest

from repro.js import ast
from repro.js.errors import JSSyntaxError
from repro.js.parser import parse, parse_expression


def stmt(source):
    program = parse(source)
    assert len(program.body) == 1
    return program.body[0]


class TestStatements:
    def test_var_single(self):
        node = stmt("var x = 1;")
        assert isinstance(node, ast.VariableDeclaration)
        assert node.declarations[0][0] == "x"
        assert isinstance(node.declarations[0][1], ast.NumberLiteral)

    def test_var_multiple(self):
        node = stmt("var a = 1, b, c = 3;")
        names = [name for name, _init in node.declarations]
        assert names == ["a", "b", "c"]
        assert node.declarations[1][1] is None

    def test_function_declaration(self):
        node = stmt("function f(a, b) { return a; }")
        assert isinstance(node, ast.FunctionDeclaration)
        assert node.name == "f"
        assert node.params == ["a", "b"]
        assert isinstance(node.body[0], ast.ReturnStatement)

    def test_if_else(self):
        node = stmt("if (x) y(); else z();")
        assert isinstance(node, ast.IfStatement)
        assert node.alternate is not None

    def test_dangling_else_binds_inner(self):
        node = stmt("if (a) if (b) c(); else d();")
        assert node.alternate is None
        assert node.consequent.alternate is not None

    def test_while(self):
        node = stmt("while (x) { x--; }")
        assert isinstance(node, ast.WhileStatement)

    def test_do_while(self):
        node = stmt("do { x(); } while (y);")
        assert isinstance(node, ast.DoWhileStatement)

    def test_classic_for(self):
        node = stmt("for (var i = 0; i < 10; i++) body();")
        assert isinstance(node, ast.ForStatement)
        assert isinstance(node.init, ast.VariableDeclaration)
        assert isinstance(node.test, ast.BinaryExpression)
        assert isinstance(node.update, ast.UpdateExpression)

    def test_for_with_empty_clauses(self):
        node = stmt("for (;;) break;")
        assert node.init is None and node.test is None and node.update is None

    def test_for_in_declaring(self):
        node = stmt("for (var k in obj) use(k);")
        assert isinstance(node, ast.ForInStatement)
        assert node.declares and node.name == "k"

    def test_for_in_non_declaring(self):
        node = stmt("for (k in obj) use(k);")
        assert isinstance(node, ast.ForInStatement)
        assert not node.declares

    def test_in_operator_inside_for_parens_requires_care(self):
        # `in` must still work as an operator outside for-heads.
        expr = parse_expression("'a' in obj")
        assert isinstance(expr, ast.BinaryExpression)
        assert expr.operator == "in"

    def test_return_without_value(self):
        program = parse("function f() { return; }")
        ret = program.body[0].body[0]
        assert ret.argument is None

    def test_throw(self):
        node = stmt("throw err;")
        assert isinstance(node, ast.ThrowStatement)

    def test_throw_newline_restriction(self):
        with pytest.raises(JSSyntaxError):
            parse("throw\nerr;")

    def test_try_catch(self):
        node = stmt("try { f(); } catch (e) { g(e); }")
        assert isinstance(node, ast.TryStatement)
        assert node.catch_param == "e"
        assert node.finally_block is None

    def test_try_finally(self):
        node = stmt("try { f(); } finally { g(); }")
        assert node.catch_block is None
        assert node.finally_block is not None

    def test_try_without_catch_or_finally_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("try { f(); }")

    def test_switch(self):
        node = stmt("switch (x) { case 1: a(); break; default: b(); }")
        assert isinstance(node, ast.SwitchStatement)
        assert len(node.cases) == 2
        assert node.cases[1].test is None

    def test_duplicate_default_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("switch (x) { default: a(); default: b(); }")

    def test_empty_statement(self):
        assert isinstance(stmt(";"), ast.EmptyStatement)

    def test_block(self):
        node = stmt("{ a(); b(); }")
        assert isinstance(node, ast.BlockStatement)
        assert len(node.body) == 2

    def test_unterminated_block_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("{ a();")


class TestAutomaticSemicolonInsertion:
    def test_newline_terminates_statement(self):
        program = parse("a = 1\nb = 2")
        assert len(program.body) == 2

    def test_missing_semicolon_without_newline_raises(self):
        with pytest.raises(JSSyntaxError):
            parse("a = 1 b = 2")

    def test_statement_before_close_brace(self):
        program = parse("function f() { return 1 }")
        assert isinstance(program.body[0].body[0], ast.ReturnStatement)

    def test_return_value_not_taken_across_newline(self):
        program = parse("function f() { return\n1; }")
        assert program.body[0].body[0].argument is None


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.operator == "+"
        assert expr.right.operator == "*"

    def test_left_associativity(self):
        expr = parse_expression("10 - 3 - 2")
        assert expr.operator == "-"
        assert expr.left.operator == "-"

    def test_comparison_precedence(self):
        expr = parse_expression("a + 1 < b * 2")
        assert expr.operator == "<"

    def test_logical_lower_than_equality(self):
        expr = parse_expression("a == 1 && b == 2")
        assert isinstance(expr, ast.LogicalExpression)
        assert expr.operator == "&&"

    def test_or_lower_than_and(self):
        expr = parse_expression("a && b || c")
        assert expr.operator == "||"
        assert expr.left.operator == "&&"

    def test_conditional(self):
        expr = parse_expression("a ? b : c")
        assert isinstance(expr, ast.ConditionalExpression)

    def test_nested_conditional_right_associative(self):
        expr = parse_expression("a ? b : c ? d : e")
        assert isinstance(expr.alternate, ast.ConditionalExpression)

    def test_assignment_right_associative(self):
        expr = parse_expression("a = b = 1")
        assert isinstance(expr.value, ast.AssignmentExpression)

    def test_compound_assignment(self):
        expr = parse_expression("a += 2")
        assert expr.operator == "+="

    def test_invalid_assignment_target_raises(self):
        with pytest.raises(JSSyntaxError):
            parse_expression("1 = 2")

    def test_member_dot(self):
        expr = parse_expression("a.b.c")
        assert isinstance(expr, ast.MemberExpression)
        assert not expr.computed
        assert expr.property.value == "c"

    def test_member_computed(self):
        expr = parse_expression("a['b' + i]")
        assert expr.computed

    def test_keyword_as_member_name(self):
        expr = parse_expression("promise.catch")
        assert expr.property.value == "catch"

    def test_call_with_args(self):
        expr = parse_expression("f(1, 'x', g())")
        assert isinstance(expr, ast.CallExpression)
        assert len(expr.arguments) == 3

    def test_method_call_chain(self):
        expr = parse_expression("a.b().c()")
        assert isinstance(expr, ast.CallExpression)
        assert isinstance(expr.callee.object, ast.CallExpression)

    def test_new_with_arguments(self):
        expr = parse_expression("new Widget(1)")
        assert isinstance(expr, ast.NewExpression)
        assert len(expr.arguments) == 1

    def test_new_without_arguments(self):
        expr = parse_expression("new Widget")
        assert isinstance(expr, ast.NewExpression)
        assert expr.arguments == []

    def test_new_member_callee(self):
        expr = parse_expression("new app.Widget()")
        assert isinstance(expr.callee, ast.MemberExpression)

    def test_unary_operators(self):
        for op in ("-", "+", "!", "~"):
            expr = parse_expression(f"{op}x")
            assert expr.operator == op

    def test_typeof_and_delete(self):
        assert parse_expression("typeof x").operator == "typeof"
        assert parse_expression("delete a.b").operator == "delete"

    def test_prefix_and_postfix_update(self):
        pre = parse_expression("++x")
        post = parse_expression("x++")
        assert pre.prefix and not post.prefix

    def test_update_requires_reference(self):
        with pytest.raises(JSSyntaxError):
            parse_expression("5++")

    def test_array_literal(self):
        expr = parse_expression("[1, 2, 3]")
        assert isinstance(expr, ast.ArrayLiteral)
        assert len(expr.elements) == 3

    def test_array_trailing_comma(self):
        expr = parse_expression("[1, 2]")
        assert len(expr.elements) == 2

    def test_object_literal(self):
        expr = parse_expression("{a: 1, 'b c': 2, 3: 'x'}")
        keys = [key for key, _value in expr.properties]
        assert keys == ["a", "b c", "3"]

    def test_object_literal_keyword_key(self):
        expr = parse_expression("{default: 1, in: 2}")
        assert [k for k, _v in expr.properties] == ["default", "in"]

    def test_function_expression(self):
        expr = parse_expression("function (x) { return x; }")
        assert isinstance(expr, ast.FunctionExpression)
        assert expr.name is None

    def test_named_function_expression(self):
        expr = parse_expression("function fact(n) { return n; }")
        assert expr.name == "fact"

    def test_sequence_expression(self):
        expr = parse_expression("a, b, c")
        assert isinstance(expr, ast.SequenceExpression)
        assert len(expr.expressions) == 3

    def test_grouping(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.operator == "*"
        assert expr.left.operator == "+"

    def test_trailing_garbage_raises(self):
        with pytest.raises(JSSyntaxError):
            parse_expression("1 +")

    def test_this(self):
        assert isinstance(parse_expression("this"), ast.ThisExpression)

    def test_literals(self):
        assert isinstance(parse_expression("null"), ast.NullLiteral)
        assert isinstance(parse_expression("undefined"), ast.UndefinedLiteral)
        assert parse_expression("true").value is True
        assert parse_expression("false").value is False
