"""Tests for the JavaScript interpreter semantics."""

import math

import pytest

from repro.js import (
    JSThrow,
    UNDEFINED,
    NULL,
    JSArray,
    JSObject,
    evaluate,
)
from repro.js.builtins import install_builtins
from repro.js.interpreter import BudgetExceeded, Interpreter
from repro.js.parser import parse


def run(source):
    return evaluate(source)


class TestArithmeticAndCoercion:
    def test_addition(self):
        assert run("1 + 2") == 3.0

    def test_string_concatenation_with_number(self):
        assert run("'5' + 1") == "51"

    def test_subtraction_coerces(self):
        assert run("'5' - 1") == 4.0

    def test_multiplication_division(self):
        assert run("6 * 7 / 2") == 21.0

    def test_division_by_zero_is_infinity(self):
        assert run("1 / 0") == float("inf")
        assert run("-1 / 0") == float("-inf")

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(run("0 / 0"))

    def test_modulo(self):
        assert run("7 % 3") == 1.0
        assert run("-7 % 3") == -1.0  # JS fmod semantics, not Python's

    def test_unary_minus_and_plus(self):
        assert run("-'3'") == -3.0
        assert run("+'4.5'") == 4.5

    def test_bitwise(self):
        assert run("5 & 3") == 1.0
        assert run("5 | 3") == 7.0
        assert run("5 ^ 3") == 6.0
        assert run("~0") == -1.0
        assert run("1 << 4") == 16.0
        assert run("-8 >> 1") == -4.0
        assert run("-1 >>> 28") == 15.0

    def test_string_comparison(self):
        assert run("'abc' < 'abd'") is True

    def test_nan_comparisons_false(self):
        assert run("(0/0) < 1") is False
        assert run("(0/0) >= 1") is False

    def test_loose_equality(self):
        assert run("1 == '1'") is True
        assert run("null == undefined") is True
        assert run("null == 0") is False
        assert run("true == 1") is True

    def test_strict_equality(self):
        assert run("1 === '1'") is False
        assert run("1 === 1") is True
        assert run("(0/0) === (0/0)") is False

    def test_logical_short_circuit_returns_operand(self):
        assert run("0 || 'fallback'") == "fallback"
        assert run("'first' && 'second'") == "second"
        assert run("0 && explode()") == 0.0
        assert run("1 || explode()") == 1.0

    def test_conditional_expression(self):
        assert run("1 ? 'yes' : 'no'") == "yes"

    def test_typeof(self):
        assert run("typeof 1") == "number"
        assert run("typeof 'x'") == "string"
        assert run("typeof true") == "boolean"
        assert run("typeof undefined") == "undefined"
        assert run("typeof null") == "object"
        assert run("typeof {}") == "object"
        assert run("typeof function(){}") == "function"
        assert run("typeof neverDeclared") == "undefined"


class TestVariablesAndScope:
    def test_global_assignment_and_read(self):
        assert run("x = 10; x + 1") == 11.0

    def test_var_declaration(self):
        assert run("var y = 5; y") == 5.0

    def test_undeclared_read_throws_reference_error(self):
        with pytest.raises(JSThrow) as exc_info:
            run("nope + 1")
        assert exc_info.value.value.name == "ReferenceError"

    def test_var_hoisting_makes_undefined(self):
        # Hoisting declares z (as undefined) before any statement runs, so
        # the early typeof sees "undefined", not a ReferenceError.
        assert run("var before = typeof w; var w = 3; before") == "undefined"

    def test_function_hoisting(self):
        assert run("var r = hoisted(); function hoisted() { return 42; } r") == 42.0

    def test_function_params_are_local(self):
        assert run("x = 1; function f(x) { x = 99; } f(5); x") == 1.0

    def test_closures_capture_cells(self):
        source = """
        function counter() { var n = 0; return function() { n++; return n; }; }
        var c1 = counter(); var c2 = counter();
        c1(); c1(); c2();
        '' + c1() + ',' + c2()
        """
        assert run(source) == "3,2"

    def test_closures_share_one_cell(self):
        source = """
        function pair() {
          var v = 0;
          return { set: function(x) { v = x; }, get: function() { return v; } };
        }
        var p = pair(); p.set(7); p.get()
        """
        assert run(source) == 7.0

    def test_implicit_global_from_function(self):
        assert run("function f() { leak = 123; } f(); leak") == 123.0

    def test_named_function_expression_self_reference(self):
        assert run("var f = function g(n) { return n <= 1 ? 1 : n * g(n - 1); }; f(5)") == 120.0

    def test_arguments_object(self):
        assert run("function f() { return arguments.length; } f(1, 2, 3)") == 3.0
        assert run("function f() { return arguments[1]; } f('a', 'b')") == "b"


class TestControlFlow:
    def test_while_with_break(self):
        assert run("var i = 0; while (true) { i++; if (i > 4) break; } i") == 5.0

    def test_while_with_continue(self):
        source = "var s = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; s += i; } s"
        assert run(source) == 20.0

    def test_do_while_runs_once(self):
        assert run("var n = 0; do { n++; } while (false); n") == 1.0

    def test_nested_loop_break_inner_only(self):
        source = """
        var hits = 0;
        for (var i = 0; i < 3; i++) {
          for (var j = 0; j < 10; j++) { if (j == 1) break; hits++; }
        }
        hits
        """
        assert run(source) == 3.0

    def test_for_in_iterates_keys(self):
        assert run("var s = ''; for (var k in {a:1, b:2}) s += k; s") == "ab"

    def test_for_in_over_array_gives_indices(self):
        assert run("var s = ''; for (var i in [9, 8]) s += i; s") == "01"

    def test_switch_fallthrough(self):
        source = "var s = ''; switch (1) { case 1: s += 'a'; case 2: s += 'b'; break; case 3: s += 'c'; } s"
        assert run(source) == "ab"

    def test_switch_default_when_no_match(self):
        assert run("var r; switch (9) { case 1: r = 'a'; break; default: r = 'd'; } r") == "d"

    def test_switch_uses_strict_equality(self):
        assert run("var r = 'none'; switch ('1') { case 1: r = 'num'; break; } r") == "none"


class TestExceptions:
    def test_throw_and_catch(self):
        assert run("var r; try { throw 'oops'; } catch (e) { r = e; } r") == "oops"

    def test_finally_runs_on_success(self):
        assert run("var log = ''; try { log += 'a'; } finally { log += 'b'; } log") == "ab"

    def test_finally_runs_on_throw(self):
        source = """
        var log = '';
        try {
          try { throw 1; } finally { log += 'f'; }
        } catch (e) { log += 'c'; }
        log
        """
        assert run(source) == "fc"

    def test_uncaught_throw_propagates(self):
        with pytest.raises(JSThrow):
            run("throw 42;")

    def test_catch_scope_does_not_leak(self):
        assert run("try { throw 1; } catch (err) {} typeof err") == "undefined"

    def test_mutations_before_throw_persist(self):
        """The paper's 'hidden crash' semantics: state mutated before a
        crash stays mutated (Section 2.3)."""
        interp = Interpreter()
        install_builtins(interp)
        with pytest.raises(JSThrow):
            evaluate("x = 'mutated'; missingFunction();", interp)
        assert interp.global_object.get_own("x") == "mutated"

    def test_calling_undefined_function_is_reference_error(self):
        with pytest.raises(JSThrow) as exc_info:
            run("doesNotExist()")
        assert exc_info.value.value.name == "ReferenceError"

    def test_calling_non_function_is_type_error(self):
        with pytest.raises(JSThrow) as exc_info:
            run("var x = 5; x()")
        assert exc_info.value.value.name == "TypeError"

    def test_property_of_undefined_is_type_error(self):
        with pytest.raises(JSThrow) as exc_info:
            run("var u; u.prop")
        assert exc_info.value.value.name == "TypeError"

    def test_property_of_null_is_type_error(self):
        with pytest.raises(JSThrow):
            run("null.x")


class TestObjectsAndArrays:
    def test_object_literal_and_access(self):
        assert run("var o = {a: 1, b: {c: 2}}; o.a + o.b.c") == 3.0

    def test_computed_property_write(self):
        assert run("var o = {}; o['k' + 1] = 9; o.k1") == 9.0

    def test_delete_property(self):
        assert run("var o = {a: 1}; delete o.a; typeof o.a") == "undefined"

    def test_in_operator(self):
        assert run("'a' in {a: 1}") is True
        assert run("'b' in {a: 1}") is False

    def test_array_length_tracks_writes(self):
        assert run("var a = []; a[4] = 'x'; a.length") == 5.0

    def test_array_length_truncation(self):
        assert run("var a = [1, 2, 3]; a.length = 1; typeof a[1]") == "undefined"

    def test_this_in_method_call(self):
        assert run("var o = {v: 7, get: function() { return this.v; }}; o.get()") == 7.0

    def test_new_constructs_instance(self):
        source = """
        function Point(x, y) { this.x = x; this.y = y; }
        var p = new Point(3, 4);
        p.x + p.y
        """
        assert run(source) == 7.0

    def test_prototype_method_lookup(self):
        source = """
        function Animal(name) { this.name = name; }
        Animal.prototype.speak = function() { return this.name + ' speaks'; };
        new Animal('Rex').speak()
        """
        assert run(source) == "Rex speaks"

    def test_instanceof(self):
        source = """
        function A() {}
        function B() {}
        var a = new A();
        '' + (a instanceof A) + ',' + (a instanceof B)
        """
        assert run(source) == "true,false"

    def test_constructor_returning_object_overrides(self):
        assert run("function F() { return {v: 1}; } new F().v") == 1.0

    def test_function_call_and_apply(self):
        assert run("function f(a, b) { return this.x + a + b; } f.call({x: 1}, 2, 3)") == 6.0
        assert run("function f(a, b) { return a * b; } f.apply(null, [6, 7])") == 42.0


class TestUpdateAndCompound:
    def test_postfix_returns_old_value(self):
        assert run("var i = 5; var j = i++; '' + i + j") == "65"

    def test_prefix_returns_new_value(self):
        assert run("var i = 5; var j = ++i; '' + i + j") == "66"

    def test_update_on_property(self):
        assert run("var o = {n: 1}; o.n++; o.n") == 2.0

    def test_compound_assignment_operators(self):
        assert run("var x = 10; x -= 3; x *= 2; x /= 7; x") == 2.0
        assert run("var s = 'a'; s += 'b'; s") == "ab"


class TestBudget:
    def test_infinite_loop_hits_budget(self):
        interp = Interpreter(max_steps=10_000)
        install_builtins(interp)
        with pytest.raises(BudgetExceeded):
            interp.run(parse("while (true) {}"))

    def test_budget_resets_between_runs(self):
        interp = Interpreter(max_steps=10_000)
        install_builtins(interp)
        for _ in range(5):
            interp.run(parse("var t = 0; for (var i = 0; i < 100; i++) t += i;"))

    def test_no_budget_when_disabled(self):
        interp = Interpreter(max_steps=None)
        install_builtins(interp)
        interp.run(parse("var x = 1;"))


class TestSequenceAndMisc:
    def test_sequence_yields_last(self):
        assert run("(1, 2, 3)") == 3.0

    def test_void_yields_undefined(self):
        assert run("void 0") is UNDEFINED

    def test_null_literal(self):
        assert run("null") is NULL

    def test_array_values_roundtrip(self):
        result = run("[1, 'two', true]")
        assert isinstance(result, JSArray)
        assert result.to_list() == [1.0, "two", True]

    def test_object_identity_semantics(self):
        assert run("var a = {}; var b = a; a === b") is True
        assert run("({}) === ({})") is False
