"""Test package."""
