"""Tests for scopes and hoisting analysis."""

from repro.js import ast
from repro.js.parser import parse
from repro.js.scope import ObjectScope, Scope, hoisted_declarations
from repro.js.values import UNDEFINED, JSObject


def hoist(source):
    program = parse(source)
    return hoisted_declarations(program.body)


class TestHoistedDeclarations:
    def test_top_level_vars(self):
        names, functions = hoist("var a = 1; var b;")
        assert names == ["a", "b"]
        assert functions == []

    def test_vars_inside_blocks_hoisted(self):
        names, _functions = hoist("if (x) { var inIf = 1; } while (y) { var inWhile = 2; }")
        assert names == ["inIf", "inWhile"]

    def test_vars_in_for_heads(self):
        names, _functions = hoist("for (var i = 0; i < 3; i++) {} for (var k in o) {}")
        assert names == ["i", "k"]

    def test_vars_in_try_catch_finally(self):
        names, _functions = hoist(
            "try { var t = 1; } catch (e) { var c = 2; } finally { var f = 3; }"
        )
        assert names == ["t", "c", "f"]

    def test_vars_in_switch(self):
        names, _functions = hoist("switch (x) { case 1: var s = 1; }")
        assert names == ["s"]

    def test_duplicates_collapsed(self):
        names, _functions = hoist("var a; if (x) { var a; } var a = 3;")
        assert names == ["a"]

    def test_function_declarations_collected_in_order(self):
        _names, functions = hoist("function f() {} function g() {}")
        assert [fn.name for fn in functions] == ["f", "g"]

    def test_nested_function_bodies_not_descended(self):
        names, functions = hoist("function outer() { var hidden = 1; function inner() {} }")
        assert names == []
        assert [fn.name for fn in functions] == ["outer"]

    def test_function_expressions_not_hoisted(self):
        names, functions = hoist("var f = function named() {};")
        assert names == ["f"]
        assert functions == []


class TestScopeChain:
    def test_declare_and_resolve(self):
        scope = Scope()
        cell = scope.declare("x", 1.0)
        assert scope.resolve("x") is cell

    def test_redeclare_keeps_cell_and_value(self):
        scope = Scope()
        cell = scope.declare("x", 1.0)
        again = scope.declare("x", 99.0)
        assert again is cell
        assert cell.value == 1.0

    def test_resolution_walks_outward(self):
        outer = Scope()
        cell = outer.declare("x", 1.0)
        inner = Scope(parent=outer)
        assert inner.resolve("x") is cell

    def test_shadowing(self):
        outer = Scope()
        outer.declare("x", 1.0)
        inner = Scope(parent=outer)
        inner_cell = inner.declare("x", 2.0)
        assert inner.resolve("x") is inner_cell

    def test_unbound_is_none(self):
        assert Scope().resolve("nope") is None

    def test_resolve_local_only(self):
        outer = Scope()
        outer.declare("x")
        inner = Scope(parent=outer)
        assert inner.resolve_local("x") is None


class TestObjectScope:
    def test_backed_by_object(self):
        backing = JSObject()
        scope = ObjectScope(backing)
        scope.declare("g", 5.0)
        assert backing.get_own("g") == 5.0

    def test_declare_does_not_clobber(self):
        backing = JSObject()
        backing.set_own("g", 7.0)
        ObjectScope(backing).declare("g", UNDEFINED)
        assert backing.get_own("g") == 7.0

    def test_resolve_returns_none(self):
        """Global accesses go through instrumented property reads, never
        through cells."""
        scope = ObjectScope(JSObject())
        scope.declare("g")
        assert scope.resolve("g") is None

    def test_inner_scope_falls_back_to_global(self):
        backing = JSObject()
        global_scope = ObjectScope(backing)
        inner = Scope(parent=global_scope)
        assert inner.resolve("anything") is None  # routed to the object
        assert inner.global_scope() is global_scope

    def test_global_scope_of_deep_chain(self):
        global_scope = ObjectScope(JSObject())
        a = Scope(parent=global_scope)
        b = Scope(parent=a)
        assert b.global_scope() is global_scope
