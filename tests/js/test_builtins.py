"""Tests for built-in globals, Math, and string/array methods."""

import math
import random

import pytest

from repro.js import evaluate, JSThrow
from repro.js.builtins import install_builtins
from repro.js.interpreter import Interpreter
from repro.js.parser import parse


def run(source):
    return evaluate(source)


class TestConversionGlobals:
    def test_parse_int_plain(self):
        assert run("parseInt('42')") == 42.0

    def test_parse_int_with_suffix(self):
        assert run("parseInt('42px')") == 42.0

    def test_parse_int_negative(self):
        assert run("parseInt('-7')") == -7.0

    def test_parse_int_radix(self):
        assert run("parseInt('ff', 16)") == 255.0
        assert run("parseInt('0x1A', 16)") == 26.0
        assert run("parseInt('101', 2)") == 5.0

    def test_parse_int_garbage_is_nan(self):
        assert math.isnan(run("parseInt('hello')"))

    def test_parse_float(self):
        assert run("parseFloat('3.25rem')") == 3.25
        assert run("parseFloat('1e2!')") == 100.0
        assert math.isnan(run("parseFloat('x')"))

    def test_is_nan(self):
        assert run("isNaN(0/0)") is True
        assert run("isNaN(5)") is False
        assert run("isNaN('abc')") is True

    def test_is_finite(self):
        assert run("isFinite(1)") is True
        assert run("isFinite(1/0)") is False

    def test_string_number_boolean_constructors(self):
        assert run("String(42)") == "42"
        assert run("Number('3')") == 3.0
        assert run("Boolean('')") is False
        assert run("Boolean('x')") is True

    def test_nan_infinity_globals(self):
        assert math.isnan(run("NaN"))
        assert run("Infinity") == float("inf")


class TestMath:
    def test_floor_ceil_round(self):
        assert run("Math.floor(1.9)") == 1.0
        assert run("Math.ceil(1.1)") == 2.0
        assert run("Math.round(1.5)") == 2.0
        assert run("Math.round(-1.5)") == -1.0  # JS rounds half towards +inf

    def test_abs_sqrt_pow(self):
        assert run("Math.abs(-4)") == 4.0
        assert run("Math.sqrt(9)") == 3.0
        assert math.isnan(run("Math.sqrt(-1)"))
        assert run("Math.pow(2, 10)") == 1024.0

    def test_max_min(self):
        assert run("Math.max(1, 9, 3)") == 9.0
        assert run("Math.min(1, 9, 3)") == 1.0

    def test_pi(self):
        assert abs(run("Math.PI") - math.pi) < 1e-12

    def test_random_is_seeded(self):
        def sample(seed):
            interp = Interpreter()
            install_builtins(interp, rng=random.Random(seed))
            return evaluate("'' + Math.random() + Math.random()", interp)

        assert sample(7) == sample(7)
        assert sample(7) != sample(8)


class TestConstructors:
    def test_array_constructor_from_elements(self):
        assert run("new Array(1, 2, 3).length") == 3.0

    def test_array_constructor_with_size(self):
        assert run("new Array(5).length") == 5.0

    def test_object_constructor(self):
        assert run("var o = new Object(); o.x = 1; o.x") == 1.0

    def test_error_constructor(self):
        assert run("var e = new Error('bad'); e.message") == "bad"

    def test_throw_helper(self):
        with pytest.raises(JSThrow) as exc_info:
            run("__throw('RangeError', 'oops')")
        assert exc_info.value.value.name == "RangeError"


class TestConsole:
    def test_console_log_captured(self):
        interp = Interpreter()
        log = install_builtins(interp)
        evaluate("console.log('a', 1); console.warn('w')", interp)
        assert log == ["a 1", "w"]


class TestStringMethods:
    def test_length(self):
        assert run("'hello'.length") == 5.0

    def test_index_of(self):
        assert run("'hello'.indexOf('ll')") == 2.0
        assert run("'hello'.indexOf('z')") == -1.0
        assert run("'aXaX'.indexOf('X', 2)") == 3.0

    def test_last_index_of(self):
        assert run("'abcabc'.lastIndexOf('b')") == 4.0

    def test_char_at(self):
        assert run("'abc'.charAt(1)") == "b"
        assert run("'abc'.charAt(9)") == ""

    def test_char_code_at(self):
        assert run("'A'.charCodeAt(0)") == 65.0

    def test_substring_swaps_bounds(self):
        assert run("'abcdef'.substring(4, 2)") == "cd"

    def test_substr(self):
        assert run("'abcdef'.substr(2, 3)") == "cde"
        assert run("'abcdef'.substr(-2)") == "ef"

    def test_slice_negative(self):
        assert run("'abcdef'.slice(-3, -1)") == "de"

    def test_split(self):
        assert run("'a,b,c'.split(',').length") == 3.0
        assert run("'abc'.split('').join('-')") == "a-b-c"

    def test_replace_first_only(self):
        assert run("'aaa'.replace('a', 'b')") == "baa"

    def test_case_conversion(self):
        assert run("'MiXeD'.toLowerCase()") == "mixed"
        assert run("'MiXeD'.toUpperCase()") == "MIXED"

    def test_trim(self):
        assert run("'  pad  '.trim()") == "pad"

    def test_concat(self):
        assert run("'a'.concat('b', 'c')") == "abc"

    def test_indexing_into_string(self):
        assert run("'abc'[1]") == "b"


class TestArrayMethods:
    def test_push_pop(self):
        assert run("var a = [1]; a.push(2, 3); a.pop(); a.join(',')") == "1,2"

    def test_shift_unshift(self):
        assert run("var a = [2, 3]; a.unshift(1); a.shift(); a.join('')") == "23"

    def test_join_default_separator(self):
        assert run("[1, 2].join()") == "1,2"

    def test_index_of_strict(self):
        assert run("[1, '1', 2].indexOf('1')") == 1.0
        assert run("[1].indexOf(9)") == -1.0

    def test_slice(self):
        assert run("[1, 2, 3, 4].slice(1, 3).join(',')") == "2,3"
        assert run("[1, 2, 3, 4].slice(-2).join(',')") == "3,4"

    def test_concat(self):
        assert run("[1].concat([2, 3], 4).join(',')") == "1,2,3,4"

    def test_splice_remove(self):
        assert run("var a = [1, 2, 3, 4]; a.splice(1, 2); a.join(',')") == "1,4"

    def test_splice_insert(self):
        assert run("var a = [1, 4]; a.splice(1, 0, 2, 3); a.join(',')") == "1,2,3,4"

    def test_splice_returns_removed(self):
        assert run("[1, 2, 3].splice(0, 2).join(',')") == "1,2"

    def test_for_each(self):
        assert run("var s = 0; [1, 2, 3].forEach(function(x) { s += x; }); s") == 6.0

    def test_map(self):
        assert run("[1, 2, 3].map(function(x) { return x * 2; }).join(',')") == "2,4,6"

    def test_filter(self):
        assert run("[1, 2, 3, 4].filter(function(x) { return x % 2 == 0; }).join(',')") == "2,4"

    def test_number_to_fixed(self):
        assert run("(3.14159).toFixed(2)") == "3.14"
