"""Hypothesis robustness tests for the JS engine.

The engine runs arbitrary generated site code during corpus experiments;
it must never hang or crash with anything other than its own error types.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.js.errors import JSSyntaxError, JSThrow
from repro.js.builtins import install_builtins
from repro.js.interpreter import BudgetExceeded, Interpreter, format_number, to_number, to_string
from repro.js.lexer import tokenize
from repro.js.parser import parse


@given(st.text(max_size=200))
@settings(max_examples=300, deadline=None)
def test_lexer_total(source):
    """The lexer either tokenizes or raises JSSyntaxError — never hangs,
    never raises anything else."""
    try:
        tokens = tokenize(source)
    except JSSyntaxError:
        return
    assert tokens[-1].type == "eof"
    # Progress: token count is bounded by input length + 1.
    assert len(tokens) <= len(source) + 1


@given(st.text(alphabet=" \t\nabcxyz0123456789+-*/%=<>!&|(){}[];,.'\"_$", max_size=120))
@settings(max_examples=300, deadline=None)
def test_parser_total(source):
    """The parser either builds an AST or raises JSSyntaxError."""
    try:
        parse(source)
    except JSSyntaxError:
        pass


_EXPR = st.recursive(
    st.sampled_from(["1", "2.5", "'s'", "true", "null", "undefined", "x"]),
    lambda inner: st.builds(
        lambda a, op, b: f"({a} {op} {b})",
        inner,
        st.sampled_from(["+", "-", "*", "/", "%", "==", "===", "<", ">", "&&", "||"]),
        inner,
    ),
    max_leaves=12,
)


@given(_EXPR)
@settings(max_examples=300, deadline=None)
def test_generated_expressions_evaluate(expression):
    """Well-formed expressions always evaluate (JS has no evaluation type
    errors for these operators) and evaluation is deterministic."""
    interp = Interpreter(max_steps=100_000)
    install_builtins(interp)
    interp.global_object.set_own("x", 3.0)
    program = parse(f"__r = {expression};")

    interp.run(program)
    first = interp.global_object.get_own("__r")
    interp.run(program)
    second = interp.global_object.get_own("__r")
    # NaN != NaN, so compare via formatted text.
    assert to_string(first) == to_string(second)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
@settings(max_examples=300, deadline=None)
def test_number_formatting_roundtrip(value):
    """to_number(format_number(x)) == x for finite floats — scripts that
    stringify and re-parse numbers keep their values."""
    text = format_number(float(value))
    assert to_number(text) == float(value)


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_integer_formatting_is_integral(value):
    assert "." not in format_number(float(value))


@given(st.lists(st.sampled_from(["x = x + 1;", "x = x * 2;", "if (x > 5) { x = 0; }",
                                 "for (var i = 0; i < 3; i++) { x += i; }",
                                 "try { throw x; } catch (e) { x = e; }"]),
                min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_generated_programs_never_escape_error_types(statements):
    interp = Interpreter(max_steps=50_000)
    install_builtins(interp)
    interp.global_object.set_own("x", 1.0)
    source = "\n".join(statements)
    try:
        interp.run(parse(source))
    except (JSThrow, JSSyntaxError, BudgetExceeded):
        pass
