"""Tests for JS runtime values."""

from repro.js.values import (
    NULL,
    UNDEFINED,
    Cell,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    is_callable,
    next_cell_id,
    next_object_id,
)


class TestSingletons:
    def test_undefined_is_singleton(self):
        from repro.js.values import _Undefined

        assert _Undefined() is UNDEFINED

    def test_null_is_singleton(self):
        from repro.js.values import _Null

        assert _Null() is NULL

    def test_falsiness(self):
        assert not UNDEFINED
        assert not NULL

    def test_distinct(self):
        assert UNDEFINED is not NULL


class TestJSObject:
    def test_unique_ids(self):
        assert JSObject().object_id != JSObject().object_id

    def test_get_own_missing_is_undefined(self):
        assert JSObject().get_own("nope") is UNDEFINED

    def test_set_and_lookup(self):
        obj = JSObject()
        obj.set_own("a", 1.0)
        assert obj.lookup("a") == 1.0
        assert obj.has("a")
        assert obj.has_own("a")

    def test_prototype_chain_lookup(self):
        proto = JSObject()
        proto.set_own("inherited", "yes")
        obj = JSObject(prototype=proto)
        assert obj.lookup("inherited") == "yes"
        assert not obj.has_own("inherited")
        assert obj.has("inherited")

    def test_write_lands_on_receiver(self):
        proto = JSObject()
        proto.set_own("v", 1.0)
        obj = JSObject(prototype=proto)
        obj.set_own("v", 2.0)
        assert proto.get_own("v") == 1.0
        assert obj.get_own("v") == 2.0

    def test_delete(self):
        obj = JSObject()
        obj.set_own("a", 1.0)
        assert obj.delete("a")
        assert not obj.delete("a")
        assert obj.get_own("a") is UNDEFINED

    def test_own_keys_ordered(self):
        obj = JSObject()
        for key in ("z", "a", "m"):
            obj.set_own(key, 0.0)
        assert obj.own_keys() == ["z", "a", "m"]


class TestJSArray:
    def test_push_grows_length(self):
        array = JSArray()
        assert array.length == 0
        array.push("a")
        array.push("b")
        assert array.length == 2
        assert array.to_list() == ["a", "b"]

    def test_pop_shrinks(self):
        array = JSArray([1.0, 2.0])
        assert array.pop() == 2.0
        assert array.length == 1

    def test_pop_empty_is_undefined(self):
        assert JSArray().pop() is UNDEFINED

    def test_element_updated_extends_length(self):
        array = JSArray()
        array.set_own("4", "x")
        array.element_updated("4")
        assert array.length == 5

    def test_set_length_truncates(self):
        array = JSArray([1.0, 2.0, 3.0])
        array.set_length(1)
        assert array.to_list() == [1.0]
        assert array.get_own("1") is UNDEFINED

    def test_holes_are_undefined(self):
        array = JSArray()
        array.set_own("2", "x")
        array.element_updated("2")
        assert array.to_list() == [UNDEFINED, UNDEFINED, "x"]


class TestCallables:
    def test_is_callable(self):
        assert is_callable(NativeFunction("f", lambda i, t, a: None))
        assert is_callable(JSFunction("g", [], [], None))
        assert not is_callable(JSObject())
        assert not is_callable("string")
        assert not is_callable(UNDEFINED)

    def test_function_repr_includes_name(self):
        assert "g" in repr(JSFunction("g", [], [], None))


class TestCells:
    def test_cells_have_unique_ids(self):
        assert Cell("x").cell_id != Cell("x").cell_id

    def test_cell_holds_value(self):
        cell = Cell("x", 5.0)
        assert cell.value == 5.0
        cell.value = 6.0
        assert cell.value == 6.0

    def test_default_value_is_undefined(self):
        assert Cell("y").value is UNDEFINED

    def test_id_allocators_monotone(self):
        assert next_object_id() < next_object_id()
        assert next_cell_id() < next_cell_id()
