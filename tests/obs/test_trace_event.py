"""Chrome trace-event export: schema and validation tests."""

import json

import pytest

from repro.obs import Instrumentation, to_trace_events, write_chrome_trace
from repro.obs.trace_event import (
    REQUIRED_KEYS,
    to_chrome_trace,
    validate_trace_events,
    validate_trace_file,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, seconds):
        self.t += seconds


@pytest.fixture
def populated():
    clock = FakeClock()
    obs = Instrumentation(clock=clock)
    with obs.span("outer", cat="pipeline", url="x.html"):
        clock.tick(0.001)
        with obs.span("inner", cat="js"):
            clock.tick(0.002)
        obs.instant("race", kind="variable")
        clock.tick(0.001)
    obs.count("chc.query.graph", 7)
    return obs


class TestSchema:
    def test_every_event_has_required_keys(self, populated):
        events = to_trace_events(populated)
        for event in events:
            for key in REQUIRED_KEYS:
                assert key in event, f"{event} missing {key}"

    def test_durations_non_negative(self, populated):
        for event in to_trace_events(populated):
            if event["ph"] == "X":
                assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_phase_mix(self, populated):
        phases = {event["ph"] for event in to_trace_events(populated)}
        assert phases == {"M", "X", "i", "C"}

    def test_span_events_carry_args_and_scope(self):
        clock = FakeClock()
        obs = Instrumentation(clock=clock)
        with obs.scope("siteA"):
            with obs.span("check", cat="pipeline", url="a.html"):
                clock.tick(0.001)
        (span_event,) = [e for e in to_trace_events(obs) if e["ph"] == "X"]
        assert span_event["args"] == {"url": "a.html", "scope": "siteA"}
        assert span_event["cat"] == "pipeline"
        assert span_event["dur"] == pytest.approx(1000.0)

    def test_instants_use_thread_scope(self, populated):
        (instant,) = [e for e in to_trace_events(populated) if e["ph"] == "i"]
        assert instant["s"] == "t"
        assert instant["name"] == "race"

    def test_counters_become_counter_events(self, populated):
        (counter,) = [e for e in to_trace_events(populated) if e["ph"] == "C"]
        assert counter["name"] == "chc.query.graph"
        assert counter["args"]["value"] == 7

    def test_events_sorted_by_timestamp(self, populated):
        timestamps = [event["ts"] for event in to_trace_events(populated)]
        assert timestamps == sorted(timestamps)

    def test_validator_accepts_own_output(self, populated):
        validate_trace_events(to_trace_events(populated))


class TestValidator:
    def test_missing_key_rejected(self):
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_trace_events([{"name": "x", "ph": "i", "pid": 0, "tid": 0}])

    def test_negative_duration_rejected(self):
        event = {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 0, "tid": 0}
        with pytest.raises(ValueError, match="negative dur"):
            validate_trace_events([event])

    def test_complete_event_requires_dur(self):
        event = {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
        with pytest.raises(ValueError, match="missing dur"):
            validate_trace_events([event])

    def test_partial_overlap_rejected(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 0, "tid": 0},
        ]
        with pytest.raises(ValueError, match="unbalanced nesting"):
            validate_trace_events(events)

    def test_proper_nesting_accepted(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 2, "dur": 5, "pid": 0, "tid": 0},
            {"name": "c", "ph": "X", "ts": 12, "dur": 3, "pid": 0, "tid": 0},
        ]
        validate_trace_events(events)


class TestFileRoundTrip:
    def test_write_and_validate(self, populated, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(populated, str(path))
        events = validate_trace_file(str(path))
        assert events  # non-empty

        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["tool"] == "webracer-repro"

    def test_document_shape(self, populated):
        document = to_chrome_trace(populated)
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert document["otherData"]["dropped_events"] == 0
