"""Shard snapshot/merge edge cases: empty shards, partial snapshots from
crashed workers, version mismatches, and ledger appends interleaved with
sharded runs."""

import pytest

from repro.obs import Instrumentation, merge_shard, snapshot
from repro.obs.ledger import Ledger, build_run_record
from repro.obs.shard import SNAPSHOT_VERSION


def _worker_obs(scope="site0", spans=1, counts=0):
    obs = Instrumentation()
    with obs.scope(scope):
        for _ in range(spans):
            with obs.span("work"):
                pass
        for _ in range(counts):
            obs.count("hits")
    return obs


class TestZeroSiteShards:
    def test_empty_snapshot_merges_as_noop(self):
        parent = Instrumentation()
        empty = snapshot(Instrumentation())
        merge_shard(parent, empty, tid=1)
        assert parent.counters == {}
        assert parent.span_stats == {}
        assert parent.events == []
        assert parent.dropped_events == 0

    def test_merging_many_empty_shards_keeps_parent_clean(self):
        parent = Instrumentation()
        with parent.span("parent.phase"):
            pass
        for tid in range(1, 6):
            merge_shard(parent, snapshot(Instrumentation()), tid=tid)
        assert set(parent.span_totals()) == {"parent.phase"}


class TestPartialSnapshots:
    """A worker that died mid-snapshot ships a dict with missing sections;
    the parent merges what is there instead of crashing."""

    def test_snapshot_missing_all_sections(self):
        parent = Instrumentation()
        merge_shard(parent, {"version": SNAPSHOT_VERSION}, tid=1)
        assert parent.counters == {}
        assert parent.events == []

    def test_snapshot_with_only_counters(self):
        parent = Instrumentation()
        merge_shard(
            parent,
            {"version": SNAPSHOT_VERSION, "counters": {("s", "hits"): 3}},
            tid=1,
        )
        assert parent.counters[("s", "hits")] == 3

    def test_partial_shard_merges_alongside_healthy_ones(self):
        parent = Instrumentation()
        healthy = snapshot(_worker_obs("site0", spans=2, counts=3))
        partial = {"version": SNAPSHOT_VERSION, "dropped_events": 4}
        merge_shard(parent, healthy, tid=1, thread_name="site0")
        merge_shard(parent, partial, tid=2, thread_name="site1")
        assert parent.span_totals()["work"].count == 2
        assert parent.counter_totals()["hits"] == 3
        assert parent.dropped_events == 4

    def test_version_mismatch_still_raises(self):
        parent = Instrumentation()
        with pytest.raises(ValueError, match="snapshot version"):
            merge_shard(parent, {"version": SNAPSHOT_VERSION + 1}, tid=1)
        with pytest.raises(ValueError, match="snapshot version"):
            merge_shard(parent, {}, tid=1)


class TestMergeAggregation:
    def test_two_workers_merge_by_scope_and_name(self):
        parent = Instrumentation()
        merge_shard(parent, snapshot(_worker_obs("site0", spans=1)), tid=1)
        merge_shard(parent, snapshot(_worker_obs("site1", spans=2)), tid=2)
        assert parent.span_totals()["work"].count == 3

    def test_events_land_on_worker_tid(self):
        parent = Instrumentation()
        merge_shard(
            parent,
            snapshot(_worker_obs("site0")),
            tid=7,
            thread_name="site0",
        )
        assert all(event.tid == 7 for event in parent.events)
        assert parent.thread_names[7] == "site0"


class TestLedgerInterleavedWithShardedRuns:
    """Two sequential runs and a sharded run appending to one ledger:
    every append is a single O_APPEND write, so the file stays whole."""

    def _record(self, obs, tag):
        return build_run_record(
            "corpus",
            {"seed": 0, "tag": tag},
            [],
            {"sites_checked": 1},
            obs=obs,
        )

    def test_three_runs_one_ledger(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        # run 1: plain sequential
        ledger.append(self._record(_worker_obs("site0"), "seq1"))
        # run 2: a sharded parent that merged two worker snapshots —
        # still appends exactly one record.
        parent = Instrumentation()
        merge_shard(parent, snapshot(_worker_obs("site0")), tid=1)
        merge_shard(parent, snapshot(_worker_obs("site1")), tid=2)
        ledger.append(self._record(parent, "jobs"))
        # run 3: sequential again, interleaved after the sharded run
        ledger.append(self._record(_worker_obs("site0"), "seq2"))
        records = ledger.records()
        assert len(records) == 3
        assert [r["config"]["tag"] for r in records] == [
            "seq1", "jobs", "seq2",
        ]
        # The sharded record folded both workers' spans into its phases.
        assert records[1]["phases"]["work"]["count"] == 2
