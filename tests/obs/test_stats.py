"""render_profile / stats_dict summary tests."""

import json

import pytest

from repro.obs import Instrumentation, render_profile, stats_dict


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, seconds):
        self.t += seconds


@pytest.fixture
def populated():
    clock = FakeClock()
    obs = Instrumentation(clock=clock)
    with obs.scope("siteA"):
        with obs.span("check_page"):
            clock.tick(0.004)
        obs.count("races.raw", 3)
        obs.observe("hb.ancestor_set_size", 5.0)
    with obs.scope("siteB"):
        with obs.span("check_page"):
            clock.tick(0.002)
        obs.count("races.raw", 1)
    return obs


class TestRenderProfile:
    def test_contains_span_and_counter_rows(self, populated):
        text = render_profile(populated)
        assert "check_page" in text
        assert "races.raw" in text
        assert "hb.ancestor_set_size" in text

    def test_totals_merge_scopes(self, populated):
        text = render_profile(populated)
        # 4 ms + 2 ms over 2 calls, and 3 + 1 raw races.
        row = next(line for line in text.splitlines() if "check_page" in line)
        assert " 2 " in row and "6.00" in row
        counter_row = next(line for line in text.splitlines() if "races.raw" in line)
        assert counter_row.rstrip().endswith("4")

    def test_empty_instrumentation_renders(self):
        assert "no spans recorded" in render_profile(Instrumentation())


class TestStatsDict:
    def test_shape_and_json_round_trip(self, populated):
        payload = stats_dict(populated)
        assert set(payload) >= {"spans", "counters", "scopes", "event_count"}
        json.dumps(payload)  # must be JSON-serialisable

    def test_per_scope_breakdown(self, populated):
        scopes = stats_dict(populated)["scopes"]
        assert set(scopes) == {"siteA", "siteB"}
        assert scopes["siteA"]["counters"]["races.raw"] == 3
        assert scopes["siteB"]["counters"]["races.raw"] == 1
        assert scopes["siteA"]["spans"]["check_page"]["total_us"] == pytest.approx(4000.0)
        assert scopes["siteA"]["histograms"]["hb.ancestor_set_size"]["mean"] == 5.0

    def test_totals_merge_scopes(self, populated):
        payload = stats_dict(populated)
        assert payload["counters"]["races.raw"] == 4
        assert payload["spans"]["check_page"]["count"] == 2
        assert payload["spans"]["check_page"]["total_us"] == pytest.approx(6000.0)

    def test_unscoped_data_lands_in_root(self):
        obs = Instrumentation()
        obs.count("loose")
        assert stats_dict(obs)["scopes"]["<root>"]["counters"]["loose"] == 1

    def test_extra_merged(self, populated):
        payload = stats_dict(populated, extra={"page": "x.html"})
        assert payload["page"] == "x.html"
