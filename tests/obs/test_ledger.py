"""Unit tests for the run ledger, regression differ and bench envelope."""

import json
import os

import pytest

from repro.obs import Instrumentation
from repro.obs.bench import (
    bench_envelope,
    validate_bench_document,
    validate_bench_file,
    write_bench,
)
from repro.obs.ledger import (
    Ledger,
    LedgerError,
    build_run_record,
    config_digest,
    lifecycle_index,
    strip_volatile,
)
from repro.obs.regress import (
    PhaseDelta,
    diff_records,
    perf_regressions,
    render_diff_text,
)


def _race(fingerprint, page="p.html", verdict="observed", harmful=True):
    return {
        "fingerprint": fingerprint,
        "verdict": verdict,
        "race_type": "variable",
        "harmful": harmful,
        "location": "p.html:1",
        "description": "write-write race",
        "page": page,
    }


def _record(races=(), config=None, duration_ms=1.0, command="check"):
    return build_run_record(
        command,
        config if config is not None else {"seed": 0},
        list(races),
        {"races": len(races)},
        duration_ms=duration_ms,
    )


class TestRunRecords:
    def test_identical_runs_are_byte_identical_modulo_volatile(self):
        obs_a, obs_b = Instrumentation(), Instrumentation()
        for obs in (obs_a, obs_b):
            with obs.span("phase"):
                obs.count("races.raw", 2)
        a = build_run_record(
            "check", {"seed": 1}, [_race("ff" * 8)], {"races": 1},
            obs=obs_a, duration_ms=3.0,
        )
        b = build_run_record(
            "check", {"seed": 1}, [_race("ff" * 8)], {"races": 1},
            obs=obs_b, duration_ms=900.0,
        )
        assert a["run_id"] != b["run_id"]
        stripped_a, stripped_b = strip_volatile(a), strip_volatile(b)
        assert stripped_a == stripped_b
        assert json.dumps(stripped_a, sort_keys=True) == json.dumps(
            stripped_b, sort_keys=True
        )

    def test_strip_volatile_removes_phase_timings_but_keeps_counts(self):
        obs = Instrumentation()
        with obs.span("phase"):
            pass
        record = build_run_record(
            "check", {}, [], {}, obs=obs, duration_ms=1.0
        )
        stripped = strip_volatile(record)
        assert "duration_ms" not in stripped
        assert "run_id" not in stripped
        assert "timestamp" not in stripped
        assert stripped["phases"]["phase"] == {"count": 1}

    def test_races_sorted_by_fingerprint(self):
        record = _record([_race("ff" * 8), _race("aa" * 8)])
        fingerprints = [race["fingerprint"] for race in record["races"]]
        assert fingerprints == sorted(fingerprints)

    def test_config_digest_ignores_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )
        assert config_digest({"a": 1}) != config_digest({"a": 2})


class TestLedgerAppendAndRead:
    def test_roundtrip(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led"))
        record = _record([_race("ab" * 8)])
        ledger.append(record)
        assert ledger.exists()
        assert ledger.records() == [record]

    def test_append_is_one_line_per_record(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.append(_record())
        ledger.append(_record())
        lines = open(ledger.path).read().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_append_rejects_invalid_record(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        record = _record()
        del record["config_digest"]
        with pytest.raises(ValueError):
            ledger.append(record)
        assert not ledger.exists()

    def test_interleaved_appends_from_two_ledgers_never_tear(self, tmp_path):
        # Two handles on the same file, appends interleaved — the O_APPEND
        # single-write contract must keep every line whole.
        first, second = Ledger(str(tmp_path)), Ledger(str(tmp_path))
        for index in range(10):
            (first if index % 2 == 0 else second).append(
                _record([_race(f"{index:02d}" * 8)])
            )
        records = first.records()
        assert len(records) == 10

    def test_records_fails_loudly_on_corrupt_line(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.append(_record())
        with open(ledger.path, "a") as handle:
            handle.write("{torn line\n")
        with pytest.raises(LedgerError, match=r":2: corrupt record"):
            ledger.records()

    def test_records_fails_loudly_on_schema_violation(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        record = _record()
        record["command"] = "frobnicate"
        line = json.dumps(record, sort_keys=True)
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(ledger.path, "w") as handle:
            handle.write(line + "\n")
        with pytest.raises(LedgerError, match=":1:"):
            ledger.records()

    def test_missing_ledger_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="no ledger"):
            Ledger(str(tmp_path / "nope")).records()


class TestLedgerFind:
    def test_find_by_index_and_id_and_prefix(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        for _ in range(3):
            ledger.append(_record())
        records = ledger.records()
        assert ledger.find("-1") == records[-1]
        assert ledger.find("0") == records[0]
        assert ledger.find(records[1]["run_id"]) == records[1]
        # run ids share the "r" prefix, so a generous unique prefix:
        unique = records[2]["run_id"][:-1]
        if sum(r["run_id"].startswith(unique) for r in records) == 1:
            assert ledger.find(unique) == records[2]

    def test_find_out_of_range_and_missing(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.append(_record())
        with pytest.raises(LedgerError, match="out of range"):
            ledger.find("5")
        with pytest.raises(LedgerError, match="no run matching"):
            ledger.find("zzz")

    def test_ambiguous_prefix(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.append(_record())
        ledger.append(_record())
        with pytest.raises(LedgerError, match="ambiguous"):
            ledger.find("r")


class TestBaseline:
    def test_baseline_is_latest_comparable_earlier_run(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.append(_record(config={"seed": 1}))
        ledger.append(_record(config={"seed": 2}))  # different digest
        ledger.append(_record(config={"seed": 1}))
        ledger.append(_record(config={"seed": 1}))
        records = ledger.records()
        baseline = ledger.baseline_for(records[-1])
        assert baseline["run_id"] == records[2]["run_id"]

    def test_no_baseline_for_first_comparable_run(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.append(_record(config={"seed": 2}))
        ledger.append(_record(config={"seed": 1}))
        records = ledger.records()
        assert ledger.baseline_for(records[-1]) is None

    def test_baseline_requires_same_command(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.append(_record(command="corpus", config={}))
        ledger.append(_record(command="check", config={}))
        records = ledger.records()
        assert ledger.baseline_for(records[-1]) is None


class TestLifecycleIndex:
    def test_new_persisting_resolved_flaky(self):
        runs = [
            _record([_race("aa" * 8), _race("bb" * 8)]),
            _record([_race("aa" * 8), _race("cc" * 8)]),
            _record([_race("aa" * 8), _race("cc" * 8), _race("dd" * 8)]),
        ]
        index = {e["fingerprint"]: e for e in lifecycle_index(runs)}
        assert index["aa" * 8]["status"] == "persisting"
        assert index["bb" * 8]["status"] == "resolved"
        assert index["cc" * 8]["status"] == "persisting"
        assert index["dd" * 8]["status"] == "new"

    def test_flaky_requires_a_gap(self):
        runs = [
            _record([_race("aa" * 8)]),
            _record([]),
            _record([_race("aa" * 8)]),
        ]
        (entry,) = lifecycle_index(runs)
        assert entry["status"] == "flaky"
        assert entry["occurrences"] == 2
        assert entry["runs_considered"] == 3

    def test_first_and_last_seen_are_run_ids(self):
        runs = [_record([_race("aa" * 8)]), _record([_race("aa" * 8)])]
        (entry,) = lifecycle_index(runs)
        assert entry["first_seen"] == runs[0]["run_id"]
        assert entry["last_seen"] == runs[1]["run_id"]


class TestDiff:
    def test_new_resolved_common(self):
        a = _record([_race("aa" * 8), _race("bb" * 8)])
        b = _record([_race("bb" * 8), _race("cc" * 8)])
        diff = diff_records(a, b)
        assert [r["fingerprint"] for r in diff.new_races] == ["cc" * 8]
        assert [r["fingerprint"] for r in diff.resolved_races] == ["aa" * 8]
        assert diff.common == 1
        assert diff.same_config

    def test_config_mismatch_flagged(self):
        a = _record(config={"seed": 1})
        b = _record(config={"seed": 2})
        diff = diff_records(a, b)
        assert not diff.same_config
        assert "different config digests" in render_diff_text(diff)

    def test_perf_regression_gate(self):
        a = _record(duration_ms=100.0)
        b = _record(duration_ms=150.0)
        diff = diff_records(a, b)
        assert [d.phase for d in perf_regressions(diff, 20.0)] == ["<run>"]
        assert perf_regressions(diff, 60.0) == []

    def test_tiny_phases_never_regress(self):
        a = _record(duration_ms=0.1)
        b = _record(duration_ms=0.9)  # +800% but under min_ms
        diff = diff_records(a, b)
        assert perf_regressions(diff, 20.0) == []

    def test_diff_text_lists_new_and_resolved(self):
        a = _record([_race("aa" * 8)])
        b = _record([_race("bb" * 8)])
        text = render_diff_text(diff_records(a, b))
        assert "NEW" in text and "bb" * 8 in text
        assert "RESOLVED" in text and "aa" * 8 in text


class TestPhaseDeltaZeroBaseline:
    """A 0 ms baseline phase must never divide by zero (the old crash)."""

    def test_new_phase_has_infinite_pct(self):
        delta = PhaseDelta(phase="detect", a_ms=0.0, b_ms=5.0)
        assert delta.delta_pct == float("inf")

    def test_absent_phase_has_no_pct(self):
        delta = PhaseDelta(phase="detect", a_ms=0.0, b_ms=0.0)
        assert delta.delta_pct is None

    def test_to_dict_stays_json_safe(self):
        document = PhaseDelta(phase="detect", a_ms=0.0, b_ms=5.0).to_dict()
        assert document["delta_pct"] is None  # inf is not valid JSON
        assert json.dumps(document)  # never raises
        finite = PhaseDelta(phase="detect", a_ms=4.0, b_ms=5.0).to_dict()
        assert finite["delta_pct"] == 25.0

    def test_new_expensive_phase_flags_as_regression(self):
        a = _record(duration_ms=10.0)
        b = _record(duration_ms=10.0)
        b["phases"] = {"detect": {"total_ms": 50.0, "count": 1}}
        diff = diff_records(a, b)
        flagged = {delta.phase for delta in perf_regressions(diff, 20.0)}
        assert "detect" in flagged

    def test_zero_to_zero_never_flags(self):
        a = _record(duration_ms=0.0)
        b = _record(duration_ms=0.0)
        assert perf_regressions(diff_records(a, b), 1.0) == []

    def test_render_marks_new_phases(self):
        a = _record(duration_ms=10.0)
        b = _record(duration_ms=10.0)
        b["phases"] = {"detect": {"total_ms": 50.0, "count": 1}}
        text = render_diff_text(diff_records(a, b))
        assert "new" in text  # rendered instead of an infinite percent


class TestBenchEnvelope:
    def test_envelope_fields_and_roundtrip(self, tmp_path):
        path = write_bench(
            "sample", {"speedup": 2.0, "missing": None},
            payload={"detail": [1, 2]}, directory=str(tmp_path),
        )
        assert os.path.basename(path) == "BENCH_sample.json"
        document = validate_bench_file(path)
        assert document["benchmark"] == "sample"
        assert document["metrics"]["speedup"] == 2.0
        assert document["payload"] == {"detail": [1, 2]}

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            bench_envelope("x", {"name": "fast"})

    def test_validate_rejects_missing_envelope(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"benchmark": "bad", "metrics": {"a": 1}}')
        with pytest.raises(ValueError, match="envelope"):
            validate_bench_file(str(path))

    def test_validate_rejects_empty_metrics(self):
        document = bench_envelope("x", {"a": 1.0})
        document["metrics"] = {}
        with pytest.raises(ValueError, match="non-empty"):
            validate_bench_document(document)
