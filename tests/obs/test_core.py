"""Unit tests for the repro.obs collection core (spans/counters/histograms)."""

import pytest

from repro.obs import NULL, Histogram, Instrumentation, NullInstrumentation


class FakeClock:
    """A manually-advanced clock, in seconds (like time.perf_counter)."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, seconds):
        self.t += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def obs(clock):
    return Instrumentation(clock=clock)


class TestSpans:
    def test_span_duration_in_microseconds(self, obs, clock):
        with obs.span("work"):
            clock.tick(0.005)  # 5 ms
        stat = obs.span_totals()["work"]
        assert stat.count == 1
        assert stat.total == pytest.approx(5000.0)

    def test_nested_spans_charge_child_time_to_parent(self, obs, clock):
        with obs.span("outer"):
            clock.tick(0.001)
            with obs.span("inner"):
                clock.tick(0.003)
            clock.tick(0.001)
        totals = obs.span_totals()
        assert totals["outer"].total == pytest.approx(5000.0)
        assert totals["inner"].total == pytest.approx(3000.0)
        # Self time excludes the child's 3 ms.
        assert totals["outer"].self_total == pytest.approx(2000.0)
        assert totals["inner"].self_total == pytest.approx(3000.0)

    def test_sibling_spans_aggregate_under_one_name(self, obs, clock):
        for _ in range(3):
            with obs.span("step"):
                clock.tick(0.002)
        stat = obs.span_totals()["step"]
        assert stat.count == 3
        assert stat.total == pytest.approx(6000.0)
        assert stat.minimum == pytest.approx(2000.0)
        assert stat.maximum == pytest.approx(2000.0)

    def test_open_spans_stack_order(self, obs):
        outer = obs.span("outer")
        inner = obs.span("inner")
        with outer:
            with inner:
                names = [span.name for span in obs.open_spans()]
                assert names == ["outer", "inner"]
        assert obs.open_spans() == []

    def test_unbalanced_exit_raises(self, obs):
        outer = obs.span("outer")
        inner = obs.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="unbalanced span exit"):
            outer.__exit__(None, None, None)

    def test_span_survives_exception(self, obs, clock):
        with pytest.raises(ValueError):
            with obs.span("fails"):
                clock.tick(0.001)
                raise ValueError("boom")
        assert obs.span_totals()["fails"].count == 1
        assert obs.open_spans() == []

    def test_events_are_retained(self, obs, clock):
        with obs.span("a"):
            clock.tick(0.001)
        obs.instant("mark", detail="x")
        assert [event.name for event in obs.events] == ["a", "mark"]

    def test_event_cap_drops_not_grows(self, clock):
        obs = Instrumentation(clock=clock, max_events=2)
        for index in range(5):
            obs.instant(f"i{index}")
        assert len(obs.events) == 2
        assert obs.dropped_events == 3


class TestCounters:
    def test_count_accumulates(self, obs):
        obs.count("hits")
        obs.count("hits", 4)
        assert obs.counter("hits") == 5

    def test_counters_are_scoped_but_totals_merge(self, obs):
        obs.count("races", 1)
        with obs.scope("siteA"):
            obs.count("races", 2)
        with obs.scope("siteB"):
            obs.count("races", 3)
        assert obs.counters[("siteA", "races")] == 2
        assert obs.counters[("siteB", "races")] == 3
        assert obs.counter("races") == 6
        assert obs.counter_totals() == {"races": 6}

    def test_missing_counter_is_zero(self, obs):
        assert obs.counter("nope") == 0


class TestHistograms:
    def test_histogram_aggregates(self, obs):
        for value in (1.0, 3.0, 5.0):
            obs.observe("sizes", value)
        hist = obs.histograms[("", "sizes")]
        assert hist.count == 3
        assert hist.total == pytest.approx(9.0)
        assert hist.minimum == 1.0
        assert hist.maximum == 5.0
        assert hist.mean == pytest.approx(3.0)

    def test_empty_histogram_dict_is_zeroed(self):
        assert Histogram().as_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }


class TestScopes:
    def test_scope_labels_spans(self, obs, clock):
        with obs.scope("siteA"):
            with obs.span("check"):
                clock.tick(0.001)
        assert ("siteA", "check") in obs.span_stats
        assert obs.scopes() == ["siteA"]

    def test_scope_restores_previous(self, obs):
        with obs.scope("outer"):
            with obs.scope("inner"):
                obs.count("c")
            obs.count("c")
        obs.count("c")
        assert obs.counters[("inner", "c")] == 1
        assert obs.counters[("outer", "c")] == 1
        assert obs.counters[("", "c")] == 1


class TestNullSink:
    def test_null_is_disabled(self):
        assert NULL.enabled is False
        assert Instrumentation().enabled is True

    def test_null_methods_are_noops(self):
        null = NullInstrumentation()
        with null.span("anything", cat="x", foo=1):
            pass
        with null.scope("site"):
            null.count("c", 5)
        null.observe("h", 1.0)
        null.instant("i", k="v")
        # No state to inspect — the contract is simply "never raises".

    def test_null_span_is_shared_singleton(self):
        assert NULL.span("a") is NULL.span("b") is NULL.scope("c")
