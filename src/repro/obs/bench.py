"""Shared ``BENCH_*.json`` trajectory envelope.

Every benchmark that makes a perf or coverage claim writes a
``BENCH_<name>.json`` artifact, and every artifact shares one envelope so
CI (and future tooling) can fold them into a single perf trajectory
instead of a pile of ad-hoc shapes:

.. code-block:: json

    {
      "format": "webracer-bench",
      "version": 1,
      "benchmark": "predict",
      "created_unix": 1754600000,
      "metrics": {"speedup": 3.1, "recall": 1.0},
      "payload": {"...benchmark-specific detail..."}
    }

``metrics`` is the flat, numeric, trend-able surface — the values a
trajectory plot or a regression gate reads.  ``payload`` is free-form
context (coverage lists, per-run breakdowns) that rides along for humans.
:func:`validate_bench_file` is the CI check: it fails the build when any
``BENCH_*.json`` is missing the envelope, so a new benchmark cannot
silently opt out of the trajectory.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

BENCH_FORMAT = "webracer-bench"
BENCH_VERSION = 1

#: Fields every BENCH artifact must carry at top level.
ENVELOPE_FIELDS = ("format", "version", "benchmark", "created_unix", "metrics")


def bench_envelope(
    benchmark: str,
    metrics: Dict[str, Any],
    payload: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Wrap benchmark results in the shared trajectory envelope.

    ``metrics`` values must be numbers (or ``None`` for a metric that
    could not be computed this run); anything richer belongs in
    ``payload``.
    """
    for name, value in metrics.items():
        if value is not None and not isinstance(value, (int, float)):
            raise ValueError(
                f"metric {name!r} must be numeric or None, got "
                f"{type(value).__name__}"
            )
    document: Dict[str, Any] = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "benchmark": benchmark,
        "created_unix": int(time.time()),
        "metrics": dict(metrics),
    }
    if payload is not None:
        document["payload"] = payload
    return document


def write_bench(
    benchmark: str,
    metrics: Dict[str, Any],
    payload: Optional[Dict[str, Any]] = None,
    directory: Optional[str] = None,
) -> str:
    """Write ``BENCH_<benchmark>.json`` (sorted keys, trailing newline).

    Returns the path written.  ``directory`` defaults to the current
    working directory — where CI collects artifacts from.
    """
    document = bench_envelope(benchmark, metrics, payload)
    path = os.path.join(directory or os.getcwd(), f"BENCH_{benchmark}.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def validate_bench_document(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when the envelope is missing or malformed."""
    if not isinstance(document, dict):
        raise ValueError("bench document must be an object")
    for field in ENVELOPE_FIELDS:
        if field not in document:
            raise ValueError(f"bench document missing envelope field {field!r}")
    if document["format"] != BENCH_FORMAT:
        raise ValueError(f"unexpected bench format {document['format']!r}")
    if document["version"] != BENCH_VERSION:
        raise ValueError(f"unexpected bench version {document['version']!r}")
    if not isinstance(document["metrics"], dict) or not document["metrics"]:
        raise ValueError("bench document needs a non-empty 'metrics' object")
    for name, value in document["metrics"].items():
        if value is not None and not isinstance(value, (int, float)):
            raise ValueError(f"bench metric {name!r} is not numeric")


def validate_bench_file(path: str) -> Dict[str, Any]:
    """Load and validate one BENCH artifact; returns the document."""
    with open(path) as handle:
        document = json.load(handle)
    try:
        validate_bench_document(document)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    return document
