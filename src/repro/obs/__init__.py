"""Pipeline-wide tracing and metrics (``repro.obs``).

The paper reports WebRacer's runtime overhead as "barely noticeable"
(Section 6) but gives no per-phase breakdown; this package is the
reproduction's answer to "where does a check spend its time?".  It
provides three primitives —

* **spans**: context-manager timers with parent nesting and self-time
  accounting (``with obs.span("parse"): ...``),
* **counters**: monotonically increasing named integers
  (``obs.count("access.read")``),
* **histograms**: value aggregates (``obs.observe("latency", 3.2)``) —

and two exporters: a Chrome trace-event JSON file (loadable in
``chrome://tracing`` / Perfetto) and a plain-text/JSON stats summary.

One :class:`Instrumentation` object is threaded through
``WebRacer → Browser → Monitor → detector/filters`` exactly the way
``hb_backend`` is.  The default sink is :data:`NULL`, a
:class:`NullInstrumentation` whose every hook is a constant no-op — the
zero-overhead contract the disabled-mode benchmark pins down
(``benchmarks/test_obs_overhead.py``).
"""

from .bench import bench_envelope, validate_bench_file, write_bench
from .core import (
    NULL,
    Histogram,
    Instrumentation,
    NullInstrumentation,
    Span,
    SpanStat,
)
from .ledger import (
    Ledger,
    LedgerError,
    build_run_record,
    config_digest,
    lifecycle_index,
    strip_volatile,
)
from .regress import (
    RunDiff,
    diff_records,
    perf_regressions,
    render_diff_text,
)
from .shard import merge_shard, snapshot
from .stats import render_profile, stats_dict
from .trace_event import (
    to_trace_events,
    validate_trace_events,
    write_chrome_trace,
)

__all__ = [
    "NULL",
    "Histogram",
    "Instrumentation",
    "Ledger",
    "LedgerError",
    "NullInstrumentation",
    "RunDiff",
    "Span",
    "SpanStat",
    "bench_envelope",
    "build_run_record",
    "config_digest",
    "diff_records",
    "lifecycle_index",
    "merge_shard",
    "perf_regressions",
    "render_diff_text",
    "render_profile",
    "snapshot",
    "stats_dict",
    "strip_volatile",
    "to_trace_events",
    "validate_bench_file",
    "validate_trace_events",
    "write_bench",
    "write_chrome_trace",
]
