"""Append-only on-disk run ledger (``--ledger DIR``).

Every ``check``/``corpus``/``explore``/``predict`` invocation is amnesiac
by default: spans, counters and race fingerprints vanish with the
process, so "is this race new, resolved, or flaky?" and "did this phase
get slower?" are unanswerable without manual archaeology.  The ledger is
the cross-run memory: when a run passes ``--ledger DIR``, exactly one
**run record** is appended to ``DIR/ledger.jsonl`` — command + config +
config digest, per-phase span durations and counters snapshotted from
:class:`repro.obs.Instrumentation`, and the full set of race
fingerprints with a verdict (``observed``, ``stable``,
``schedule-sensitive``, ``predicted+confirmed``, ``predicted-only``).

Design points:

* **Append-only JSONL.**  One JSON object per line, written with a
  single ``write()`` on a file opened in append mode — on POSIX
  filesystems ``O_APPEND`` writes from concurrent processes land whole,
  so two sequential runs interleaved with a ``--jobs`` run still yield
  one intact line each.  Nothing ever rewrites the file; the
  fingerprint-lifecycle index (:func:`lifecycle_index`) is *derived* at
  read time rather than stored, so there is no index file to corrupt.
* **Deterministic modulo time.**  Two runs with the same command and
  seeds produce byte-identical records after :func:`strip_volatile`
  removes the run id, timestamp and duration fields — the property the
  regression differ (:mod:`repro.obs.regress`) and the tests pin.
* **Schema-validated.**  Every record is validated against
  :data:`repro.explain.schema.RUN_RECORD_SCHEMA` before it is written
  and after it is read (imported lazily to keep ``repro.obs`` free of
  import cycles).
* **Zero overhead when off.**  The ledger is opt-in; without
  ``--ledger`` no :class:`Ledger` is ever constructed and the null-sink
  contract of :mod:`repro.obs` is untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .core import Instrumentation

#: The one file a ledger directory owns.
LEDGER_FILENAME = "ledger.jsonl"

RUN_RECORD_FORMAT = "webracer-run-record"
RUN_RECORD_VERSION = 1

#: Commands that append run records.
RUN_COMMANDS = ("check", "corpus", "explore", "predict")

#: Race verdicts a run record may carry.
RACE_VERDICTS = (
    "observed",
    "stable",
    "schedule-sensitive",
    "predicted+confirmed",
    "predicted-only",
)

#: Top-level record fields that vary run-to-run even for identical inputs.
VOLATILE_FIELDS = ("run_id", "timestamp", "duration_ms")
#: Per-phase fields that are wall-clock measurements.
VOLATILE_PHASE_FIELDS = ("total_ms", "self_ms")

#: Lifecycle statuses :func:`lifecycle_index` assigns.
STATUS_NEW = "new"
STATUS_PERSISTING = "persisting"
STATUS_RESOLVED = "resolved"
STATUS_FLAKY = "flaky"


def config_digest(config: Dict[str, Any]) -> str:
    """16-hex digest of a run's semantic configuration.

    Output destinations never belong in ``config`` (a run is the same
    run whether its report lands in ``/tmp`` or CI's workspace), so two
    runs with equal digests are directly comparable.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _phases_from_obs(obs: Optional[Instrumentation]) -> Dict[str, Dict[str, Any]]:
    if obs is None:
        return {}
    return {
        name: {
            "count": stat.count,
            "total_ms": round(stat.total / 1000.0, 3),
            "self_ms": round(stat.self_total / 1000.0, 3),
        }
        for name, stat in sorted(obs.span_totals().items())
    }


def _counters_from_obs(obs: Optional[Instrumentation]) -> Dict[str, int]:
    if obs is None:
        return {}
    return dict(sorted(obs.counter_totals().items()))


def new_run_id() -> str:
    """A unique, time-ordered run id (volatile — stripped for diffs)."""
    return f"r{time.time_ns():016x}.{os.getpid()}"


def build_run_record(
    command: str,
    config: Dict[str, Any],
    races: Sequence[Dict[str, Any]],
    totals: Dict[str, Any],
    obs: Optional[Instrumentation] = None,
    duration_ms: float = 0.0,
    run_id: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one run record (validated by :meth:`Ledger.append`).

    ``races`` entries need ``fingerprint``/``verdict``/``race_type``/
    ``harmful``/``location``/``page`` keys; they are sorted by
    ``(fingerprint, verdict)`` so the record is deterministic in the
    run's results alone.
    """
    if timestamp is None:
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    return {
        "format": RUN_RECORD_FORMAT,
        "version": RUN_RECORD_VERSION,
        "run_id": run_id if run_id is not None else new_run_id(),
        "timestamp": timestamp,
        "command": command,
        "config": dict(config),
        "config_digest": config_digest(config),
        "duration_ms": round(duration_ms, 3),
        "phases": _phases_from_obs(obs),
        "counters": _counters_from_obs(obs),
        "totals": dict(totals),
        "races": sorted(
            (dict(race) for race in races),
            key=lambda race: (race.get("fingerprint", ""), race.get("verdict", "")),
        ),
    }


def strip_volatile(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` without run id / timestamp / duration fields.

    What remains is a pure function of the run's inputs and results, so
    equal stripped records mean "the same run happened again".
    """
    stripped = {
        key: value for key, value in record.items() if key not in VOLATILE_FIELDS
    }
    stripped["phases"] = {
        name: {
            key: value
            for key, value in phase.items()
            if key not in VOLATILE_PHASE_FIELDS
        }
        for name, phase in record.get("phases", {}).items()
    }
    return stripped


def _validate_record(record: Dict[str, Any]) -> None:
    # Lazy import: repro.explain imports repro.core which imports
    # repro.obs — a top-level import here would close that cycle.
    from ..explain.schema import validate_run_record

    validate_run_record(record)


class LedgerError(Exception):
    """A ledger directory or file is unusable (message is one line)."""


class Ledger:
    """One on-disk run store: ``<directory>/ledger.jsonl``."""

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(directory, LEDGER_FILENAME)

    # ------------------------------------------------------------------
    # writing

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Validate ``record`` and append it as one JSONL line.

        The single ``write()`` of a ``\\n``-terminated line on an
        append-mode handle is what makes concurrent appends safe: the
        kernel serializes ``O_APPEND`` writes, so interleaved runs never
        tear each other's lines.
        """
        _validate_record(record)
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(self.path, "a") as handle:
            handle.write(line)
        return record

    # ------------------------------------------------------------------
    # reading

    def exists(self) -> bool:
        return os.path.isfile(self.path)

    def records(self) -> List[Dict[str, Any]]:
        """Every run record, in append (chronological) order.

        Raises :class:`LedgerError` with the offending line number on a
        torn or non-record line — a ledger that lies is worse than one
        that fails loudly.
        """
        if not self.exists():
            raise LedgerError(f"no ledger at {self.path!r}")
        records: List[Dict[str, Any]] = []
        with open(self.path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise LedgerError(
                        f"{self.path}:{number}: corrupt record: {exc}"
                    ) from None
                try:
                    _validate_record(record)
                except ValueError as exc:
                    raise LedgerError(f"{self.path}:{number}: {exc}") from None
                records.append(record)
        return records

    def find(self, run_ref: str) -> Dict[str, Any]:
        """Resolve a run reference to a record.

        Accepts an exact ``run_id``, a unique id prefix, or a signed
        integer position (``-1`` = most recent, ``0`` = first).
        """
        records = self.records()
        if not records:
            raise LedgerError(f"ledger {self.path!r} holds no runs")
        try:
            index = int(run_ref)
        except ValueError:
            pass
        else:
            if -len(records) <= index < len(records):
                return records[index]
            raise LedgerError(
                f"run index {run_ref} out of range; ledger holds "
                f"{len(records)} run(s)"
            )
        matches = [
            record
            for record in records
            if record["run_id"] == run_ref or record["run_id"].startswith(run_ref)
        ]
        if not matches:
            raise LedgerError(f"no run matching {run_ref!r} in {self.path!r}")
        exact = [record for record in matches if record["run_id"] == run_ref]
        if exact:
            return exact[-1]
        distinct = {record["run_id"] for record in matches}
        if len(distinct) > 1:
            raise LedgerError(
                f"run reference {run_ref!r} is ambiguous "
                f"({len(distinct)} matches)"
            )
        return matches[-1]

    def baseline_for(self, latest: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The most recent earlier run comparable to ``latest``.

        Comparable means same command and same config digest — the only
        pairing for which "zero new races" and per-phase deltas carry
        meaning.
        """
        earlier: List[Dict[str, Any]] = []
        for record in self.records():
            # Records are chronological; anything at or after ``latest``
            # is not a baseline for it.
            if record["run_id"] == latest["run_id"]:
                break
            if (
                record["command"] == latest["command"]
                and record["config_digest"] == latest["config_digest"]
            ):
                earlier.append(record)
        return earlier[-1] if earlier else None


# ----------------------------------------------------------------------
# the fingerprint-lifecycle index


def lifecycle_index(
    records: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Derive the per-fingerprint lifecycle from run records.

    For every fingerprint ever recorded: the first/last run that saw it,
    how many runs saw it, and a status —

    * ``new``: first seen in the most recent run;
    * ``persisting``: present in every run since first seen, including
      the most recent;
    * ``flaky``: present in the most recent run but absent from at least
      one run in between;
    * ``resolved``: absent from the most recent run.

    The index is a pure function of the records, computed at read time —
    the on-disk format stays append-only.
    """
    ordered = list(records)
    entries: Dict[str, Dict[str, Any]] = {}
    seen_in: Dict[str, List[int]] = {}
    for position, record in enumerate(ordered):
        for race in record.get("races", ()):
            fingerprint = race["fingerprint"]
            entry = entries.get(fingerprint)
            if entry is None:
                entry = entries[fingerprint] = {
                    "fingerprint": fingerprint,
                    "first_seen": record["run_id"],
                    "last_seen": record["run_id"],
                    "occurrences": 0,
                    "race_type": race.get("race_type", ""),
                    "harmful": bool(race.get("harmful", False)),
                    "location": race.get("location", ""),
                    "verdict": race.get("verdict", "observed"),
                }
                seen_in[fingerprint] = []
            entry["last_seen"] = record["run_id"]
            entry["verdict"] = race.get("verdict", entry["verdict"])
            entry["harmful"] = bool(race.get("harmful", entry["harmful"]))
            if not seen_in[fingerprint] or seen_in[fingerprint][-1] != position:
                seen_in[fingerprint].append(position)
                entry["occurrences"] += 1
    latest = len(ordered) - 1
    for fingerprint, entry in entries.items():
        positions = seen_in[fingerprint]
        first, last = positions[0], positions[-1]
        in_latest = last == latest
        gaps = (last - first + 1) != len(positions)
        if not in_latest:
            status = STATUS_RESOLVED
        elif first == latest:
            status = STATUS_NEW
        elif gaps:
            status = STATUS_FLAKY
        else:
            status = STATUS_PERSISTING
        entry["status"] = status
        entry["runs_considered"] = len(ordered)
    return sorted(entries.values(), key=lambda entry: entry["fingerprint"])
