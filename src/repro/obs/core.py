"""Spans, counters and histograms — the ``repro.obs`` collection core.

Everything is single-threaded (the browser is one event loop), so one
span stack suffices.  Timestamps come from ``time.perf_counter`` and are
stored as microseconds relative to the instrumentation's construction,
which is exactly the unit the Chrome trace-event format wants.

The null sink (:data:`NULL`) is the default everywhere instrumentation is
threaded through the pipeline.  Its contract: every method is a constant
no-op, ``enabled`` is ``False`` so hot paths can skip even argument
construction, and the span it hands out is one shared immutable object.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple


class _NullSpan:
    """The reusable no-op context manager the null sink hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullInstrumentation:
    """Zero-overhead sink: every hook is a constant no-op."""

    enabled = False

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        """No-op span."""
        return _NULL_SPAN

    def scope(self, name: str) -> _NullSpan:
        """No-op scope."""
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        """No-op counter increment."""

    def observe(self, name: str, value: float) -> None:
        """No-op histogram observation."""

    def instant(self, name: str, **args: Any) -> None:
        """No-op instant event."""


#: The process-wide null sink; safe to share (it holds no state).
NULL = NullInstrumentation()


class Histogram:
    """Streaming value aggregate: count, total, min, max, mean."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-able summary of the aggregate."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class SpanStat:
    """Aggregate over all spans sharing one (scope, name)."""

    __slots__ = ("count", "total", "self_total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0  # µs, including children
        self.self_total = 0.0  # µs, excluding child spans
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, duration: float, self_time: float) -> None:
        """Fold one finished span into the aggregate."""
        self.count += 1
        self.total += duration
        self.self_total += self_time
        if duration < self.minimum:
            self.minimum = duration
        if duration > self.maximum:
            self.maximum = duration

    def as_dict(self) -> Dict[str, float]:
        """JSON-able summary (times in microseconds)."""
        return {
            "count": self.count,
            "total_us": self.total,
            "self_us": self.self_total,
            "min_us": self.minimum if self.count else 0.0,
            "max_us": self.maximum if self.count else 0.0,
            "mean_us": self.total / self.count if self.count else 0.0,
        }


class Span:
    """One live timed region; use as a context manager.

    Entering pushes the span on the instrumentation's stack; exiting pops
    it (identity-checked — unbalanced exits raise), charges the elapsed
    time to the parent's child-time, and hands the record to the
    instrumentation for event retention and per-(scope, name) stats.
    """

    __slots__ = (
        "obs",
        "name",
        "category",
        "args",
        "scope",
        "start",
        "duration",
        "child_time",
    )

    def __init__(
        self, obs: "Instrumentation", name: str, category: str, args: Dict[str, Any]
    ):
        self.obs = obs
        self.name = name
        self.category = category
        self.args = args
        self.scope = ""
        self.start = 0.0
        self.duration: Optional[float] = None
        self.child_time = 0.0

    def __enter__(self) -> "Span":
        obs = self.obs
        self.scope = obs._scope
        self.start = obs._now()
        obs._stack.append(self)
        return self

    def __exit__(self, *exc: Any) -> bool:
        obs = self.obs
        end = obs._now()
        if not obs._stack or obs._stack[-1] is not self:
            raise RuntimeError(f"unbalanced span exit: {self.name!r} is not innermost")
        obs._stack.pop()
        self.duration = end - self.start
        if obs._stack:
            obs._stack[-1].child_time += self.duration
        obs._finish(self)
        return False

    def __repr__(self) -> str:
        state = f"{self.duration:.1f}us" if self.duration is not None else "open"
        return f"Span({self.name!r}, {state})"


class _Instant:
    """A zero-duration point event (races found, notable moments)."""

    __slots__ = ("name", "category", "args", "scope", "start", "duration")

    def __init__(self, name: str, category: str, args: Dict[str, Any], scope: str, ts: float):
        self.name = name
        self.category = category
        self.args = args
        self.scope = scope
        self.start = ts
        self.duration = None


class _Scope:
    """Context manager that labels everything inside with a scope name."""

    __slots__ = ("obs", "name", "_previous")

    def __init__(self, obs: "Instrumentation", name: str):
        self.obs = obs
        self.name = name
        self._previous = ""

    def __enter__(self) -> "_Scope":
        self._previous = self.obs._scope
        self.obs._scope = self.name
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.obs._scope = self._previous
        return False


class Instrumentation:
    """The live collector: spans + counters + histograms + raw events.

    ``scope(name)`` labels everything recorded inside it (the corpus
    runner opens one scope per site), so per-site statistics fall out of
    the same stream that feeds the Chrome trace.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_events: int = 1_000_000,
    ):
        self._clock = clock
        self._t0 = clock()
        self._stack: List[Span] = []
        self._scope = ""
        self.max_events = max_events
        self.dropped_events = 0
        #: Finished spans and instants, in completion order (µs timestamps).
        self.events: List[Any] = []
        #: (scope, name) -> count.
        self.counters: Dict[Tuple[str, str], int] = {}
        #: (scope, name) -> Histogram.
        self.histograms: Dict[Tuple[str, str], Histogram] = {}
        #: (scope, name) -> SpanStat.
        self.span_stats: Dict[Tuple[str, str], SpanStat] = {}
        #: tid -> label for merged worker shards (Chrome-trace lanes);
        #: tid 0 (the in-process event loop) needs no entry.
        self.thread_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # recording

    def _now(self) -> float:
        """Microseconds since this instrumentation was created."""
        return (self._clock() - self._t0) * 1e6

    def span(self, name: str, cat: str = "", **args: Any) -> Span:
        """A new timed region; use as a context manager."""
        return Span(self, name, cat, args)

    def scope(self, name: str) -> _Scope:
        """Label everything recorded inside with ``name`` (e.g. a site)."""
        return _Scope(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named counter (scoped) by ``n``."""
        key = (self._scope, name)
        self.counters[key] = self.counters.get(key, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the named histogram (scoped)."""
        key = (self._scope, name)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.add(value)

    def instant(self, name: str, **args: Any) -> None:
        """Record a point event at the current time."""
        event = _Instant(name, "instant", args, self._scope, self._now())
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped_events += 1

    def _finish(self, span: Span) -> None:
        key = (span.scope, span.name)
        stat = self.span_stats.get(key)
        if stat is None:
            stat = self.span_stats[key] = SpanStat()
        stat.add(span.duration, span.duration - span.child_time)
        if len(self.events) < self.max_events:
            self.events.append(span)
        else:
            self.dropped_events += 1

    # ------------------------------------------------------------------
    # introspection

    def open_spans(self) -> List[Span]:
        """Spans currently on the stack (innermost last)."""
        return list(self._stack)

    def counter(self, name: str) -> int:
        """Total of one counter across all scopes."""
        return sum(
            value for (_scope, key), value in self.counters.items() if key == name
        )

    def counter_totals(self) -> Dict[str, int]:
        """Counter totals aggregated across scopes."""
        totals: Dict[str, int] = {}
        for (_scope, name), value in self.counters.items():
            totals[name] = totals.get(name, 0) + value
        return totals

    def span_totals(self) -> Dict[str, SpanStat]:
        """Span stats aggregated across scopes, keyed by span name."""
        totals: Dict[str, SpanStat] = {}
        for (_scope, name), stat in self.span_stats.items():
            merged = totals.get(name)
            if merged is None:
                merged = totals[name] = SpanStat()
            merged.count += stat.count
            merged.total += stat.total
            merged.self_total += stat.self_total
            merged.minimum = min(merged.minimum, stat.minimum)
            merged.maximum = max(merged.maximum, stat.maximum)
        return totals

    def scopes(self) -> List[str]:
        """All scope labels seen, in first-use order (excluding '')."""
        seen: Dict[str, None] = {}
        for scope, _name in list(self.span_stats) + list(self.counters):
            if scope:
                seen.setdefault(scope)
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"Instrumentation({len(self.events)} events, "
            f"{len(self.counters)} counters, {len(self._stack)} open spans)"
        )
