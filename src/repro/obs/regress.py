"""Cross-run regression diffing (``repro diff``).

Given two run records from the ledger (:mod:`repro.obs.ledger`), compute
what changed: race fingerprints that are **new** in the later run,
fingerprints the later run **resolved**, and per-phase wall-clock deltas
from the records' span snapshots.  ``--fail-on-regression PCT`` turns
the perf half into a CI gate: the diff exits nonzero when any phase (or
the whole run) slowed down by more than ``PCT`` percent.

Phase deltas compare ``total_ms`` per span name.  Tiny phases are noise
— a 0.1 ms phase doubling is not a regression — so the gate only
considers phases whose later-run total clears ``min_ms`` (default 1 ms).
Race diffs have no such smoothing: one new fingerprint is one new race.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Phases below this many milliseconds (in the later run) never count as
#: perf regressions — they are timer-resolution noise.
DEFAULT_MIN_PHASE_MS = 1.0

#: Synthetic phase name for the whole run's wall clock.
TOTAL_PHASE = "<run>"


@dataclass
class PhaseDelta:
    """One phase's duration in both runs."""

    phase: str
    a_ms: float
    b_ms: float

    @property
    def delta_ms(self) -> float:
        return self.b_ms - self.a_ms

    @property
    def delta_pct(self) -> Optional[float]:
        """Percent change from A to B.

        A phase the baseline recorded at 0 ms (empty page, sub-ms phase
        on a fast machine, span name new in run B) has no finite percent
        change: the value is ``inf`` when B spent time on it — so the
        regression gate still sees a brand-new expensive phase — and
        ``None`` when neither run measured it.  Never raises.
        """
        if self.a_ms <= 0:
            return float("inf") if self.b_ms > 0 else None
        return (self.b_ms - self.a_ms) / self.a_ms * 100.0

    def to_dict(self) -> Dict[str, Any]:
        # inf is not valid JSON; the dict encodes "new phase" as None
        # (consumers distinguish it by a_ms == 0, b_ms > 0).
        pct = self.delta_pct
        finite = pct is not None and math.isfinite(pct)
        return {
            "phase": self.phase,
            "a_ms": round(self.a_ms, 3),
            "b_ms": round(self.b_ms, 3),
            "delta_ms": round(self.delta_ms, 3),
            "delta_pct": round(pct, 2) if finite else None,
        }


@dataclass
class RunDiff:
    """Everything that changed between two run records."""

    run_a: str
    run_b: str
    command: str
    #: Digests differ when the runs are not strictly comparable.
    same_config: bool
    #: Race entries present in B but not in A (by fingerprint).
    new_races: List[Dict[str, Any]] = field(default_factory=list)
    #: Race entries present in A but not in B.
    resolved_races: List[Dict[str, Any]] = field(default_factory=list)
    #: Fingerprints present in both runs.
    common: int = 0
    phase_deltas: List[PhaseDelta] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "command": self.command,
            "same_config": self.same_config,
            "new_races": [dict(race) for race in self.new_races],
            "resolved_races": [dict(race) for race in self.resolved_races],
            "common_fingerprints": self.common,
            "phases": [delta.to_dict() for delta in self.phase_deltas],
        }


def diff_records(a: Dict[str, Any], b: Dict[str, Any]) -> RunDiff:
    """Diff run record ``a`` (baseline) against later record ``b``."""
    races_a = {race["fingerprint"]: race for race in a.get("races", ())}
    races_b = {race["fingerprint"]: race for race in b.get("races", ())}
    deltas = [
        PhaseDelta(
            phase=name,
            a_ms=a.get("phases", {}).get(name, {}).get("total_ms", 0.0),
            b_ms=b.get("phases", {}).get(name, {}).get("total_ms", 0.0),
        )
        for name in sorted(set(a.get("phases", {})) | set(b.get("phases", {})))
    ]
    deltas.append(
        PhaseDelta(
            phase=TOTAL_PHASE,
            a_ms=a.get("duration_ms", 0.0),
            b_ms=b.get("duration_ms", 0.0),
        )
    )
    return RunDiff(
        run_a=a["run_id"],
        run_b=b["run_id"],
        command=b.get("command", a.get("command", "")),
        same_config=a.get("config_digest") == b.get("config_digest"),
        new_races=[
            races_b[fp] for fp in sorted(set(races_b) - set(races_a))
        ],
        resolved_races=[
            races_a[fp] for fp in sorted(set(races_a) - set(races_b))
        ],
        common=len(set(races_a) & set(races_b)),
        phase_deltas=deltas,
    )


def perf_regressions(
    diff: RunDiff,
    threshold_pct: float,
    min_ms: float = DEFAULT_MIN_PHASE_MS,
) -> List[PhaseDelta]:
    """Phases that slowed down past the gate.

    A phase regresses when the later run spent at least ``min_ms`` on it
    and the increase exceeds ``threshold_pct``.  A phase the baseline
    recorded at 0 ms gates like any other: its ``delta_pct`` is ``inf``,
    so a new phase that costs real time always flags (and a 0 -> 0 phase
    never does).
    """
    flagged = []
    for delta in diff.phase_deltas:
        pct = delta.delta_pct
        if pct is None or delta.b_ms < min_ms:
            continue
        if pct > threshold_pct:
            flagged.append(delta)
    return flagged


def render_diff_text(
    diff: RunDiff, regressions: Optional[List[PhaseDelta]] = None
) -> str:
    """Terminal rendering of one run diff."""
    lines = [
        f"diff {diff.run_a} -> {diff.run_b} ({diff.command})",
    ]
    if not diff.same_config:
        lines.append(
            "  warning: runs have different config digests; race and "
            "perf deltas may reflect config changes, not regressions"
        )
    lines.append(
        f"  races: {len(diff.new_races)} new, "
        f"{len(diff.resolved_races)} resolved, {diff.common} unchanged"
    )
    for race in diff.new_races:
        lines.append(
            f"    NEW      {race['fingerprint']}  [{race.get('verdict', '?')}] "
            f"{race.get('race_type', '?')}"
            f"{' harmful' if race.get('harmful') else ''}  "
            f"{race.get('location', '')}"
        )
    for race in diff.resolved_races:
        lines.append(
            f"    RESOLVED {race['fingerprint']}  [{race.get('verdict', '?')}] "
            f"{race.get('race_type', '?')}  {race.get('location', '')}"
        )
    timed = [delta for delta in diff.phase_deltas if delta.a_ms or delta.b_ms]
    if timed:
        lines.append(
            f"  {'phase':28s} {'A ms':>10s} {'B ms':>10s} {'delta':>9s}"
        )
        for delta in timed:
            pct = delta.delta_pct
            finite = pct is not None and math.isfinite(pct)
            pct_text = f"{pct:+8.1f}%" if finite else "      new"
            lines.append(
                f"  {delta.phase:28s} {delta.a_ms:10.2f} "
                f"{delta.b_ms:10.2f} {pct_text}"
            )
    if regressions:
        names = ", ".join(delta.phase for delta in regressions)
        lines.append(f"  PERF REGRESSION in: {names}")
    return "\n".join(lines)
