"""Chrome trace-event export for :class:`~repro.obs.core.Instrumentation`.

Produces the JSON Object Format of the Trace Event specification, loadable
in ``chrome://tracing`` and https://ui.perfetto.dev: finished spans become
complete events (``ph: "X"`` with ``ts``/``dur`` in microseconds), instants
become ``ph: "i"``, counters become one final ``ph: "C"`` sample each, and
a pair of metadata events names the process/thread.

:func:`validate_trace_events` is the schema the tests (and CI) hold every
export to: required keys on every event, non-negative durations, and
properly nested (balanced) complete events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .core import Instrumentation

#: Keys every emitted event must carry.
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def to_trace_events(obs: Instrumentation) -> List[Dict[str, Any]]:
    """All trace events for one instrumentation, in timestamp order."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "args": {"name": "webracer"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "args": {"name": "event-loop"},
        },
    ]
    for tid, label in sorted(getattr(obs, "thread_names", {}).items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            }
        )
    last_ts = 0.0
    for record in obs.events:
        args = dict(record.args)
        if record.scope:
            args["scope"] = record.scope
        event: Dict[str, Any] = {
            "name": record.name,
            "cat": record.category or "default",
            "ts": round(record.start, 3),
            "pid": 0,
            "tid": getattr(record, "tid", 0),
            "args": args,
        }
        if record.duration is None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(record.duration, 3)
        last_ts = max(last_ts, record.start + (record.duration or 0.0))
        events.append(event)
    for name, value in sorted(obs.counter_totals().items()):
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": round(last_ts, 3),
                "pid": 0,
                "tid": 0,
                "args": {"value": value},
            }
        )
    # Spans are recorded in completion order; the viewer wants begin order.
    events.sort(key=lambda event: event["ts"])
    return events


def to_chrome_trace(obs: Instrumentation) -> Dict[str, Any]:
    """The full JSON-object-format document."""
    return {
        "traceEvents": to_trace_events(obs),
        "displayTimeUnit": "ms",
        "otherData": {"tool": "webracer-repro", "dropped_events": obs.dropped_events},
    }


def write_chrome_trace(obs: Instrumentation, path: str) -> None:
    """Write the trace-event file (open it in chrome://tracing / Perfetto)."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(obs), handle)


def validate_trace_events(events: List[Dict[str, Any]]) -> None:
    """Raise ``ValueError`` on any schema violation.

    Checks: required keys present, durations non-negative, and complete
    ("X") events properly nested per (pid, tid) — treating each complete
    event as a [ts, ts+dur] interval, intervals on one thread must form a
    balanced hierarchy (no partial overlap).
    """
    for index, event in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event {index} missing {key!r}: {event!r}")
        if event["ph"] == "X":
            duration = event.get("dur")
            if duration is None:
                raise ValueError(f"complete event {index} missing dur: {event!r}")
            if duration < 0:
                raise ValueError(f"event {index} has negative dur: {event!r}")
        if event["ts"] < 0:
            raise ValueError(f"event {index} has negative ts: {event!r}")

    by_thread: Dict[Any, List[Dict[str, Any]]] = {}
    for event in events:
        if event["ph"] == "X":
            by_thread.setdefault((event["pid"], event["tid"]), []).append(event)
    for thread, spans in by_thread.items():
        # Sort outermost-first at equal start times, then sweep a stack.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[Dict[str, Any]] = []
        for span in spans:
            while stack and span["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                parent = stack[-1]
                if span["ts"] + span["dur"] > parent["ts"] + parent["dur"] + 1e-6:
                    raise ValueError(
                        f"unbalanced nesting on thread {thread}: "
                        f"{span['name']!r} overlaps {parent['name']!r} partially"
                    )
            stack.append(span)


def validate_trace_file(path: str) -> List[Dict[str, Any]]:
    """Load a trace file and validate it; returns its events."""
    with open(path) as handle:
        data = json.load(handle)
    events = data["traceEvents"] if isinstance(data, dict) else data
    validate_trace_events(events)
    return events
