"""Plain-text and JSON summaries of collected instrumentation.

:func:`render_profile` is what ``--profile`` prints after a check: a
per-phase timing table (span name, calls, total/self/mean time) followed
by the counters.  :func:`stats_dict` is the machine-readable equivalent
``--stats-json`` writes, with a per-scope (per-site) breakdown so corpus
runs yield one stats block per site.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .core import Instrumentation, SpanStat


def _ms(us: float) -> float:
    return us / 1000.0


def render_profile(obs: Instrumentation, title: str = "Profile") -> str:
    """The ``--profile`` table: per-phase timings, then counters."""
    lines: List[str] = [title, ""]
    totals = obs.span_totals()
    if totals:
        lines.append(
            f"  {'phase':28s} {'calls':>8s} {'total ms':>10s} "
            f"{'self ms':>10s} {'mean ms':>9s} {'max ms':>9s}"
        )
        for name, stat in sorted(
            totals.items(), key=lambda item: item[1].total, reverse=True
        ):
            lines.append(
                f"  {name:28s} {stat.count:8d} {_ms(stat.total):10.2f} "
                f"{_ms(stat.self_total):10.2f} "
                f"{_ms(stat.total / stat.count):9.3f} {_ms(stat.maximum):9.2f}"
            )
    else:
        lines.append("  no spans recorded")
    counters = obs.counter_totals()
    if counters:
        lines.append("")
        lines.append(f"  {'counter':40s} {'value':>12s}")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:40s} {value:12d}")
    histograms = obs.histograms
    if histograms:
        merged: Dict[str, Any] = {}
        for (_scope, name), hist in histograms.items():
            bucket = merged.setdefault(
                name, {"count": 0, "total": 0.0, "max": float("-inf")}
            )
            bucket["count"] += hist.count
            bucket["total"] += hist.total
            bucket["max"] = max(bucket["max"], hist.maximum)
        lines.append("")
        lines.append(f"  {'histogram':28s} {'count':>8s} {'mean':>10s} {'max':>10s}")
        for name, bucket in sorted(merged.items()):
            mean = bucket["total"] / bucket["count"] if bucket["count"] else 0.0
            lines.append(
                f"  {name:28s} {bucket['count']:8d} {mean:10.3f} {bucket['max']:10.3f}"
            )
    if obs.dropped_events:
        lines.append("")
        lines.append(f"  ({obs.dropped_events} events dropped past the retention cap)")
    return "\n".join(lines)


def _span_block(stats: Dict[str, SpanStat]) -> Dict[str, Any]:
    return {name: stat.as_dict() for name, stat in sorted(stats.items())}


def stats_dict(
    obs: Instrumentation, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """JSON-able stats: overall totals plus a per-scope breakdown."""
    scopes: Dict[str, Dict[str, Any]] = {}
    for (scope, name), stat in obs.span_stats.items():
        scopes.setdefault(scope or "<root>", {}).setdefault("spans", {})[
            name
        ] = stat.as_dict()
    for (scope, name), value in obs.counters.items():
        scopes.setdefault(scope or "<root>", {}).setdefault("counters", {})[
            name
        ] = value
    for (scope, name), hist in obs.histograms.items():
        scopes.setdefault(scope or "<root>", {}).setdefault("histograms", {})[
            name
        ] = hist.as_dict()
    payload: Dict[str, Any] = {
        "spans": _span_block(obs.span_totals()),
        "counters": dict(sorted(obs.counter_totals().items())),
        "scopes": {name: scopes[name] for name in sorted(scopes)},
        "dropped_events": obs.dropped_events,
        "event_count": len(obs.events),
    }
    if extra:
        payload.update(extra)
    return payload
