"""Shipping instrumentation across process boundaries (shard merge).

Sharded corpus runs give every worker its own :class:`Instrumentation`;
:func:`snapshot` reduces one to a picklable dict (events as plain tuples,
aggregates as plain numbers) and :func:`merge_shard` folds a snapshot back
into the parent collector.  Counters, histograms and span stats merge by
``(scope, name)`` — worker scopes are site names, so the per-site blocks
of ``--stats-json`` and the ``--profile`` table come out exactly as if
the sites had run in-process.

Merged events land on their own Chrome-trace *thread* (``tid``): a
worker's spans are internally balanced, but two workers overlap in wall
time, and the trace-event validator (correctly) rejects partially
overlapping spans on one thread.  One tid per site keeps every lane
self-consistent and renders parallel corpus runs honestly — overlapping
site lanes in Perfetto mean the sites genuinely ran concurrently.

Worker timestamps are parent-relative: the parent's clock origin rides
along in the task payload and ``time.perf_counter`` is CLOCK_MONOTONIC
system-wide on Linux, so shard events slot into the parent's timeline.
Where that does not hold, timestamps clamp at zero rather than producing
an invalid trace.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .core import Histogram, Instrumentation, SpanStat

#: Snapshot format version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


class ShardEvent:
    """A span/instant replayed from a worker snapshot, pinned to a tid."""

    __slots__ = ("name", "category", "args", "scope", "start", "duration", "tid")

    def __init__(self, name, category, args, scope, start, duration, tid):
        self.name = name
        self.category = category
        self.args = args
        self.scope = scope
        self.start = start
        self.duration = duration
        self.tid = tid


def snapshot(obs: Instrumentation) -> Dict[str, Any]:
    """Reduce a live collector to a picklable shard snapshot."""
    return {
        "version": SNAPSHOT_VERSION,
        "events": [
            (
                event.name,
                event.category,
                dict(event.args),
                event.scope,
                event.start,
                event.duration,
            )
            for event in obs.events
        ],
        "counters": dict(obs.counters),
        "histograms": {
            key: (hist.count, hist.total, hist.minimum, hist.maximum)
            for key, hist in obs.histograms.items()
        },
        "span_stats": {
            key: (stat.count, stat.total, stat.self_total, stat.minimum, stat.maximum)
            for key, stat in obs.span_stats.items()
        },
        "dropped_events": obs.dropped_events,
    }


def merge_shard(
    obs: Instrumentation,
    shard: Dict[str, Any],
    tid: int = 0,
    thread_name: Optional[str] = None,
) -> None:
    """Fold one worker snapshot into the parent collector.

    Aggregates merge by ``(scope, name)``; events append under ``tid``
    (registered in ``obs.thread_names`` so the Chrome-trace export can
    label the lane), subject to the parent's retention cap.
    """
    if shard.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported obs snapshot version {shard.get('version')!r}"
        )
    # A crashed worker can ship a partial snapshot (its task died between
    # building the dict and filling it); missing sections merge as empty
    # rather than killing the parent's aggregation of the healthy shards.
    for name, category, args, scope, start, duration in shard.get("events", ()):
        if len(obs.events) < obs.max_events:
            obs.events.append(
                ShardEvent(
                    name, category, args, scope, max(start, 0.0), duration, tid
                )
            )
        else:
            obs.dropped_events += 1
    for key, value in shard.get("counters", {}).items():
        obs.counters[key] = obs.counters.get(key, 0) + value
    for key, (count, total, minimum, maximum) in shard.get("histograms", {}).items():
        hist = obs.histograms.get(key)
        if hist is None:
            hist = obs.histograms[key] = Histogram()
        hist.count += count
        hist.total += total
        hist.minimum = min(hist.minimum, minimum)
        hist.maximum = max(hist.maximum, maximum)
    for key, (count, total, self_total, minimum, maximum) in shard.get(
        "span_stats", {}
    ).items():
        stat = obs.span_stats.get(key)
        if stat is None:
            stat = obs.span_stats[key] = SpanStat()
        stat.count += count
        stat.total += total
        stat.self_total += self_total
        stat.minimum = min(stat.minimum, minimum)
        stat.maximum = max(stat.maximum, maximum)
    obs.dropped_events += shard.get("dropped_events", 0)
    if thread_name is not None and tid:
        obs.thread_names[tid] = thread_name
