"""Global built-in functions and objects for the mini-JavaScript engine.

``install_builtins`` populates an interpreter's global object with the
standard library subset that real pages' race-prone code touches:
``parseInt``/``parseFloat``/``isNaN``, the ``Math`` object (with *seeded*
``Math.random`` so whole-browser runs stay reproducible), ``String`` /
``Number`` / ``Boolean`` conversion functions, ``Array`` / ``Object`` /
``Error`` constructors, and a ``console`` whose output is captured in a
Python list rather than printed.

Builtins are registered in
:attr:`~repro.js.interpreter.Interpreter.uninstrumented_globals` — reading
``Math`` is not a shared-memory access in the paper's model, and skipping it
keeps traces focused on application state.
"""

from __future__ import annotations

import math
import random
from typing import Any, List, Optional

from .errors import JSErrorValue, JSThrow
from .interpreter import Interpreter, format_number, to_number, to_string
from .values import NULL, UNDEFINED, JSArray, JSObject, NativeFunction


def install_builtins(
    interpreter: Interpreter,
    rng: Optional[random.Random] = None,
    console_log: Optional[List[str]] = None,
) -> List[str]:
    """Install the standard global environment on ``interpreter``.

    Returns the list that captures ``console.log`` output (the passed
    ``console_log`` or a fresh list).
    """
    rng = rng if rng is not None else random.Random(0)
    log: List[str] = console_log if console_log is not None else []
    g = interpreter.global_object

    def define(name: str, value: Any) -> None:
        g.set_own(name, value)
        interpreter.uninstrumented_globals.add(name)

    def native(name: str, fn) -> NativeFunction:
        return NativeFunction(name, fn)

    # -- conversions ---------------------------------------------------
    def js_parse_int(interp, this, args):
        text = to_string(args[0]).strip() if args else ""
        radix = int(to_number(args[1])) if len(args) > 1 and args[1] is not UNDEFINED else 10
        if radix == 0:
            radix = 10
        sign = 1
        if text[:1] in "+-":
            if text[0] == "-":
                sign = -1
            text = text[1:]
        if radix == 16 and text[:2].lower() == "0x":
            text = text[2:]
        digits = ""
        for ch in text:
            try:
                if int(ch, radix) >= 0:
                    digits += ch
            except ValueError:
                break
        if not digits:
            return float("nan")
        return float(sign * int(digits, radix))

    def js_parse_float(interp, this, args):
        text = to_string(args[0]).strip() if args else ""
        matched = ""
        seen_dot = False
        seen_exp = False
        for index, ch in enumerate(text):
            if ch.isdigit():
                matched += ch
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                matched += ch
            elif ch in "eE" and not seen_exp and matched and matched[-1].isdigit():
                seen_exp = True
                matched += ch
            elif ch in "+-" and (index == 0 or matched[-1:] in "eE"):
                matched += ch
            else:
                break
        try:
            return float(matched)
        except ValueError:
            return float("nan")

    define("parseInt", native("parseInt", js_parse_int))
    define("parseFloat", native("parseFloat", js_parse_float))
    define(
        "isNaN",
        native("isNaN", lambda i, t, a: to_number(a[0] if a else UNDEFINED) != to_number(a[0] if a else UNDEFINED)),
    )
    define(
        "isFinite",
        native(
            "isFinite",
            lambda i, t, a: math.isfinite(to_number(a[0] if a else UNDEFINED)),
        ),
    )
    define("NaN", float("nan"))
    define("Infinity", float("inf"))

    define(
        "String",
        native("String", lambda i, t, a: to_string(a[0]) if a else ""),
    )
    define(
        "Number",
        native("Number", lambda i, t, a: to_number(a[0]) if a else 0.0),
    )
    define(
        "Boolean",
        native(
            "Boolean",
            lambda i, t, a: bool(a and _truthy(a[0])),
        ),
    )

    # -- Math ----------------------------------------------------------
    math_obj = JSObject()
    math_obj.set_own("PI", math.pi)
    math_obj.set_own("E", math.e)

    def math_fn(name: str, fn) -> None:
        math_obj.set_own(name, native(name, fn))

    math_fn("floor", lambda i, t, a: float(math.floor(to_number(a[0]))) if a else float("nan"))
    math_fn("ceil", lambda i, t, a: float(math.ceil(to_number(a[0]))) if a else float("nan"))
    math_fn("round", lambda i, t, a: float(math.floor(to_number(a[0]) + 0.5)) if a else float("nan"))
    math_fn("abs", lambda i, t, a: abs(to_number(a[0])) if a else float("nan"))
    math_fn("sqrt", lambda i, t, a: _safe_sqrt(to_number(a[0])) if a else float("nan"))
    math_fn("pow", lambda i, t, a: float(to_number(a[0]) ** to_number(a[1])) if len(a) > 1 else float("nan"))
    math_fn("max", lambda i, t, a: max((to_number(x) for x in a), default=float("-inf")))
    math_fn("min", lambda i, t, a: min((to_number(x) for x in a), default=float("inf")))
    math_fn("random", lambda i, t, a: rng.random())
    define("Math", math_obj)

    # -- constructors ---------------------------------------------------
    def js_array(interp, this, args):
        if len(args) == 1 and isinstance(args[0], float):
            array = JSArray()
            array.set_length(int(args[0]))
            return array
        return JSArray(list(args))

    define("Array", native("Array", js_array))
    define("Object", native("Object", lambda i, t, a: JSObject()))

    def js_error(interp, this, args):
        message = to_string(args[0]) if args else ""
        error = JSObject()
        error.set_own("name", "Error")
        error.set_own("message", message)
        return error

    define("Error", native("Error", js_error))

    # -- console ---------------------------------------------------------
    console = JSObject()

    def console_write(interp, this, args):
        log.append(" ".join(to_string(arg) for arg in args))
        return UNDEFINED

    console.set_own("log", native("log", console_write))
    console.set_own("warn", native("warn", console_write))
    console.set_own("error", native("error", console_write))
    define("console", console)

    # -- misc -------------------------------------------------------------
    def js_throw_error(interp, this, args):
        name = to_string(args[0]) if args else "Error"
        message = to_string(args[1]) if len(args) > 1 else ""
        raise JSThrow(JSErrorValue(name, message))

    define("__throw", native("__throw", js_throw_error))
    return log


def _truthy(value: Any) -> bool:
    from .interpreter import to_boolean

    return to_boolean(value)


def _safe_sqrt(number: float) -> float:
    if number < 0:
        return float("nan")
    return math.sqrt(number)


__all__ = ["install_builtins", "format_number"]
