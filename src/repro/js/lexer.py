"""Tokenizer for the mini-JavaScript engine.

Produces a flat list of :class:`Token` objects from source text.  The token
set covers the JavaScript subset the reproduction needs: the full statement
grammar of ES3-style code (``var``/``function``/control flow/``try``),
string/number/regex-free literals, and the operator inventory real pages'
race-prone code uses (assignment and compound assignment, equality in both
strict and loose flavours, logical/bitwise/arithmetic operators, ``typeof``,
``instanceof``, ``in``, ``new``, ``delete``).

Regex literals are deliberately unsupported — none of the paper's examples
need them and they complicate lexing disproportionately; scripts use string
methods instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import JSSyntaxError

#: Reserved words recognised as distinct token types.
KEYWORDS = frozenset(
    [
        "var",
        "function",
        "return",
        "if",
        "else",
        "while",
        "do",
        "for",
        "break",
        "continue",
        "new",
        "delete",
        "typeof",
        "instanceof",
        "in",
        "this",
        "null",
        "true",
        "false",
        "undefined",
        "try",
        "catch",
        "finally",
        "throw",
        "switch",
        "case",
        "default",
        "void",
    ]
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "===",
    "!==",
    ">>>",
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "!",
    "?",
    ":",
    ".",
    "&",
    "|",
    "^",
    "~",
]

_STRING_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
    "/": "/",
}


def _is_digit(ch: str) -> bool:
    """ASCII digit test (str.isdigit accepts Unicode digits float() rejects)."""
    return "0" <= ch <= "9" if ch else False


@dataclass
class Token:
    """One lexical token.

    ``type`` is one of ``"num"``, ``"str"``, ``"ident"``, ``"punct"``,
    ``"eof"``, or a keyword string from :data:`KEYWORDS`.  ``value`` holds
    the decoded payload (float for numbers, decoded text for strings, the
    identifier/punctuator text otherwise).
    """

    type: str
    value: object
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        """Is this the punctuator ``text``?"""
        return self.type == "punct" and self.value == text

    def __repr__(self) -> str:
        return f"Token({self.type!r}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer with line/column tracking."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        """Tokenize the whole source, appending a final ``eof`` token."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token("eof", None, self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # internals

    def _error(self, message: str) -> JSSyntaxError:
        return JSSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and ``//`` / ``/* */`` comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise JSSyntaxError(
                            "unterminated block comment", start_line, start_col
                        )
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        if _is_digit(ch) or (ch == "." and _is_digit(self._peek(1))):
            return self._read_number()
        if ch in "\"'":
            return self._read_string()
        if ch.isalpha() or ch in "_$":
            return self._read_identifier()
        return self._read_punctuator()

    def _read_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex(self._peek()):
                raise self._error("malformed hex literal")
            while self._is_hex(self._peek()):
                self._advance()
            text = self.source[start : self.pos]
            return Token("num", float(int(text, 16)), line, column)
        while _is_digit(self._peek()):
            self._advance()
        if self._peek() == ".":
            self._advance()
            while _is_digit(self._peek()):
                self._advance()
        if self._peek() in ("e", "E"):
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if not _is_digit(self._peek()):
                raise self._error("malformed exponent")
            while _is_digit(self._peek()):
                self._advance()
        text = self.source[start : self.pos]
        return Token("num", float(text), line, column)

    @staticmethod
    def _is_hex(ch: str) -> bool:
        return bool(ch) and ch in "0123456789abcdefABCDEF"

    def _read_string(self) -> Token:
        line, column = self.line, self.column
        quote = self._peek()
        self._advance()
        parts: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise JSSyntaxError("unterminated string literal", line, column)
            if ch == "\n":
                raise JSSyntaxError("newline in string literal", line, column)
            if ch == quote:
                self._advance()
                return Token("str", "".join(parts), line, column)
            if ch == "\\":
                self._advance()
                esc = self._peek()
                if esc == "u":
                    self._advance()
                    hex_digits = self.source[self.pos : self.pos + 4]
                    if len(hex_digits) < 4 or not all(
                        self._is_hex(d) for d in hex_digits
                    ):
                        raise self._error("malformed unicode escape")
                    parts.append(chr(int(hex_digits, 16)))
                    self._advance(4)
                elif esc == "x":
                    self._advance()
                    hex_digits = self.source[self.pos : self.pos + 2]
                    if len(hex_digits) < 2 or not all(
                        self._is_hex(d) for d in hex_digits
                    ):
                        raise self._error("malformed hex escape")
                    parts.append(chr(int(hex_digits, 16)))
                    self._advance(2)
                elif esc in _STRING_ESCAPES:
                    parts.append(_STRING_ESCAPES[esc])
                    self._advance()
                else:
                    # Unknown escapes keep the escaped character, per spec.
                    parts.append(esc)
                    self._advance()
            else:
                parts.append(ch)
                self._advance()

    def _read_identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while True:
            ch = self._peek()
            if ch and (ch.isalnum() or ch in "_$"):
                self._advance()
            else:
                break
        text = self.source[start : self.pos]
        if text in KEYWORDS:
            return Token(text, text, line, column)
        return Token("ident", text, line, column)

    def _read_punctuator(self) -> Token:
        line, column = self.line, self.column
        for punct in _PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token("punct", punct, line, column)
        raise self._error(f"unexpected character {self._peek()!r}")


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source).tokenize()
