"""Error types for the mini-JavaScript engine.

The engine distinguishes two failure channels:

* :class:`JSSyntaxError` — raised by the lexer/parser while turning source
  text into an AST.  Scripts that fail to parse never execute at all.

* :class:`JSThrow` — the Python carrier for a *JavaScript-level* exception
  (``throw`` statements and runtime errors such as calling ``undefined``).
  Crucially for the paper's race semantics (Sections 2.3/2.4), a ``JSThrow``
  that escapes a script aborts only the remainder of that script: every heap
  and DOM mutation performed before the throw persists.  The browser layer
  catches escaping throws, records them as "hidden crashes", and continues
  with the next operation, just as real browsers hide most JavaScript errors
  from the user.
"""

from __future__ import annotations

from typing import Any, Optional


class JSSyntaxError(Exception):
    """Source text could not be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    tooling can point at the problem.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.raw_message = message
        self.line = line
        self.column = column


class JSThrow(Exception):
    """Python-level carrier for a thrown JavaScript value.

    ``value`` is the JS value being thrown — commonly a :class:`JSErrorValue`
    but any value is legal (``throw 42`` is valid JavaScript).
    """

    def __init__(self, value: Any):
        super().__init__(_describe(value))
        self.value = value


class JSErrorValue:
    """A JavaScript error object (``TypeError``, ``ReferenceError``, ...).

    Implemented as a plain host value rather than a full ``JSObject`` to keep
    the error path allocation-light; scripts can still read ``name`` and
    ``message`` properties through the host-object protocol in the
    interpreter.
    """

    def __init__(self, name: str, message: str):
        self.name = name
        self.message = message

    def __repr__(self) -> str:
        return f"{self.name}: {self.message}"


def type_error(message: str) -> JSThrow:
    """Build a throwable JS ``TypeError``."""
    return JSThrow(JSErrorValue("TypeError", message))


def reference_error(message: str) -> JSThrow:
    """Build a throwable JS ``ReferenceError``.

    This is the error produced by a *function race* victim: invoking a
    function whose declaring script has not been parsed yet (paper,
    Section 2.4).
    """
    return JSThrow(JSErrorValue("ReferenceError", message))


def range_error(message: str) -> JSThrow:
    """Build a throwable JS ``RangeError``."""
    return JSThrow(JSErrorValue("RangeError", message))


def _describe(value: Any) -> str:
    if isinstance(value, JSErrorValue):
        return repr(value)
    return f"JS exception: {value!r}"


class ScriptCrash:
    """Record of a JavaScript exception that escaped to the browser.

    These are the paper's "hidden crashes": the user never sees them, the
    page keeps running, but state mutated before the crash persists
    (Section 2.3).  ``operation`` is the operation id that was executing;
    ``error`` is the escaped JS value.
    """

    def __init__(self, operation: Optional[int], error: Any, where: str = ""):
        self.operation = operation
        self.error = error
        self.where = where

    @property
    def kind(self) -> str:
        """The JS error class name, or ``"value"`` for non-error throws."""
        if isinstance(self.error, JSErrorValue):
            return self.error.name
        return "value"

    def __repr__(self) -> str:
        return f"ScriptCrash(op={self.operation}, error={self.error!r}, where={self.where!r})"
