"""Lexical scopes and hoisting for the mini-JavaScript engine.

JavaScript has *function-level* ``var`` scoping: every ``var`` and every
function declaration anywhere in a function body is hoisted to the top of
that function.  Function declarations are additionally *initialized* at
hoist time — the property the paper's memory model leans on when it treats
``function foo() {...}`` as a write of an anonymous function to a local
variable ``foo`` placed at the beginning of the scope (Section 4.1).  That
initialization order is exactly what makes *function races* (Section 2.4)
possible: a script that has not yet been parsed has not yet performed the
hoisted write, so calling the function from a timer raises a
``ReferenceError``.

Two scope flavours exist:

* :class:`Scope` — ordinary function/catch scopes backed by
  :class:`~repro.js.values.Cell` bindings (closures capture cells).
* :class:`ObjectScope` — the global scope, backed by a ``JSObject`` so that
  global variables and properties of the global object alias each other
  (``x`` and ``window.x`` are the same location).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from . import ast
from .values import UNDEFINED, Cell, JSObject


class Scope:
    """A function-level scope holding :class:`Cell` bindings."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.cells = {}

    def declare(self, name: str, value: Any = UNDEFINED) -> Cell:
        """Declare ``name`` in this scope (no-op if already declared).

        Returns the binding cell.  Re-declaring keeps the existing cell and
        value, matching ``var x; var x;`` semantics.
        """
        cell = self.cells.get(name)
        if cell is None:
            cell = Cell(name, value)
            self.cells[name] = cell
        return cell

    def resolve(self, name: str) -> Optional[Cell]:
        """Find the cell binding ``name``, walking outward; None if unbound."""
        scope: Optional[Scope] = self
        while scope is not None:
            if isinstance(scope, ObjectScope):
                return scope.resolve(name)
            cell = scope.cells.get(name)
            if cell is not None:
                return cell
            scope = scope.parent
        return None

    def resolve_local(self, name: str) -> Optional[Cell]:
        """Cell bound in *this* scope only, or None."""
        return self.cells.get(name)

    def global_scope(self) -> "ObjectScope":
        """The ObjectScope at the root of the chain."""
        scope: Scope = self
        while scope.parent is not None:
            scope = scope.parent
        if not isinstance(scope, ObjectScope):
            raise RuntimeError("scope chain has no global ObjectScope root")
        return scope


class ObjectScope(Scope):
    """The global scope: bindings live as properties of a ``JSObject``.

    ``resolve`` returns ``None`` here; the interpreter detects the global
    scope and performs an instrumented *property* access on
    :attr:`backing_object` instead, so that global-variable reads/writes and
    explicit ``window.x`` accesses hit the same ``JSVar`` location.
    """

    def __init__(self, backing_object: JSObject):
        super().__init__(parent=None)
        self.backing_object = backing_object

    def declare(self, name: str, value: Any = UNDEFINED) -> Cell:
        """Ensure a global property exists (without clobbering)."""
        if not self.backing_object.has_own(name):
            self.backing_object.set_own(name, value)
        # Return a throwaway cell for interface compatibility; global reads
        # and writes never go through cells.
        return Cell(name, value)

    def resolve(self, name: str) -> Optional[Cell]:
        """Always None: globals go through instrumented property access."""
        return None

    def has_global(self, name: str) -> bool:
        """Is the name bound on the global object?"""
        return self.backing_object.has(name)


def hoisted_declarations(
    body: Iterable[ast.Node],
) -> Tuple[List[str], List[ast.FunctionDeclaration]]:
    """Collect hoisted ``var`` names and function declarations from a body.

    Walks statements recursively but does *not* descend into nested function
    bodies (their declarations hoist to their own scope).  Returns the var
    names in first-appearance order and the function declarations in source
    order (later declarations shadow earlier ones when names collide, as in
    real JavaScript).
    """
    var_names: List[str] = []
    seen = set()
    functions: List[ast.FunctionDeclaration] = []

    def note_var(name: str) -> None:
        if name not in seen:
            seen.add(name)
            var_names.append(name)

    def walk(node: ast.Node) -> None:
        if node is None:
            return
        if isinstance(node, ast.VariableDeclaration):
            for name, _init in node.declarations:
                note_var(name)
        elif isinstance(node, ast.FunctionDeclaration):
            functions.append(node)
        elif isinstance(node, ast.BlockStatement):
            for child in node.body:
                walk(child)
        elif isinstance(node, ast.IfStatement):
            walk(node.consequent)
            walk(node.alternate)
        elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
            walk(node.body)
        elif isinstance(node, ast.ForStatement):
            walk(node.init)
            walk(node.body)
        elif isinstance(node, ast.ForInStatement):
            if node.declares:
                note_var(node.name)
            walk(node.body)
        elif isinstance(node, ast.TryStatement):
            walk(node.block)
            walk(node.catch_block)
            walk(node.finally_block)
        elif isinstance(node, ast.SwitchStatement):
            for case in node.cases:
                for child in case.body:
                    walk(child)
        # Expression statements and leaves declare nothing.

    for statement in body:
        walk(statement)
    return var_names, functions
