"""Recursive-descent parser for the mini-JavaScript engine.

Consumes the token stream from :mod:`repro.js.lexer` and builds the AST of
:mod:`repro.js.ast`.  Expression parsing uses precedence climbing with the
standard JavaScript operator table.  Automatic semicolon insertion is
supported in the pragmatic form real pages rely on: a statement may end at a
``}``, at end-of-input, or at a line break before the next token.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import JSSyntaxError
from .lexer import Token, tokenize

#: Binary operator precedence, higher binds tighter.  Mirrors ECMA-262.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "instanceof": 7,
    "in": 7,
    "<<": 8,
    ">>": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGNMENT_OPERATORS = frozenset(
    ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="]
)


class Parser:
    """Parses a token list into a :class:`repro.js.ast.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        #: When parsing a ``for (init ...`` head, the ``in`` operator must
        #: not be consumed as a binary operator; this flag suppresses it.
        self._no_in = False

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.type != "eof":
            self.pos += 1
        return token

    def _at_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _at_keyword(self, word: str) -> bool:
        return self._peek().type == word

    def _eat_punct(self, text: str) -> bool:
        if self._at_punct(text):
            self._next()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise self._error(f"expected {text!r}, found {token.value!r}")
        return self._next()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if token.type != word:
            raise self._error(f"expected {word!r}, found {token.value!r}")
        return self._next()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type != "ident":
            raise self._error(f"expected identifier, found {token.value!r}")
        self._next()
        return token.value

    def _error(self, message: str) -> JSSyntaxError:
        token = self._peek()
        return JSSyntaxError(message, token.line, token.column)

    def _line_break_before(self) -> bool:
        """True if a newline separates the previous token from the next."""
        if self.pos == 0:
            return False
        return self._peek().line > self.tokens[self.pos - 1].line

    def _consume_semicolon(self) -> None:
        """Consume ``;`` or apply automatic semicolon insertion."""
        if self._eat_punct(";"):
            return
        token = self._peek()
        if token.type == "eof" or token.is_punct("}"):
            return
        if self._line_break_before():
            return
        raise self._error(f"expected ';', found {token.value!r}")

    # ------------------------------------------------------------------
    # program & statements

    def parse_program(self) -> ast.Program:
        """Parse the whole token stream into a Program."""
        body: List[ast.Node] = []
        first = self._peek()
        while self._peek().type != "eof":
            body.append(self.parse_statement())
        return ast.Program(line=first.line, body=body)

    def parse_statement(self) -> ast.Node:
        """Parse one statement."""
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_punct(";"):
            self._next()
            return ast.EmptyStatement(line=token.line)
        dispatch = {
            "var": self._parse_var,
            "function": self._parse_function_declaration,
            "if": self._parse_if,
            "while": self._parse_while,
            "do": self._parse_do_while,
            "for": self._parse_for,
            "return": self._parse_return,
            "break": self._parse_break,
            "continue": self._parse_continue,
            "throw": self._parse_throw,
            "try": self._parse_try,
            "switch": self._parse_switch,
        }
        handler = dispatch.get(token.type)
        if handler is not None:
            return handler()
        expression = self.parse_expression()
        self._consume_semicolon()
        return ast.ExpressionStatement(line=token.line, expression=expression)

    def _parse_block(self) -> ast.BlockStatement:
        start = self._expect_punct("{")
        body: List[ast.Node] = []
        while not self._at_punct("}"):
            if self._peek().type == "eof":
                raise self._error("unterminated block")
            body.append(self.parse_statement())
        self._expect_punct("}")
        return ast.BlockStatement(line=start.line, body=body)

    def _parse_var(self) -> ast.VariableDeclaration:
        start = self._expect_keyword("var")
        declarations = self._parse_var_declarations()
        self._consume_semicolon()
        return ast.VariableDeclaration(line=start.line, declarations=declarations)

    def _parse_var_declarations(
        self,
    ) -> List[Tuple[str, Optional[ast.Node]]]:
        declarations: List[Tuple[str, Optional[ast.Node]]] = []
        while True:
            name = self._expect_ident()
            init: Optional[ast.Node] = None
            if self._eat_punct("="):
                init = self.parse_assignment()
            declarations.append((name, init))
            if not self._eat_punct(","):
                return declarations

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        start = self._expect_keyword("function")
        name = self._expect_ident()
        params, body = self._parse_function_rest()
        return ast.FunctionDeclaration(
            line=start.line, name=name, params=params, body=body
        )

    def _parse_function_rest(self) -> Tuple[List[str], List[ast.Node]]:
        """Parse ``(params) { body }`` shared by declarations/expressions."""
        self._expect_punct("(")
        params: List[str] = []
        if not self._at_punct(")"):
            while True:
                params.append(self._expect_ident())
                if not self._eat_punct(","):
                    break
        self._expect_punct(")")
        block = self._parse_block()
        return params, block.body

    def _parse_if(self) -> ast.IfStatement:
        start = self._expect_keyword("if")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        consequent = self.parse_statement()
        alternate: Optional[ast.Node] = None
        if self._at_keyword("else"):
            self._next()
            alternate = self.parse_statement()
        return ast.IfStatement(
            line=start.line, test=test, consequent=consequent, alternate=alternate
        )

    def _parse_while(self) -> ast.WhileStatement:
        start = self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.WhileStatement(line=start.line, test=test, body=body)

    def _parse_do_while(self) -> ast.DoWhileStatement:
        start = self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        self._consume_semicolon()
        return ast.DoWhileStatement(line=start.line, body=body, test=test)

    def _parse_for(self) -> ast.Node:
        start = self._expect_keyword("for")
        self._expect_punct("(")

        if self._at_keyword("var"):
            self._next()
            # Look ahead for `for (var name in ...)`.
            if (
                self._peek().type == "ident"
                and self._peek(1).type == "in"
            ):
                name = self._expect_ident()
                self._expect_keyword("in")
                obj = self.parse_expression()
                self._expect_punct(")")
                body = self.parse_statement()
                return ast.ForInStatement(
                    line=start.line, name=name, declares=True, object=obj, body=body
                )
            self._no_in = True
            try:
                declarations = self._parse_var_declarations()
            finally:
                self._no_in = False
            init: Optional[ast.Node] = ast.VariableDeclaration(
                line=start.line, declarations=declarations
            )
        elif self._at_punct(";"):
            init = None
        else:
            if self._peek().type == "ident" and self._peek(1).type == "in":
                name = self._expect_ident()
                self._expect_keyword("in")
                obj = self.parse_expression()
                self._expect_punct(")")
                body = self.parse_statement()
                return ast.ForInStatement(
                    line=start.line, name=name, declares=False, object=obj, body=body
                )
            self._no_in = True
            try:
                expr = self.parse_expression()
            finally:
                self._no_in = False
            init = ast.ExpressionStatement(line=start.line, expression=expr)

        self._expect_punct(";")
        test = None if self._at_punct(";") else self.parse_expression()
        self._expect_punct(";")
        update = None if self._at_punct(")") else self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.ForStatement(
            line=start.line, init=init, test=test, update=update, body=body
        )

    def _parse_return(self) -> ast.ReturnStatement:
        start = self._expect_keyword("return")
        argument: Optional[ast.Node] = None
        token = self._peek()
        if (
            not token.is_punct(";")
            and not token.is_punct("}")
            and token.type != "eof"
            and not self._line_break_before()
        ):
            argument = self.parse_expression()
        self._consume_semicolon()
        return ast.ReturnStatement(line=start.line, argument=argument)

    def _parse_break(self) -> ast.BreakStatement:
        start = self._expect_keyword("break")
        self._consume_semicolon()
        return ast.BreakStatement(line=start.line)

    def _parse_continue(self) -> ast.ContinueStatement:
        start = self._expect_keyword("continue")
        self._consume_semicolon()
        return ast.ContinueStatement(line=start.line)

    def _parse_throw(self) -> ast.ThrowStatement:
        start = self._expect_keyword("throw")
        if self._line_break_before():
            raise self._error("newline not allowed after 'throw'")
        argument = self.parse_expression()
        self._consume_semicolon()
        return ast.ThrowStatement(line=start.line, argument=argument)

    def _parse_try(self) -> ast.TryStatement:
        start = self._expect_keyword("try")
        block = self._parse_block()
        catch_param: Optional[str] = None
        catch_block: Optional[ast.Node] = None
        finally_block: Optional[ast.Node] = None
        if self._at_keyword("catch"):
            self._next()
            self._expect_punct("(")
            catch_param = self._expect_ident()
            self._expect_punct(")")
            catch_block = self._parse_block()
        if self._at_keyword("finally"):
            self._next()
            finally_block = self._parse_block()
        if catch_block is None and finally_block is None:
            raise self._error("try requires catch or finally")
        return ast.TryStatement(
            line=start.line,
            block=block,
            catch_param=catch_param,
            catch_block=catch_block,
            finally_block=finally_block,
        )

    def _parse_switch(self) -> ast.SwitchStatement:
        start = self._expect_keyword("switch")
        self._expect_punct("(")
        discriminant = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        seen_default = False
        while not self._at_punct("}"):
            token = self._peek()
            if self._at_keyword("case"):
                self._next()
                test: Optional[ast.Node] = self.parse_expression()
            elif self._at_keyword("default"):
                if seen_default:
                    raise self._error("duplicate default clause")
                seen_default = True
                self._next()
                test = None
            else:
                raise self._error("expected 'case' or 'default'")
            self._expect_punct(":")
            body: List[ast.Node] = []
            while (
                not self._at_punct("}")
                and not self._at_keyword("case")
                and not self._at_keyword("default")
            ):
                body.append(self.parse_statement())
            cases.append(ast.SwitchCase(line=token.line, test=test, body=body))
        self._expect_punct("}")
        return ast.SwitchStatement(
            line=start.line, discriminant=discriminant, cases=cases
        )

    # ------------------------------------------------------------------
    # expressions

    def parse_expression(self) -> ast.Node:
        """Full expression including comma sequences."""
        first = self.parse_assignment()
        if not self._at_punct(","):
            return first
        expressions = [first]
        while self._eat_punct(","):
            expressions.append(self.parse_assignment())
        return ast.SequenceExpression(line=first.line, expressions=expressions)

    def parse_assignment(self) -> ast.Node:
        """Parse an assignment-level expression (no commas)."""
        left = self._parse_conditional()
        token = self._peek()
        if token.type == "punct" and token.value in _ASSIGNMENT_OPERATORS:
            if not isinstance(left, (ast.Identifier, ast.MemberExpression)):
                raise self._error("invalid assignment target")
            self._next()
            value = self.parse_assignment()
            return ast.AssignmentExpression(
                line=token.line, operator=token.value, target=left, value=value
            )
        return left

    def _parse_conditional(self) -> ast.Node:
        test = self._parse_binary(0)
        if not self._at_punct("?"):
            return test
        self._next()
        consequent = self.parse_assignment()
        self._expect_punct(":")
        alternate = self.parse_assignment()
        return ast.ConditionalExpression(
            line=test.line, test=test, consequent=consequent, alternate=alternate
        )

    def _parse_binary(self, min_precedence: int) -> ast.Node:
        left = self._parse_unary()
        while True:
            token = self._peek()
            operator = None
            if token.type == "punct" and token.value in _BINARY_PRECEDENCE:
                operator = token.value
            elif token.type in ("instanceof", "in"):
                if token.type == "in" and self._no_in:
                    return left
                operator = token.type
            if operator is None:
                return left
            precedence = _BINARY_PRECEDENCE[operator]
            if precedence < min_precedence:
                return left
            self._next()
            right = self._parse_binary(precedence + 1)
            if operator in ("&&", "||"):
                left = ast.LogicalExpression(
                    line=token.line, operator=operator, left=left, right=right
                )
            else:
                left = ast.BinaryExpression(
                    line=token.line, operator=operator, left=left, right=right
                )

    def _parse_unary(self) -> ast.Node:
        token = self._peek()
        if token.type == "punct" and token.value in ("-", "+", "!", "~"):
            self._next()
            operand = self._parse_unary()
            return ast.UnaryExpression(
                line=token.line, operator=token.value, operand=operand
            )
        if token.type in ("typeof", "void", "delete"):
            self._next()
            operand = self._parse_unary()
            return ast.UnaryExpression(
                line=token.line, operator=token.type, operand=operand
            )
        if token.type == "punct" and token.value in ("++", "--"):
            self._next()
            operand = self._parse_unary()
            if not isinstance(operand, (ast.Identifier, ast.MemberExpression)):
                raise self._error("invalid increment/decrement target")
            return ast.UpdateExpression(
                line=token.line, operator=token.value, operand=operand, prefix=True
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        expression = self._parse_call()
        token = self._peek()
        if (
            token.type == "punct"
            and token.value in ("++", "--")
            and not self._line_break_before()
        ):
            if not isinstance(expression, (ast.Identifier, ast.MemberExpression)):
                raise self._error("invalid increment/decrement target")
            self._next()
            return ast.UpdateExpression(
                line=token.line,
                operator=token.value,
                operand=expression,
                prefix=False,
            )
        return expression

    def _parse_call(self) -> ast.Node:
        if self._at_keyword("new"):
            token = self._next()
            callee = self._parse_call_no_new_args()
            arguments: List[ast.Node] = []
            if self._at_punct("("):
                arguments = self._parse_arguments()
            expression: ast.Node = ast.NewExpression(
                line=token.line, callee=callee, arguments=arguments
            )
        else:
            expression = self._parse_primary()
        return self._parse_call_tail(expression)

    def _parse_call_no_new_args(self) -> ast.Node:
        """Parse the callee of ``new`` without consuming its argument list."""
        if self._at_keyword("new"):
            token = self._next()
            callee = self._parse_call_no_new_args()
            arguments: List[ast.Node] = []
            if self._at_punct("("):
                arguments = self._parse_arguments()
            return ast.NewExpression(
                line=token.line, callee=callee, arguments=arguments
            )
        expression = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._next()
                name = self._expect_member_name()
                expression = ast.MemberExpression(
                    line=token.line,
                    object=expression,
                    property=ast.StringLiteral(line=token.line, value=name),
                    computed=False,
                )
            elif token.is_punct("["):
                self._next()
                index = self.parse_expression()
                self._expect_punct("]")
                expression = ast.MemberExpression(
                    line=token.line, object=expression, property=index, computed=True
                )
            else:
                return expression

    def _parse_call_tail(self, expression: ast.Node) -> ast.Node:
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._next()
                name = self._expect_member_name()
                expression = ast.MemberExpression(
                    line=token.line,
                    object=expression,
                    property=ast.StringLiteral(line=token.line, value=name),
                    computed=False,
                )
            elif token.is_punct("["):
                self._next()
                index = self.parse_expression()
                self._expect_punct("]")
                expression = ast.MemberExpression(
                    line=token.line, object=expression, property=index, computed=True
                )
            elif token.is_punct("("):
                arguments = self._parse_arguments()
                expression = ast.CallExpression(
                    line=token.line, callee=expression, arguments=arguments
                )
            else:
                return expression

    def _expect_member_name(self) -> str:
        """Member names after ``.`` may be identifiers or keywords."""
        token = self._peek()
        if token.type == "ident" or token.type in (
            "delete",
            "typeof",
            "new",
            "in",
            "instanceof",
            "this",
            "return",
            "case",
            "default",
            "catch",
            "continue",
            "do",
            "else",
            "false",
            "true",
            "null",
            "undefined",
            "var",
            "void",
            "while",
            "function",
            "if",
            "for",
            "switch",
            "throw",
            "try",
            "break",
            "finally",
        ):
            self._next()
            return str(token.value)
        raise self._error(f"expected property name, found {token.value!r}")

    def _parse_arguments(self) -> List[ast.Node]:
        self._expect_punct("(")
        arguments: List[ast.Node] = []
        if not self._at_punct(")"):
            while True:
                arguments.append(self.parse_assignment())
                if not self._eat_punct(","):
                    break
        self._expect_punct(")")
        return arguments

    def _parse_primary(self) -> ast.Node:
        token = self._peek()
        if token.type == "num":
            self._next()
            return ast.NumberLiteral(line=token.line, value=token.value)
        if token.type == "str":
            self._next()
            return ast.StringLiteral(line=token.line, value=token.value)
        if token.type == "ident":
            self._next()
            return ast.Identifier(line=token.line, name=token.value)
        if token.type in ("true", "false"):
            self._next()
            return ast.BooleanLiteral(line=token.line, value=token.type == "true")
        if token.type == "null":
            self._next()
            return ast.NullLiteral(line=token.line)
        if token.type == "undefined":
            self._next()
            return ast.UndefinedLiteral(line=token.line)
        if token.type == "this":
            self._next()
            return ast.ThisExpression(line=token.line)
        if token.type == "function":
            return self._parse_function_expression()
        if token.is_punct("("):
            self._next()
            expression = self.parse_expression()
            self._expect_punct(")")
            return expression
        if token.is_punct("["):
            return self._parse_array_literal()
        if token.is_punct("{"):
            return self._parse_object_literal()
        raise self._error(f"unexpected token {token.value!r}")

    def _parse_function_expression(self) -> ast.FunctionExpression:
        start = self._expect_keyword("function")
        name: Optional[str] = None
        if self._peek().type == "ident":
            name = self._expect_ident()
        params, body = self._parse_function_rest()
        return ast.FunctionExpression(
            line=start.line, name=name, params=params, body=body
        )

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        start = self._expect_punct("[")
        elements: List[ast.Node] = []
        while not self._at_punct("]"):
            if self._at_punct(","):
                # Elision: `[1, , 3]` leaves an undefined hole.
                self._next()
                elements.append(ast.UndefinedLiteral(line=start.line))
                continue
            elements.append(self.parse_assignment())
            if not self._eat_punct(","):
                break
        self._expect_punct("]")
        return ast.ArrayLiteral(line=start.line, elements=elements)

    def _parse_object_literal(self) -> ast.ObjectLiteral:
        start = self._expect_punct("{")
        properties: List[Tuple[str, ast.Node]] = []
        while not self._at_punct("}"):
            token = self._peek()
            if token.type in ("ident", "str"):
                key = str(token.value)
                self._next()
            elif token.type == "num":
                key = _number_to_key(token.value)
                self._next()
            elif token.type in ("default", "in", "new", "delete", "this", "for",
                                "if", "function", "var", "return", "typeof",
                                "true", "false", "null", "undefined", "case",
                                "catch", "continue", "do", "else", "finally",
                                "instanceof", "switch", "throw", "try", "void",
                                "while", "break"):
                key = str(token.value)
                self._next()
            else:
                raise self._error(f"invalid property key {token.value!r}")
            self._expect_punct(":")
            value = self.parse_assignment()
            properties.append((key, value))
            if not self._eat_punct(","):
                break
        self._expect_punct("}")
        return ast.ObjectLiteral(line=start.line, properties=properties)


def _number_to_key(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def parse(source: str) -> ast.Program:
    """Parse ``source`` text into a :class:`repro.js.ast.Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Node:
    """Parse a single expression (used by tests and the REPL helper)."""
    parser = Parser(tokenize(source))
    expression = parser.parse_expression()
    token = parser._peek()
    if token.type != "eof":
        raise JSSyntaxError(
            f"unexpected trailing token {token.value!r}", token.line, token.column
        )
    return expression
