"""Runtime values for the mini-JavaScript engine.

The value universe is deliberately small and explicit:

* numbers are Python ``float``, strings Python ``str``, booleans ``bool``;
* ``undefined`` / ``null`` are the singletons :data:`UNDEFINED` / :data:`NULL`;
* objects are :class:`JSObject` (arrays are :class:`JSArray`);
* functions are :class:`JSFunction` (script-defined) or
  :class:`NativeFunction` (host-provided);
* browser objects (DOM nodes, ``window``, timers, XHR) are *host objects*
  implementing the :class:`HostObject` protocol so they can route property
  accesses through the paper's logical-memory instrumentation.

Every :class:`JSObject` carries a unique ``object_id``.  Together with a
property name it forms the ``JSVar`` logical location of the paper's memory
model (Section 4.1): the "concrete runtime memory address" of an object
property.  Closure cells likewise carry unique ``cell_id``s for shared local
variables.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

_object_ids = itertools.count(1)
_cell_ids = itertools.count(1)


def next_object_id() -> int:
    """Allocate a fresh object identity (unique within the process)."""
    return next(_object_ids)


def next_cell_id() -> int:
    """Allocate a fresh variable-cell identity (unique within the process)."""
    return next(_cell_ids)


def reset_value_ids() -> None:
    """Restart object/cell allocation at 1 (a fresh page's id space).

    Called per :class:`~repro.browser.page.Browser` so a page's allocation
    ids depend only on the page and its seed — never on how many pages the
    process ran before it.  That is what lets sharded corpus workers
    reproduce a sequential run's ids exactly.
    """
    global _object_ids, _cell_ids
    _object_ids = itertools.count(1)
    _cell_ids = itertools.count(1)


class _Undefined:
    """The ``undefined`` value.  A singleton; compare with ``is``."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


class _Null:
    """The ``null`` value.  A singleton; compare with ``is``."""

    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()
NULL = _Null()


class JSObject:
    """A plain JavaScript object: a property map plus optional prototype.

    Property reads walk the prototype chain; writes always land on the
    receiver (own property), matching JavaScript assignment semantics.
    """

    def __init__(self, prototype: Optional["JSObject"] = None):
        self.object_id = next_object_id()
        self.properties: Dict[str, Any] = {}
        self.prototype = prototype

    # The interpreter performs gets/sets itself so it can instrument them;
    # these helpers implement the raw (un-instrumented) semantics.

    def get_own(self, name: str) -> Any:
        """Own property value, or undefined."""
        return self.properties.get(name, UNDEFINED)

    def has_own(self, name: str) -> bool:
        """Own-property check."""
        return name in self.properties

    def lookup(self, name: str) -> Any:
        """Prototype-chain lookup; ``undefined`` when absent everywhere."""
        obj: Optional[JSObject] = self
        while obj is not None:
            if name in obj.properties:
                return obj.properties[name]
            obj = obj.prototype
        return UNDEFINED

    def has(self, name: str) -> bool:
        """Prototype-chain property check."""
        obj: Optional[JSObject] = self
        while obj is not None:
            if name in obj.properties:
                return True
            obj = obj.prototype
        return False

    def set_own(self, name: str, value: Any) -> None:
        """Write an own property."""
        self.properties[name] = value

    def delete(self, name: str) -> bool:
        """Delete an own property; False if absent."""
        if name in self.properties:
            del self.properties[name]
            return True
        return False

    def own_keys(self) -> List[str]:
        """Own property names in insertion order."""
        return list(self.properties.keys())

    def __repr__(self) -> str:
        return f"JSObject#{self.object_id}({len(self.properties)} props)"


class JSArray(JSObject):
    """A JavaScript array.

    Elements are stored as numeric-string properties plus a live ``length``,
    so element accesses flow through the same instrumented property path as
    any other ``JSVar`` access — exactly the paper's treatment of "array
    element" locations (Section 4.1).
    """

    def __init__(self, elements: Optional[List[Any]] = None):
        super().__init__()
        self._length = 0
        if elements:
            for element in elements:
                self.push(element)

    @property
    def length(self) -> int:
        """Current array length."""
        return self._length

    def set_length(self, new_length: int) -> None:
        """Assign length (truncates element slots when shrinking)."""
        new_length = int(new_length)
        if new_length < self._length:
            for index in range(new_length, self._length):
                self.properties.pop(str(index), None)
        self._length = new_length

    def push(self, value: Any) -> int:
        """Append; returns the new length."""
        self.properties[str(self._length)] = value
        self._length += 1
        return self._length

    def pop(self) -> Any:
        """Remove and return the last element (undefined when empty)."""
        if self._length == 0:
            return UNDEFINED
        self._length -= 1
        return self.properties.pop(str(self._length), UNDEFINED)

    def element_updated(self, name: str) -> None:
        """Grow ``length`` after a write to a numeric index property."""
        if name.isdigit():
            index = int(name)
            if index >= self._length:
                self._length = index + 1

    def to_list(self) -> List[Any]:
        """Elements as a Python list (holes become undefined)."""
        return [self.properties.get(str(i), UNDEFINED) for i in range(self._length)]

    def __repr__(self) -> str:
        return f"JSArray#{self.object_id}(len={self._length})"


class JSFunction(JSObject):
    """A script-defined function: parameters, body, and captured scope."""

    def __init__(self, name: Optional[str], params: List[str], body: list, scope):
        super().__init__()
        self.name = name or ""
        self.params = params
        self.body = body
        self.scope = scope

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"JSFunction#{self.object_id}({label})"


class NativeFunction(JSObject):
    """A host (Python) function exposed to scripts.

    ``fn`` receives ``(interpreter, this, args)`` and returns a JS value.
    """

    def __init__(self, name: str, fn: Callable):
        super().__init__()
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"NativeFunction({self.name})"


class BoundMethod(JSObject):
    """A native function pre-bound to a receiver (``element.focus`` etc.)."""

    def __init__(self, name: str, receiver: Any, fn: Callable):
        super().__init__()
        self.name = name
        self.receiver = receiver
        self.fn = fn

    def __repr__(self) -> str:
        return f"BoundMethod({self.name})"


class HostObject:
    """Protocol base for browser-provided objects (DOM nodes, window, ...).

    Host objects control their own property semantics and are responsible
    for emitting the paper's *logical* memory accesses (``HElem``, ``Eloc``,
    DOM-attribute ``JSVar`` writes) from inside :meth:`js_get` /
    :meth:`js_set`.  The interpreter routes ``obj.prop`` reads and writes
    here whenever ``obj`` is a :class:`HostObject`.
    """

    def js_get(self, name: str, interpreter) -> Any:
        """Host-controlled property read."""
        raise NotImplementedError

    def js_set(self, name: str, value: Any, interpreter) -> None:
        """Host-controlled property write."""
        raise NotImplementedError

    def js_has(self, name: str) -> bool:
        """`in` support."""
        return False

    def js_delete(self, name: str) -> bool:
        """`delete` support."""
        return False

    def js_keys(self) -> List[str]:
        """Keys for for-in enumeration."""
        return []


def is_callable(value: Any) -> bool:
    """True when ``value`` can be invoked as a function."""
    return isinstance(value, (JSFunction, NativeFunction, BoundMethod))


class Cell:
    """A mutable variable binding with a stable identity.

    Closures capture cells, so two operations touching the same captured
    local variable touch the same ``cell_id`` — the paper's "local variables
    shared between operations via a closure" case (Section 4.1).
    """

    __slots__ = ("cell_id", "name", "value")

    def __init__(self, name: str, value: Any = UNDEFINED):
        self.cell_id = next_cell_id()
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"Cell#{self.cell_id}({self.name}={self.value!r})"
