"""AST node definitions for the mini-JavaScript engine.

Plain dataclasses, one per grammar production.  Every node carries the
``line`` of its first token for error reporting.  The interpreter walks
these directly (no bytecode stage) — mirroring the paper's WebRacer, which
instrumented WebKit's *interpreter* (the JIT was disabled, Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, compare=False)


# ----------------------------------------------------------------------
# Expressions


@dataclass
class NumberLiteral(Node):
    """A numeric literal."""
    value: float = 0.0


@dataclass
class StringLiteral(Node):
    """A string literal."""
    value: str = ""


@dataclass
class BooleanLiteral(Node):
    """``true`` / ``false``."""
    value: bool = False


@dataclass
class NullLiteral(Node):
    """``null``."""
    pass


@dataclass
class UndefinedLiteral(Node):
    """``undefined``."""
    pass


@dataclass
class Identifier(Node):
    """A variable reference."""
    name: str = ""


@dataclass
class ThisExpression(Node):
    """``this``."""
    pass


@dataclass
class ArrayLiteral(Node):
    """``[a, b, ...]``."""
    elements: List[Node] = field(default_factory=list)


@dataclass
class ObjectLiteral(Node):
    """``{key: value, ...}``."""

    #: (key, value) pairs; keys are already plain strings.
    properties: List[Tuple[str, Node]] = field(default_factory=list)


@dataclass
class FunctionExpression(Node):
    """``function name?(params) { body }`` as a value."""
    name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class MemberExpression(Node):
    """``object.property`` (``computed=False``) or ``object[expr]``."""

    object: Node = None
    property: Node = None
    computed: bool = False


@dataclass
class CallExpression(Node):
    """``callee(args...)``."""
    callee: Node = None
    arguments: List[Node] = field(default_factory=list)


@dataclass
class NewExpression(Node):
    """``new callee(args...)``."""
    callee: Node = None
    arguments: List[Node] = field(default_factory=list)


@dataclass
class UnaryExpression(Node):
    """Prefix operators: ``- + ! ~ typeof void delete``."""

    operator: str = ""
    operand: Node = None


@dataclass
class UpdateExpression(Node):
    """``++x``, ``x++``, ``--x``, ``x--``."""

    operator: str = ""
    operand: Node = None
    prefix: bool = True


@dataclass
class BinaryExpression(Node):
    """A non-short-circuit binary operator application."""
    operator: str = ""
    left: Node = None
    right: Node = None


@dataclass
class LogicalExpression(Node):
    """``&&`` / ``||`` with short-circuit evaluation."""

    operator: str = ""
    left: Node = None
    right: Node = None


@dataclass
class AssignmentExpression(Node):
    """``target op= value``; ``operator`` is ``=`` or a compound form."""

    operator: str = "="
    target: Node = None
    value: Node = None


@dataclass
class ConditionalExpression(Node):
    """``test ? consequent : alternate``."""
    test: Node = None
    consequent: Node = None
    alternate: Node = None


@dataclass
class SequenceExpression(Node):
    """Comma expressions: ``a, b, c`` evaluates all, yields the last."""

    expressions: List[Node] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements


@dataclass
class Program(Node):
    """A whole script: a list of top-level statements."""
    body: List[Node] = field(default_factory=list)


@dataclass
class ExpressionStatement(Node):
    """An expression evaluated for effect."""
    expression: Node = None


@dataclass
class VariableDeclaration(Node):
    """``var a = 1, b;``."""

    #: (name, initializer-or-None) pairs for ``var a = 1, b;``
    declarations: List[Tuple[str, Optional[Node]]] = field(default_factory=list)


@dataclass
class FunctionDeclaration(Node):
    """``function name(params) { body }`` (hoisted)."""
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class BlockStatement(Node):
    """``{ ... }``."""
    body: List[Node] = field(default_factory=list)


@dataclass
class IfStatement(Node):
    """``if (test) consequent else alternate``."""
    test: Node = None
    consequent: Node = None
    alternate: Optional[Node] = None


@dataclass
class WhileStatement(Node):
    """``while (test) body``."""
    test: Node = None
    body: Node = None


@dataclass
class DoWhileStatement(Node):
    """``do body while (test);``."""
    body: Node = None
    test: Node = None


@dataclass
class ForStatement(Node):
    """``for (init; test; update) body``."""
    init: Optional[Node] = None
    test: Optional[Node] = None
    update: Optional[Node] = None
    body: Node = None


@dataclass
class ForInStatement(Node):
    """``for (var? name in object) body``."""

    name: str = ""
    declares: bool = False
    object: Node = None
    body: Node = None


@dataclass
class ReturnStatement(Node):
    """``return argument?;``."""
    argument: Optional[Node] = None


@dataclass
class BreakStatement(Node):
    """``break;``."""
    pass


@dataclass
class ContinueStatement(Node):
    """``continue;``."""
    pass


@dataclass
class ThrowStatement(Node):
    """``throw argument;``."""
    argument: Node = None


@dataclass
class TryStatement(Node):
    """``try/catch/finally``."""
    block: Node = None
    catch_param: Optional[str] = None
    catch_block: Optional[Node] = None
    finally_block: Optional[Node] = None


@dataclass
class SwitchCase(Node):
    """One ``case test:`` or ``default:`` clause."""

    #: ``None`` test marks the ``default:`` clause.
    test: Optional[Node] = None
    body: List[Node] = field(default_factory=list)


@dataclass
class SwitchStatement(Node):
    """``switch (discriminant) { cases }``."""
    discriminant: Node = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class EmptyStatement(Node):
    """A bare ``;``."""
    pass
