"""Mini-JavaScript engine substrate.

A from-scratch lexer, parser, and tree-walking interpreter for the
JavaScript subset exercised by the paper's race examples.  Every shared
memory access (closure cells, globals, object properties) is reported to an
:class:`~repro.js.interpreter.AccessHooks` sink so the browser layer can map
it onto the paper's ``JSVar`` logical locations.

Quick use::

    from repro.js import evaluate
    assert evaluate("1 + 2") == 3.0
"""

from __future__ import annotations

from typing import Any, Optional

from .builtins import install_builtins
from .errors import JSErrorValue, JSSyntaxError, JSThrow, ScriptCrash
from .interpreter import (
    AccessHooks,
    BudgetExceeded,
    Interpreter,
    format_number,
    js_typeof,
    to_boolean,
    to_number,
    to_string,
)
from .lexer import Lexer, Token, tokenize
from .parser import Parser, parse, parse_expression
from .values import (
    NULL,
    UNDEFINED,
    BoundMethod,
    Cell,
    HostObject,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    is_callable,
)


def evaluate(source: str, interpreter: Optional[Interpreter] = None) -> Any:
    """Parse and run ``source``; return the value of its last statement.

    A convenience for tests and quick experiments — creates a throwaway
    interpreter with the standard builtins unless one is supplied.
    """
    if interpreter is None:
        interpreter = Interpreter()
        install_builtins(interpreter)
    return interpreter.run(parse(source))


__all__ = [
    "AccessHooks",
    "BoundMethod",
    "BudgetExceeded",
    "Cell",
    "HostObject",
    "Interpreter",
    "JSArray",
    "JSErrorValue",
    "JSFunction",
    "JSObject",
    "JSSyntaxError",
    "JSThrow",
    "Lexer",
    "NULL",
    "NativeFunction",
    "Parser",
    "ScriptCrash",
    "Token",
    "UNDEFINED",
    "evaluate",
    "format_number",
    "install_builtins",
    "is_callable",
    "js_typeof",
    "parse",
    "parse_expression",
    "to_boolean",
    "to_number",
    "to_string",
    "tokenize",
]
