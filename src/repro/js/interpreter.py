"""Tree-walking interpreter for the mini-JavaScript engine.

The interpreter evaluates the AST of :mod:`repro.js.ast` directly.  Its one
unusual feature is *instrumentation*: every read and write of a potentially
shared JavaScript location — a closure cell, a global, or an object
property — is reported to an :class:`AccessHooks` sink.  The browser layer
installs a sink that translates these raw events into the paper's ``JSVar``
logical locations (Section 4.1) and feeds the race detector.

Design notes
------------

* Control flow (``break``/``continue``/``return``) uses private Python
  exception classes; JS exceptions travel as
  :class:`~repro.js.errors.JSThrow`.
* Host objects (DOM nodes, ``window``, XHR, ...) implement the
  :class:`~repro.js.values.HostObject` protocol and instrument themselves;
  the interpreter simply routes member accesses to them.
* A step budget guards against runaway scripts in generated workloads; the
  browser treats budget exhaustion like any other script crash.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from . import ast
from .errors import JSThrow, reference_error, type_error
from .scope import ObjectScope, Scope, hoisted_declarations
from .values import (
    NULL,
    UNDEFINED,
    BoundMethod,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    HostObject,
    is_callable,
)


class BudgetExceeded(Exception):
    """Raised when a script exceeds the interpreter's step budget."""


class AccessHooks:
    """Instrumentation sink; the default implementation records nothing.

    ``is_call`` marks reads that resolve an identifier in order to invoke
    it; ``is_function_decl`` marks the hoisted write of a function
    declaration; ``writes_function`` marks any write whose value is
    callable.  The race classifier uses these to tell *function races*
    (paper, Section 2.4) apart from plain variable races.
    """

    def var_read(self, cell_id: int, name: str, is_call: bool = False) -> None:
        """A closure/local variable cell was read."""

    def var_write(
        self,
        cell_id: int,
        name: str,
        is_function_decl: bool = False,
        writes_function: bool = False,
    ) -> None:
        """A closure/local variable cell was written."""

    def prop_read(self, object_id: int, name: str, is_call: bool = False) -> None:
        """A property of an ordinary JS object was read."""

    def prop_write(
        self,
        object_id: int,
        name: str,
        is_function_decl: bool = False,
        writes_function: bool = False,
    ) -> None:
        """A property of an ordinary JS object was written."""


NULL_HOOKS = AccessHooks()


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any):
        super().__init__()
        self.value = value


class Interpreter:
    """Evaluates programs and functions against a shared global object.

    Parameters
    ----------
    global_object:
        The ``JSObject`` whose properties are the global variables.
    hooks:
        Instrumentation sink for shared-memory accesses.
    this_value:
        Default ``this`` for top-level code and unbound calls (the browser
        passes its ``window`` host object here).
    max_steps:
        Per-``run`` step budget; ``None`` disables the guard.
    """

    def __init__(
        self,
        global_object: Optional[JSObject] = None,
        hooks: Optional[AccessHooks] = None,
        this_value: Any = None,
        max_steps: Optional[int] = 2_000_000,
    ):
        self.global_object = global_object if global_object is not None else JSObject()
        self.global_scope = ObjectScope(self.global_object)
        self.hooks = hooks if hooks is not None else NULL_HOOKS
        self.this_value = this_value if this_value is not None else self.global_object
        self.max_steps = max_steps
        self._steps = 0
        #: Scope-lookup names that should not be instrumented as global
        #: reads — host-global fallbacks like ``document`` handled by the
        #: browser bindings.  Populated by the bindings layer.
        self.uninstrumented_globals: set = set()

    # ------------------------------------------------------------------
    # public API

    def run(self, program: ast.Program) -> Any:
        """Execute a program in the global scope; returns the last value."""
        self._steps = 0
        return self.execute_body(program.body, self.global_scope, self.this_value)

    def execute_body(self, body: List[ast.Node], scope: Scope, this: Any) -> Any:
        """Hoist declarations into ``scope`` then execute ``body``."""
        self._hoist(body, scope)
        result: Any = UNDEFINED
        for statement in body:
            result = self._exec(statement, scope, this)
        return result

    def call_function(self, fn: Any, this: Any, args: List[Any]) -> Any:
        """Invoke a JS value as a function (used by event dispatch/timers)."""
        return self._invoke(fn, this, args, line=0)

    def reset_budget(self) -> None:
        """Reset the step budget (one budget per script/handler)."""
        self._steps = 0

    # ------------------------------------------------------------------
    # hoisting

    def _hoist(self, body: List[ast.Node], scope: Scope) -> None:
        """Apply `var` and function hoisting to ``scope``.

        Function declarations perform an *instrumented write* of the
        function value at hoist time — the paper's model of function
        declarations as writes to a scope-initial local variable
        (Section 4.1).  This write is what a function race races against.
        """
        var_names, functions = hoisted_declarations(body)
        for name in var_names:
            if isinstance(scope, ObjectScope):
                if not self.global_object.has_own(name):
                    self.global_object.set_own(name, UNDEFINED)
            else:
                scope.declare(name)
        for declaration in functions:
            fn = JSFunction(
                declaration.name, declaration.params, declaration.body, scope
            )
            if not isinstance(scope, ObjectScope):
                scope.declare(declaration.name)
            self._write_variable(scope, declaration.name, fn, is_function_decl=True)

    # ------------------------------------------------------------------
    # statement execution

    def _exec(self, node: ast.Node, scope: Scope, this: Any) -> Any:
        self._tick()
        method = self._STATEMENTS.get(type(node))
        if method is None:
            return self._eval(node, scope, this)
        return method(self, node, scope, this)

    def _exec_expression_statement(
        self, node: ast.ExpressionStatement, scope: Scope, this: Any
    ) -> Any:
        return self._eval(node.expression, scope, this)

    def _exec_var(self, node: ast.VariableDeclaration, scope: Scope, this: Any) -> Any:
        for name, init in node.declarations:
            if init is not None:
                value = self._eval(init, scope, this)
                self._write_variable(scope, name, value)
        return UNDEFINED

    def _exec_function_declaration(
        self, node: ast.FunctionDeclaration, scope: Scope, this: Any
    ) -> Any:
        # Already handled at hoist time.
        return UNDEFINED

    def _exec_block(self, node: ast.BlockStatement, scope: Scope, this: Any) -> Any:
        result: Any = UNDEFINED
        for statement in node.body:
            result = self._exec(statement, scope, this)
        return result

    def _exec_if(self, node: ast.IfStatement, scope: Scope, this: Any) -> Any:
        if to_boolean(self._eval(node.test, scope, this)):
            return self._exec(node.consequent, scope, this)
        if node.alternate is not None:
            return self._exec(node.alternate, scope, this)
        return UNDEFINED

    def _exec_while(self, node: ast.WhileStatement, scope: Scope, this: Any) -> Any:
        while to_boolean(self._eval(node.test, scope, this)):
            try:
                self._exec(node.body, scope, this)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_do_while(
        self, node: ast.DoWhileStatement, scope: Scope, this: Any
    ) -> Any:
        while True:
            try:
                self._exec(node.body, scope, this)
            except _Break:
                break
            except _Continue:
                pass
            if not to_boolean(self._eval(node.test, scope, this)):
                break
        return UNDEFINED

    def _exec_for(self, node: ast.ForStatement, scope: Scope, this: Any) -> Any:
        if node.init is not None:
            self._exec(node.init, scope, this)
        while node.test is None or to_boolean(self._eval(node.test, scope, this)):
            try:
                self._exec(node.body, scope, this)
            except _Break:
                break
            except _Continue:
                pass
            if node.update is not None:
                self._eval(node.update, scope, this)
        return UNDEFINED

    def _exec_for_in(self, node: ast.ForInStatement, scope: Scope, this: Any) -> Any:
        obj = self._eval(node.object, scope, this)
        if node.declares and not isinstance(scope, ObjectScope):
            scope.declare(node.name)
        keys: List[str]
        if isinstance(obj, JSArray):
            keys = [str(i) for i in range(obj.length)]
        elif isinstance(obj, JSObject):
            keys = obj.own_keys()
        elif isinstance(obj, HostObject):
            keys = obj.js_keys()
        else:
            keys = []
        for key in keys:
            self._write_variable(scope, node.name, key)
            try:
                self._exec(node.body, scope, this)
            except _Break:
                break
            except _Continue:
                continue
        return UNDEFINED

    def _exec_return(self, node: ast.ReturnStatement, scope: Scope, this: Any) -> Any:
        value = (
            UNDEFINED
            if node.argument is None
            else self._eval(node.argument, scope, this)
        )
        raise _Return(value)

    def _exec_break(self, node: ast.BreakStatement, scope: Scope, this: Any) -> Any:
        raise _Break()

    def _exec_continue(
        self, node: ast.ContinueStatement, scope: Scope, this: Any
    ) -> Any:
        raise _Continue()

    def _exec_throw(self, node: ast.ThrowStatement, scope: Scope, this: Any) -> Any:
        raise JSThrow(self._eval(node.argument, scope, this))

    def _exec_try(self, node: ast.TryStatement, scope: Scope, this: Any) -> Any:
        try:
            self._exec(node.block, scope, this)
        except JSThrow as thrown:
            if node.catch_block is not None:
                catch_scope = Scope(parent=scope)
                catch_scope.declare(node.catch_param, thrown.value)
                try:
                    self._exec(node.catch_block, catch_scope, this)
                finally:
                    if node.finally_block is not None:
                        self._exec(node.finally_block, scope, this)
                return UNDEFINED
            if node.finally_block is not None:
                self._exec(node.finally_block, scope, this)
            raise
        else:
            if node.finally_block is not None:
                self._exec(node.finally_block, scope, this)
            return UNDEFINED

    def _exec_switch(self, node: ast.SwitchStatement, scope: Scope, this: Any) -> Any:
        value = self._eval(node.discriminant, scope, this)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if strict_equals(value, self._eval(case.test, scope, this)):
                        matched = True
                if matched:
                    for statement in case.body:
                        self._exec(statement, scope, this)
            if not matched:
                # Fall back to the default clause (and fall through after).
                run = False
                for case in node.cases:
                    if case.test is None:
                        run = True
                    if run:
                        for statement in case.body:
                            self._exec(statement, scope, this)
        except _Break:
            pass
        return UNDEFINED

    def _exec_empty(self, node: ast.EmptyStatement, scope: Scope, this: Any) -> Any:
        return UNDEFINED

    # ------------------------------------------------------------------
    # expression evaluation

    def _eval(self, node: ast.Node, scope: Scope, this: Any) -> Any:
        self._tick()
        method = self._EXPRESSIONS.get(type(node))
        if method is None:
            raise type_error(f"cannot evaluate node {type(node).__name__}")
        return method(self, node, scope, this)

    def _eval_number(self, node: ast.NumberLiteral, scope: Scope, this: Any) -> Any:
        return node.value

    def _eval_string(self, node: ast.StringLiteral, scope: Scope, this: Any) -> Any:
        return node.value

    def _eval_boolean(self, node: ast.BooleanLiteral, scope: Scope, this: Any) -> Any:
        return node.value

    def _eval_null(self, node: ast.NullLiteral, scope: Scope, this: Any) -> Any:
        return NULL

    def _eval_undefined(
        self, node: ast.UndefinedLiteral, scope: Scope, this: Any
    ) -> Any:
        return UNDEFINED

    def _eval_this(self, node: ast.ThisExpression, scope: Scope, this: Any) -> Any:
        return this

    def _eval_identifier(self, node: ast.Identifier, scope: Scope, this: Any) -> Any:
        return self._read_variable(scope, node.name, node.line)

    def _eval_array(self, node: ast.ArrayLiteral, scope: Scope, this: Any) -> Any:
        return JSArray([self._eval(element, scope, this) for element in node.elements])

    def _eval_object(self, node: ast.ObjectLiteral, scope: Scope, this: Any) -> Any:
        obj = JSObject()
        for key, value_node in node.properties:
            obj.set_own(key, self._eval(value_node, scope, this))
        return obj

    def _eval_function_expression(
        self, node: ast.FunctionExpression, scope: Scope, this: Any
    ) -> Any:
        if node.name:
            # Named function expressions bind their own name inside.
            inner = Scope(parent=scope)
            fn = JSFunction(node.name, node.params, node.body, inner)
            inner.declare(node.name, fn)
            return fn
        return JSFunction(None, node.params, node.body, scope)

    def _eval_member(self, node: ast.MemberExpression, scope: Scope, this: Any) -> Any:
        obj = self._eval(node.object, scope, this)
        name = self._member_name(node, scope, this)
        return self.get_member(obj, name, node.line)

    def _eval_call(self, node: ast.CallExpression, scope: Scope, this: Any) -> Any:
        callee = node.callee
        if isinstance(callee, ast.MemberExpression):
            receiver = self._eval(callee.object, scope, this)
            name = self._member_name(callee, scope, this)
            fn = self.get_member(receiver, name, callee.line)
            args = [self._eval(arg, scope, this) for arg in node.arguments]
            return self._invoke(fn, receiver, args, node.line, name=name)
        if isinstance(callee, ast.Identifier):
            fn = self._read_variable(scope, callee.name, callee.line, is_call=True)
            args = [self._eval(arg, scope, this) for arg in node.arguments]
            return self._invoke(fn, self.this_value, args, node.line, name=callee.name)
        fn = self._eval(callee, scope, this)
        args = [self._eval(arg, scope, this) for arg in node.arguments]
        return self._invoke(fn, self.this_value, args, node.line, name=None)

    def _eval_new(self, node: ast.NewExpression, scope: Scope, this: Any) -> Any:
        fn = self._eval(node.callee, scope, this)
        args = [self._eval(arg, scope, this) for arg in node.arguments]
        return self.construct(fn, args, node.line)

    def _eval_unary(self, node: ast.UnaryExpression, scope: Scope, this: Any) -> Any:
        operator = node.operator
        if operator == "typeof":
            return self._typeof_operand(node.operand, scope, this)
        if operator == "delete":
            return self._delete_operand(node.operand, scope, this)
        value = self._eval(node.operand, scope, this)
        if operator == "-":
            return -to_number(value)
        if operator == "+":
            return to_number(value)
        if operator == "!":
            return not to_boolean(value)
        if operator == "~":
            return float(~to_int32(value))
        if operator == "void":
            return UNDEFINED
        raise type_error(f"unknown unary operator {operator!r}")

    def _typeof_operand(self, operand: ast.Node, scope: Scope, this: Any) -> str:
        if isinstance(operand, ast.Identifier):
            # `typeof undeclared` must not throw.
            try:
                value = self._read_variable(scope, operand.name, operand.line)
            except JSThrow:
                return "undefined"
        else:
            value = self._eval(operand, scope, this)
        return js_typeof(value)

    def _delete_operand(self, operand: ast.Node, scope: Scope, this: Any) -> bool:
        if not isinstance(operand, ast.MemberExpression):
            return True
        obj = self._eval(operand.object, scope, this)
        name = self._member_name(operand, scope, this)
        if isinstance(obj, HostObject):
            return obj.js_delete(name)
        if isinstance(obj, JSObject):
            self.hooks.prop_write(obj.object_id, name)
            return obj.delete(name)
        return True

    def _eval_update(self, node: ast.UpdateExpression, scope: Scope, this: Any) -> Any:
        delta = 1.0 if node.operator == "++" else -1.0
        old = to_number(self._read_target(node.operand, scope, this))
        new = old + delta
        self._write_target(node.operand, new, scope, this)
        return new if node.prefix else old

    def _eval_binary(self, node: ast.BinaryExpression, scope: Scope, this: Any) -> Any:
        operator = node.operator
        if operator == "instanceof":
            left = self._eval(node.left, scope, this)
            right = self._eval(node.right, scope, this)
            return self._instanceof(left, right)
        if operator == "in":
            left = self._eval(node.left, scope, this)
            right = self._eval(node.right, scope, this)
            key = to_string(left)
            if isinstance(right, HostObject):
                return right.js_has(key)
            if isinstance(right, JSArray):
                return key.isdigit() and int(key) < right.length or right.has(key)
            if isinstance(right, JSObject):
                return right.has(key)
            raise type_error("'in' requires an object")
        left = self._eval(node.left, scope, this)
        right = self._eval(node.right, scope, this)
        return apply_binary(operator, left, right)

    def _eval_logical(
        self, node: ast.LogicalExpression, scope: Scope, this: Any
    ) -> Any:
        left = self._eval(node.left, scope, this)
        if node.operator == "&&":
            if not to_boolean(left):
                return left
            return self._eval(node.right, scope, this)
        if to_boolean(left):
            return left
        return self._eval(node.right, scope, this)

    def _eval_assignment(
        self, node: ast.AssignmentExpression, scope: Scope, this: Any
    ) -> Any:
        if node.operator == "=":
            value = self._eval(node.value, scope, this)
        else:
            current = self._read_target(node.target, scope, this)
            operand = self._eval(node.value, scope, this)
            value = apply_binary(node.operator[:-1], current, operand)
        self._write_target(node.target, value, scope, this)
        return value

    def _eval_conditional(
        self, node: ast.ConditionalExpression, scope: Scope, this: Any
    ) -> Any:
        if to_boolean(self._eval(node.test, scope, this)):
            return self._eval(node.consequent, scope, this)
        return self._eval(node.alternate, scope, this)

    def _eval_sequence(
        self, node: ast.SequenceExpression, scope: Scope, this: Any
    ) -> Any:
        result: Any = UNDEFINED
        for expression in node.expressions:
            result = self._eval(expression, scope, this)
        return result

    # ------------------------------------------------------------------
    # variables (instrumented)

    def _read_variable(
        self, scope: Scope, name: str, line: int, is_call: bool = False
    ) -> Any:
        cell = scope.resolve(name)
        if cell is not None:
            self.hooks.var_read(cell.cell_id, name, is_call=is_call)
            return cell.value
        # Global lookup: an instrumented property read on the global object.
        if self.global_object.has(name):
            if name not in self.uninstrumented_globals:
                self.hooks.prop_read(
                    self.global_object.object_id, name, is_call=is_call
                )
            return self.global_object.lookup(name)
        if name not in self.uninstrumented_globals:
            # A failed lookup is still a read of the (future) global — the
            # racing access of a function race (Section 2.4).
            self.hooks.prop_read(self.global_object.object_id, name, is_call=is_call)
        raise reference_error(f"{name} is not defined")

    def _write_variable(
        self,
        scope: Scope,
        name: str,
        value: Any,
        is_function_decl: bool = False,
    ) -> None:
        writes_function = is_callable(value)
        cell = scope.resolve(name)
        if cell is not None:
            self.hooks.var_write(
                cell.cell_id,
                name,
                is_function_decl=is_function_decl,
                writes_function=writes_function,
            )
            cell.value = value
            return
        # Undeclared or global: an (instrumented) write on the global object.
        if name not in self.uninstrumented_globals:
            self.hooks.prop_write(
                self.global_object.object_id,
                name,
                is_function_decl=is_function_decl,
                writes_function=writes_function,
            )
        self.global_object.set_own(name, value)

    def _member_name(
        self, node: ast.MemberExpression, scope: Scope, this: Any
    ) -> str:
        if node.computed:
            return to_string(self._eval(node.property, scope, this))
        return node.property.value

    def _read_target(self, target: ast.Node, scope: Scope, this: Any) -> Any:
        if isinstance(target, ast.Identifier):
            try:
                return self._read_variable(scope, target.name, target.line)
            except JSThrow:
                return UNDEFINED
        if isinstance(target, ast.MemberExpression):
            obj = self._eval(target.object, scope, this)
            name = self._member_name(target, scope, this)
            return self.get_member(obj, name, target.line)
        raise type_error("invalid assignment target")

    def _write_target(
        self, target: ast.Node, value: Any, scope: Scope, this: Any
    ) -> None:
        if isinstance(target, ast.Identifier):
            self._write_variable(scope, target.name, value)
            return
        if isinstance(target, ast.MemberExpression):
            obj = self._eval(target.object, scope, this)
            name = self._member_name(target, scope, this)
            self.set_member(obj, name, value, target.line)
            return
        raise type_error("invalid assignment target")

    # ------------------------------------------------------------------
    # member access (instrumented)

    def get_member(self, obj: Any, name: str, line: int = 0) -> Any:
        """Instrumented ``obj[name]`` read covering all receiver kinds."""
        if obj is UNDEFINED or obj is NULL:
            raise type_error(
                f"cannot read property {name!r} of {js_typeof(obj)}"
            )
        if isinstance(obj, HostObject):
            return obj.js_get(name, self)
        if isinstance(obj, str):
            return string_member(obj, name)
        if isinstance(obj, JSArray):
            self.hooks.prop_read(obj.object_id, name)
            if name == "length":
                return float(obj.length)
            method = array_member(obj, name)
            if method is not None:
                return method
            return obj.lookup(name)
        if isinstance(obj, JSFunction):
            if name == "prototype":
                if not obj.has_own("prototype"):
                    obj.set_own("prototype", JSObject())
                return obj.get_own("prototype")
            if name in ("call", "apply"):
                return function_member(obj, name)
            self.hooks.prop_read(obj.object_id, name)
            return obj.lookup(name)
        if isinstance(obj, JSObject):
            self.hooks.prop_read(obj.object_id, name)
            return obj.lookup(name)
        if isinstance(obj, bool):
            return UNDEFINED
        if isinstance(obj, float):
            return number_member(obj, name)
        # Fallback for unexpected host values (e.g. JSErrorValue).
        attr = getattr(obj, name, None)
        if attr is not None and not callable(attr):
            return attr
        return UNDEFINED

    def set_member(self, obj: Any, name: str, value: Any, line: int = 0) -> None:
        """Instrumented ``obj[name] = value`` write."""
        if obj is UNDEFINED or obj is NULL:
            raise type_error(
                f"cannot set property {name!r} of {js_typeof(obj)}"
            )
        if isinstance(obj, HostObject):
            obj.js_set(name, value, self)
            return
        if isinstance(obj, JSArray):
            self.hooks.prop_write(obj.object_id, name)
            if name == "length":
                obj.set_length(int(to_number(value)))
                return
            obj.set_own(name, value)
            obj.element_updated(name)
            return
        if isinstance(obj, JSObject):
            self.hooks.prop_write(obj.object_id, name)
            obj.set_own(name, value)
            return
        # Writes to primitives silently vanish (non-strict mode).

    # ------------------------------------------------------------------
    # calls

    def _invoke(
        self,
        fn: Any,
        this: Any,
        args: List[Any],
        line: int,
        name: Optional[str] = None,
    ) -> Any:
        label = name or getattr(fn, "name", None) or "expression"
        if isinstance(fn, NativeFunction):
            return fn.fn(self, this, args)
        if isinstance(fn, BoundMethod):
            return fn.fn(self, fn.receiver, args)
        if isinstance(fn, JSFunction):
            return self._call_js_function(fn, this, args)
        raise type_error(f"{label} is not a function")

    def _call_js_function(self, fn: JSFunction, this: Any, args: List[Any]) -> Any:
        scope = Scope(parent=fn.scope)
        for index, param in enumerate(fn.params):
            scope.declare(param, args[index] if index < len(args) else UNDEFINED)
        scope.declare("arguments", JSArray(list(args)))
        try:
            self.execute_body(fn.body, scope, this)
        except _Return as ret:
            return ret.value
        return UNDEFINED

    def construct(self, fn: Any, args: List[Any], line: int = 0) -> Any:
        """Implement ``new fn(...)``."""
        if isinstance(fn, NativeFunction):
            # Native constructors (Date, XMLHttpRequest, ...) build their own
            # instances.
            return fn.fn(self, UNDEFINED, args)
        if not isinstance(fn, JSFunction):
            raise type_error("constructor is not a function")
        if not fn.has_own("prototype"):
            fn.set_own("prototype", JSObject())
        prototype = fn.get_own("prototype")
        instance = JSObject(
            prototype=prototype if isinstance(prototype, JSObject) else None
        )
        result = self._call_js_function(fn, instance, args)
        if isinstance(result, JSObject):
            return result
        return instance

    def _instanceof(self, value: Any, fn: Any) -> bool:
        if not isinstance(fn, JSFunction):
            raise type_error("right-hand side of instanceof is not callable")
        prototype = fn.get_own("prototype")
        if not isinstance(prototype, JSObject):
            return False
        obj = value.prototype if isinstance(value, JSObject) else None
        while obj is not None:
            if obj is prototype:
                return True
            obj = obj.prototype
        return False

    # ------------------------------------------------------------------
    # budget

    def _tick(self) -> None:
        if self.max_steps is None:
            return
        self._steps += 1
        if self._steps > self.max_steps:
            raise BudgetExceeded(f"script exceeded {self.max_steps} steps")

    # Dispatch tables are built after the class body below.
    _STATEMENTS: Dict[type, Callable] = {}
    _EXPRESSIONS: Dict[type, Callable] = {}


Interpreter._STATEMENTS = {
    ast.ExpressionStatement: Interpreter._exec_expression_statement,
    ast.VariableDeclaration: Interpreter._exec_var,
    ast.FunctionDeclaration: Interpreter._exec_function_declaration,
    ast.BlockStatement: Interpreter._exec_block,
    ast.IfStatement: Interpreter._exec_if,
    ast.WhileStatement: Interpreter._exec_while,
    ast.DoWhileStatement: Interpreter._exec_do_while,
    ast.ForStatement: Interpreter._exec_for,
    ast.ForInStatement: Interpreter._exec_for_in,
    ast.ReturnStatement: Interpreter._exec_return,
    ast.BreakStatement: Interpreter._exec_break,
    ast.ContinueStatement: Interpreter._exec_continue,
    ast.ThrowStatement: Interpreter._exec_throw,
    ast.TryStatement: Interpreter._exec_try,
    ast.SwitchStatement: Interpreter._exec_switch,
    ast.EmptyStatement: Interpreter._exec_empty,
}

Interpreter._EXPRESSIONS = {
    ast.NumberLiteral: Interpreter._eval_number,
    ast.StringLiteral: Interpreter._eval_string,
    ast.BooleanLiteral: Interpreter._eval_boolean,
    ast.NullLiteral: Interpreter._eval_null,
    ast.UndefinedLiteral: Interpreter._eval_undefined,
    ast.ThisExpression: Interpreter._eval_this,
    ast.Identifier: Interpreter._eval_identifier,
    ast.ArrayLiteral: Interpreter._eval_array,
    ast.ObjectLiteral: Interpreter._eval_object,
    ast.FunctionExpression: Interpreter._eval_function_expression,
    ast.MemberExpression: Interpreter._eval_member,
    ast.CallExpression: Interpreter._eval_call,
    ast.NewExpression: Interpreter._eval_new,
    ast.UnaryExpression: Interpreter._eval_unary,
    ast.UpdateExpression: Interpreter._eval_update,
    ast.BinaryExpression: Interpreter._eval_binary,
    ast.LogicalExpression: Interpreter._eval_logical,
    ast.AssignmentExpression: Interpreter._eval_assignment,
    ast.ConditionalExpression: Interpreter._eval_conditional,
    ast.SequenceExpression: Interpreter._eval_sequence,
}


# ----------------------------------------------------------------------
# conversions & operators


def js_typeof(value: Any) -> str:
    """The ``typeof`` operator."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if is_callable(value):
        return "function"
    return "object"


def to_boolean(value: Any) -> bool:
    """JS ToBoolean."""
    if isinstance(value, bool):
        return value
    if value is UNDEFINED or value is NULL:
        return False
    if isinstance(value, float):
        return value != 0.0 and value == value  # NaN is falsy
    if isinstance(value, str):
        return len(value) > 0
    return True


def to_number(value: Any) -> float:
    """JS ToNumber."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is UNDEFINED:
        return float("nan")
    if value is NULL:
        return 0.0
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.startswith(("0x", "0X")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return float("nan")
    if isinstance(value, JSArray):
        if value.length == 0:
            return 0.0
        if value.length == 1:
            return to_number(value.properties.get("0", UNDEFINED))
        return float("nan")
    return float("nan")


def to_int32(value: Any) -> int:
    """JS ToInt32 (for bitwise operators)."""
    number = to_number(value)
    if number != number or number in (float("inf"), float("-inf")):
        return 0
    result = int(number) & 0xFFFFFFFF
    if result >= 0x80000000:
        result -= 0x100000000
    return result


def to_string(value: Any) -> str:
    """JS ToString."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "null"
    if isinstance(value, JSArray):
        return ",".join(
            "" if (v is UNDEFINED or v is NULL) else to_string(v)
            for v in value.to_list()
        )
    if isinstance(value, (JSFunction, NativeFunction, BoundMethod)):
        name = getattr(value, "name", "") or "anonymous"
        return f"function {name}() {{ [code] }}"
    if isinstance(value, JSObject):
        return "[object Object]"
    return str(value)


def format_number(number: float) -> str:
    """Format a float the way JavaScript prints numbers (42 not 42.0)."""
    if number != number:
        return "NaN"
    if number == float("inf"):
        return "Infinity"
    if number == float("-inf"):
        return "-Infinity"
    if number == int(number) and abs(number) < 1e21:
        return str(int(number))
    return repr(number)


def strict_equals(left: Any, right: Any) -> bool:
    """The ``===`` operator."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, float) and isinstance(right, float):
        return left == right  # NaN !== NaN falls out naturally
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    return left is right


def loose_equals(left: Any, right: Any) -> bool:
    """The ``==`` operator with its coercion ladder."""
    if (left is UNDEFINED or left is NULL) and (right is UNDEFINED or right is NULL):
        return True
    if left is UNDEFINED or left is NULL or right is UNDEFINED or right is NULL:
        return False
    if isinstance(left, bool):
        return loose_equals(to_number(left), right)
    if isinstance(right, bool):
        return loose_equals(left, to_number(right))
    if isinstance(left, float) and isinstance(right, str):
        return left == to_number(right)
    if isinstance(left, str) and isinstance(right, float):
        return to_number(left) == right
    if isinstance(left, (float, str)) and isinstance(right, JSObject):
        return loose_equals(left, to_primitive(right))
    if isinstance(left, JSObject) and isinstance(right, (float, str)):
        return loose_equals(to_primitive(left), right)
    return strict_equals(left, right)


def to_primitive(value: Any) -> Any:
    """JS ToPrimitive (string-preferring, simplified)."""
    if isinstance(value, JSObject):
        return to_string(value)
    return value


def apply_binary(operator: str, left: Any, right: Any) -> Any:
    """Evaluate a (non-short-circuit) binary operator."""
    if operator == "+":
        left_p = to_primitive(left)
        right_p = to_primitive(right)
        if isinstance(left_p, str) or isinstance(right_p, str):
            return to_string(left_p) + to_string(right_p)
        return to_number(left_p) + to_number(right_p)
    if operator == "-":
        return to_number(left) - to_number(right)
    if operator == "*":
        return to_number(left) * to_number(right)
    if operator == "/":
        denominator = to_number(right)
        numerator = to_number(left)
        if denominator == 0.0:
            if numerator != numerator or numerator == 0.0:
                return float("nan")
            return float("inf") if numerator > 0 else float("-inf")
        return numerator / denominator
    if operator == "%":
        denominator = to_number(right)
        numerator = to_number(left)
        if (
            denominator == 0.0
            or numerator != numerator
            or denominator != denominator
            or numerator in (float("inf"), float("-inf"))
        ):
            return float("nan")
        import math

        return math.fmod(numerator, denominator)
    if operator in ("<", ">", "<=", ">="):
        left_p = to_primitive(left)
        right_p = to_primitive(right)
        if isinstance(left_p, str) and isinstance(right_p, str):
            pair = (left_p, right_p)
        else:
            pair = (to_number(left_p), to_number(right_p))
            if pair[0] != pair[0] or pair[1] != pair[1]:
                return False
        if operator == "<":
            return pair[0] < pair[1]
        if operator == ">":
            return pair[0] > pair[1]
        if operator == "<=":
            return pair[0] <= pair[1]
        return pair[0] >= pair[1]
    if operator == "==":
        return loose_equals(left, right)
    if operator == "!=":
        return not loose_equals(left, right)
    if operator == "===":
        return strict_equals(left, right)
    if operator == "!==":
        return not strict_equals(left, right)
    if operator == "&":
        return float(to_int32(left) & to_int32(right))
    if operator == "|":
        return float(to_int32(left) | to_int32(right))
    if operator == "^":
        return float(to_int32(left) ^ to_int32(right))
    if operator == "<<":
        return float(to_int32(to_int32(left) << (to_int32(right) & 31)))
    if operator == ">>":
        return float(to_int32(left) >> (to_int32(right) & 31))
    if operator == ">>>":
        return float((to_int32(left) & 0xFFFFFFFF) >> (to_int32(right) & 31))
    raise type_error(f"unknown binary operator {operator!r}")


# ----------------------------------------------------------------------
# primitive members (string/number/array/function methods)


def string_member(text: str, name: str) -> Any:
    """Property access on a string primitive."""
    if name == "length":
        return float(len(text))
    if name.isdigit():
        index = int(name)
        return text[index] if index < len(text) else UNDEFINED
    method = _STRING_METHODS.get(name)
    if method is None:
        return UNDEFINED
    return BoundMethod(name, text, method)


def _string_index_of(interp, text, args):
    needle = to_string(args[0]) if args else "undefined"
    start = int(to_number(args[1])) if len(args) > 1 else 0
    return float(text.find(needle, max(start, 0)))


def _string_last_index_of(interp, text, args):
    needle = to_string(args[0]) if args else "undefined"
    return float(text.rfind(needle))


def _string_char_at(interp, text, args):
    index = int(to_number(args[0])) if args else 0
    return text[index] if 0 <= index < len(text) else ""


def _string_char_code_at(interp, text, args):
    index = int(to_number(args[0])) if args else 0
    return float(ord(text[index])) if 0 <= index < len(text) else float("nan")


def _string_substring(interp, text, args):
    start = int(to_number(args[0])) if args else 0
    end = int(to_number(args[1])) if len(args) > 1 else len(text)
    start = min(max(start, 0), len(text))
    end = min(max(end, 0), len(text))
    if start > end:
        start, end = end, start
    return text[start:end]


def _string_substr(interp, text, args):
    start = int(to_number(args[0])) if args else 0
    if start < 0:
        start = max(len(text) + start, 0)
    count = int(to_number(args[1])) if len(args) > 1 else len(text) - start
    return text[start : start + max(count, 0)]


def _string_slice(interp, text, args):
    start = int(to_number(args[0])) if args else 0
    end = int(to_number(args[1])) if len(args) > 1 else len(text)
    return text[slice(*_normalize_slice(start, end, len(text)))]


def _normalize_slice(start: int, end: int, length: int):
    if start < 0:
        start = max(length + start, 0)
    if end < 0:
        end = max(length + end, 0)
    return min(start, length), min(end, length)


def _string_split(interp, text, args):
    if not args or args[0] is UNDEFINED:
        return JSArray([text])
    separator = to_string(args[0])
    if separator == "":
        return JSArray(list(text))
    return JSArray(text.split(separator))


def _string_replace(interp, text, args):
    if len(args) < 2:
        return text
    pattern = to_string(args[0])
    replacement = to_string(args[1])
    return text.replace(pattern, replacement, 1)


def _string_to_lower(interp, text, args):
    return text.lower()


def _string_to_upper(interp, text, args):
    return text.upper()


def _string_trim(interp, text, args):
    return text.strip()


def _string_concat(interp, text, args):
    return text + "".join(to_string(arg) for arg in args)


_STRING_METHODS = {
    "indexOf": _string_index_of,
    "lastIndexOf": _string_last_index_of,
    "charAt": _string_char_at,
    "charCodeAt": _string_char_code_at,
    "substring": _string_substring,
    "substr": _string_substr,
    "slice": _string_slice,
    "split": _string_split,
    "replace": _string_replace,
    "toLowerCase": _string_to_lower,
    "toUpperCase": _string_to_upper,
    "trim": _string_trim,
    "concat": _string_concat,
}


def number_member(number: float, name: str) -> Any:
    """Property access on a number primitive."""
    if name == "toFixed":
        def to_fixed(interp, receiver, args):
            digits = int(to_number(args[0])) if args else 0
            return f"{receiver:.{digits}f}"

        return BoundMethod(name, number, to_fixed)
    if name == "toString":
        return BoundMethod(
            name, number, lambda interp, receiver, args: format_number(receiver)
        )
    return UNDEFINED


def array_member(array: JSArray, name: str) -> Any:
    """Array method lookup; None when not a method."""
    method = _ARRAY_METHODS.get(name)
    if method is None:
        return None
    return BoundMethod(name, array, method)


def _array_push(interp, array, args):
    for arg in args:
        interp.hooks.prop_write(array.object_id, str(array.length))
        array.push(arg)
    return float(array.length)


def _array_pop(interp, array, args):
    if array.length:
        interp.hooks.prop_write(array.object_id, str(array.length - 1))
    return array.pop()


def _array_shift(interp, array, args):
    items = array.to_list()
    if not items:
        return UNDEFINED
    first = items[0]
    rest = items[1:]
    array.set_length(0)
    for item in rest:
        array.push(item)
    interp.hooks.prop_write(array.object_id, "0")
    return first


def _array_unshift(interp, array, args):
    items = list(args) + array.to_list()
    array.set_length(0)
    for item in items:
        array.push(item)
    interp.hooks.prop_write(array.object_id, "0")
    return float(array.length)


def _array_join(interp, array, args):
    separator = to_string(args[0]) if args else ","
    return separator.join(
        "" if (v is UNDEFINED or v is NULL) else to_string(v)
        for v in array.to_list()
    )


def _array_index_of(interp, array, args):
    needle = args[0] if args else UNDEFINED
    for index, item in enumerate(array.to_list()):
        if strict_equals(item, needle):
            return float(index)
    return -1.0


def _array_slice(interp, array, args):
    items = array.to_list()
    start = int(to_number(args[0])) if args else 0
    end = int(to_number(args[1])) if len(args) > 1 else len(items)
    bounds = _normalize_slice(start, end, len(items))
    return JSArray(items[slice(*bounds)])


def _array_concat(interp, array, args):
    items = array.to_list()
    for arg in args:
        if isinstance(arg, JSArray):
            items.extend(arg.to_list())
        else:
            items.append(arg)
    return JSArray(items)


def _array_splice(interp, array, args):
    items = array.to_list()
    start = int(to_number(args[0])) if args else 0
    if start < 0:
        start = max(len(items) + start, 0)
    start = min(start, len(items))
    delete_count = (
        int(to_number(args[1])) if len(args) > 1 else len(items) - start
    )
    delete_count = max(0, min(delete_count, len(items) - start))
    removed = items[start : start + delete_count]
    new_items = items[:start] + list(args[2:]) + items[start + delete_count :]
    array.set_length(0)
    for item in new_items:
        array.push(item)
    interp.hooks.prop_write(array.object_id, "length")
    return JSArray(removed)


def _array_for_each(interp, array, args):
    callback = args[0] if args else UNDEFINED
    for index, item in enumerate(array.to_list()):
        interp.call_function(callback, interp.this_value, [item, float(index), array])
    return UNDEFINED


def _array_map(interp, array, args):
    callback = args[0] if args else UNDEFINED
    result = []
    for index, item in enumerate(array.to_list()):
        result.append(
            interp.call_function(
                callback, interp.this_value, [item, float(index), array]
            )
        )
    return JSArray(result)


def _array_filter(interp, array, args):
    callback = args[0] if args else UNDEFINED
    result = []
    for index, item in enumerate(array.to_list()):
        keep = interp.call_function(
            callback, interp.this_value, [item, float(index), array]
        )
        if to_boolean(keep):
            result.append(item)
    return JSArray(result)


_ARRAY_METHODS = {
    "push": _array_push,
    "pop": _array_pop,
    "shift": _array_shift,
    "unshift": _array_unshift,
    "join": _array_join,
    "indexOf": _array_index_of,
    "slice": _array_slice,
    "concat": _array_concat,
    "splice": _array_splice,
    "forEach": _array_for_each,
    "map": _array_map,
    "filter": _array_filter,
}


def function_member(fn: JSFunction, name: str) -> Any:
    """call/apply on function values."""
    if name == "call":
        def call_impl(interp, receiver, args):
            this = args[0] if args else UNDEFINED
            return interp.call_function(receiver, this, list(args[1:]))

        return BoundMethod("call", fn, call_impl)

    def apply_impl(interp, receiver, args):
        this = args[0] if args else UNDEFINED
        arg_list: List[Any] = []
        if len(args) > 1 and isinstance(args[1], JSArray):
            arg_list = args[1].to_list()
        return interp.call_function(receiver, this, arg_list)

    return BoundMethod("apply", fn, apply_impl)
