"""Synthetic site generation.

Assembles :class:`~repro.sites.patterns.Fragment` instances into complete
:class:`Site` pages.  A :class:`SiteSpec` names the patterns (with keyword
arguments) a site is built from; the generator concatenates their markup,
merges their resources/latencies, and sums their expectations, giving each
site a ground-truth label of the races it was seeded with.

All ids are namespaced per fragment (``uid``), so patterns never interfere;
the expected-race algebra is therefore additive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..core.report import RACE_TYPES
from .patterns import PATTERNS, Fragment


@dataclass
class Site:
    """A generated page with ground-truth race labels."""

    name: str
    html: str
    resources: Dict[str, str] = field(default_factory=dict)
    latencies: Dict[str, float] = field(default_factory=dict)
    #: type -> (filtered races, harmful races) seeded into the page.
    expected: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: minimum unfiltered races per type.
    raw_min: Dict[str, int] = field(default_factory=dict)

    def expected_filtered_total(self) -> int:
        """Total seeded filtered races."""
        return sum(count for count, _harmful in self.expected.values())

    def expected_harmful_total(self) -> int:
        """Total seeded harmful races."""
        return sum(harmful for _count, harmful in self.expected.values())


@dataclass
class SiteSpec:
    """Recipe: which patterns (and arguments) make up a site."""

    name: str
    patterns: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)

    def add(self, pattern: str, **kwargs: Any) -> "SiteSpec":
        """Append a pattern (chainable)."""
        self.patterns.append((pattern, dict(kwargs)))
        return self


def build_site(spec: SiteSpec) -> Site:
    """Materialize a :class:`SiteSpec` into a :class:`Site`."""
    fragments: List[Fragment] = []
    for index, (pattern_name, kwargs) in enumerate(spec.patterns):
        builder = PATTERNS.get(pattern_name)
        if builder is None:
            raise KeyError(f"unknown pattern {pattern_name!r}")
        uid = f"{_slug(spec.name)}{index}"
        fragments.append(builder(uid, **kwargs))

    html_parts: List[str] = [f"<!-- synthetic site: {spec.name} -->"]
    resources: Dict[str, str] = {}
    latencies: Dict[str, float] = {}
    expected: Dict[str, Tuple[int, int]] = {t: (0, 0) for t in RACE_TYPES}
    raw_min: Dict[str, int] = {t: 0 for t in RACE_TYPES}
    for fragment in fragments:
        html_parts.append(fragment.html)
        overlap = set(resources) & set(fragment.resources)
        if overlap:
            raise ValueError(f"resource collision in {spec.name}: {overlap}")
        resources.update(fragment.resources)
        latencies.update(fragment.latencies)
        for race_type, (count, harmful) in fragment.expected.items():
            old_count, old_harmful = expected[race_type]
            expected[race_type] = (old_count + count, old_harmful + harmful)
        for race_type, count in fragment.raw_min.items():
            raw_min[race_type] += count

    return Site(
        name=spec.name,
        html="\n".join(html_parts),
        resources=resources,
        latencies=latencies,
        expected=expected,
        raw_min=raw_min,
    )


def _slug(name: str) -> str:
    return "".join(ch for ch in name if ch.isalnum())[:12]
