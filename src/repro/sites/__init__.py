"""Synthetic workload: race patterns, site generation, the 100-site corpus."""

from .corpus import (
    CLEAN_SITES,
    PAPER_TABLE1,
    PAPER_TABLE2_SITES,
    PAPER_TABLE2_TOTALS,
    TABLE2_SPECS,
    build_corpus,
    corpus_specs,
    expected_table2_totals,
    noise_levels,
)
from .generator import Site, SiteSpec, build_site
from .patterns import PATTERNS, Fragment

__all__ = [
    "CLEAN_SITES",
    "Fragment",
    "PATTERNS",
    "PAPER_TABLE1",
    "PAPER_TABLE2_SITES",
    "PAPER_TABLE2_TOTALS",
    "Site",
    "SiteSpec",
    "TABLE2_SPECS",
    "build_corpus",
    "build_site",
    "corpus_specs",
    "expected_table2_totals",
    "noise_levels",
]
