"""Race patterns observed by the paper, as composable page fragments.

Each pattern builder returns a :class:`Fragment`: a piece of HTML plus the
external resources it needs and the races it is engineered to produce.
The patterns are direct implementations of the behaviours the paper
documents on real sites:

* ``southwest_form_hint`` — Fig. 2: a script overwrites a text box the user
  may already have typed into (harmful variable race).
* ``two_script_form_hint`` — two scripts write the same form value
  (variable race that survives the form filter but is benign: no user
  input involved).
* ``guarded_form_hint`` — the write is guarded by a read ("did the user
  type?"), which the form filter drops (Section 5.3).
* ``valero_email_link`` — Fig. 3: a ``javascript:`` link touches a div
  parsed later (harmful HTML race; hidden crash).
* ``ford_polling`` — Section 6.3: setTimeout-polling until a sentinel node
  exists, then mutating many nodes (benign HTML races via data-dependence
  synchronization; Ford had 112 of these).
* ``function_race_unguarded`` / ``function_race_guarded`` — Fig. 4 /
  Section 6.3: a handler invokes a function declared by a later script,
  with or without a ``typeof`` guard (harmful vs. benign function race).
* ``gomez_monitoring`` — Section 6.3: a setInterval loop attaches onload
  handlers to images after they may have loaded (harmful event-dispatch
  races; all 83 harmful dispatch races in the paper were this pattern).
* ``late_onload_attach`` — Fig. 5: ``iframe.onload`` assigned from a later
  script (harmful event-dispatch race).
* ``delayed_widget_script`` — Section 6.2: deliberately delayed
  (script-inserted) code attaching hover handlers; the races are filtered
  out (multi-dispatch) or judged benign (deliberate delay).
* ``iframe_variable_race`` — Fig. 1: scripts in two iframes race on a
  global.
* ``async_global_noise`` / ``ajax_global_write`` — asynchronously loaded
  library code racing on plain globals (the bulk of Table 1's variable
  column; filtered out by the form filter).
* ``static_noise`` — race-free filler content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..core.report import EVENT_DISPATCH, FUNCTION, HTML, VARIABLE

#: (filtered_count, harmful_count) per race type.
Expectation = Dict[str, Tuple[int, int]]


@dataclass
class Fragment:
    """A composable piece of a synthetic site."""

    html: str
    resources: Dict[str, str] = field(default_factory=dict)
    latencies: Dict[str, float] = field(default_factory=dict)
    #: Races this fragment contributes *after filtering*: type -> (n, harmful).
    expected: Expectation = field(default_factory=dict)
    #: Minimum races contributed to the unfiltered (Table 1) counts.
    raw_min: Dict[str, int] = field(default_factory=dict)


def southwest_form_hint(uid: str, latency: float = 40.0) -> Fragment:
    """Fig. 2: harmful variable race on a form-field value."""
    return Fragment(
        html=(
            f'<input type="text" id="depart{uid}" />\n'
            f'<script src="hint{uid}.js"></script>\n'
        ),
        resources={
            f"hint{uid}.js": (
                f"document.getElementById('depart{uid}').value = 'City of Departure';"
            )
        },
        latencies={f"hint{uid}.js": latency},
        expected={VARIABLE: (1, 1)},
        raw_min={VARIABLE: 1},
    )


def two_script_form_hint(uid: str) -> Fragment:
    """Two async scripts write the same form value: benign variable race."""
    # The field is type=hidden so simulated typing leaves it alone: the
    # race is purely script-vs-script and therefore benign.
    return Fragment(
        html=(
            f'<input type="hidden" id="query{uid}" />\n'
            f'<script src="hintA{uid}.js" async="true"></script>\n'
            f'<script src="hintB{uid}.js" async="true"></script>\n'
        ),
        resources={
            f"hintA{uid}.js": (
                f"document.getElementById('query{uid}').value = 'Search...';"
            ),
            f"hintB{uid}.js": (
                f"document.getElementById('query{uid}').value = 'Find a store';"
            ),
        },
        expected={VARIABLE: (1, 0)},
        raw_min={VARIABLE: 1},
    )


def guarded_form_hint(uid: str) -> Fragment:
    """A guarded write (``f.value = f.value || hint``) racing with another
    script's write — dropped by the form filter's read-before-write rule."""
    return Fragment(
        html=(
            f'<input type="hidden" id="city{uid}" />\n'
            f'<script src="ginit{uid}.js" async="true"></script>\n'
            f'<script src="ghint{uid}.js" async="true"></script>\n'
        ),
        resources={
            f"ginit{uid}.js": (
                f"document.getElementById('city{uid}').value = 'preset';"
            ),
            f"ghint{uid}.js": (
                f"var f{uid} = document.getElementById('city{uid}');\n"
                f"f{uid}.value = f{uid}.value || 'Your city';"
            ),
        },
        expected={},
        raw_min={VARIABLE: 1},
    )


def valero_email_link(uid: str) -> Fragment:
    """Fig. 3: harmful HTML race — click may precede the div's parse."""
    return Fragment(
        html=(
            f"<script>\n"
            f"function show{uid}() {{\n"
            f"  var v = $get('dw{uid}');\n"
            f"  v.style.display = 'block';\n"
            f"}}\n"
            f"</script>\n"
            f'<a id="send{uid}" href="javascript:show{uid}()">Send Email</a>\n'
            f'<div id="spacer{uid}a">.</div>\n'
            f'<div id="spacer{uid}b">.</div>\n'
            f'<div id="dw{uid}" style="display:none">email form</div>\n'
        ),
        expected={HTML: (1, 1)},
        raw_min={HTML: 1},
    )


def ford_polling(uid: str, nodes: int = 5) -> Fragment:
    """Section 6.3: benign HTML races via data-dependence synchronization.

    The poll reads ``last`` until it exists, then touches ``nodes`` other
    elements; every one of those reads races with its element's parse but
    never crashes (the sentinel guarantees existence).  Contributes
    ``nodes + 1`` benign HTML races.
    """
    touch = "\n".join(
        f"    document.getElementById('n{uid}_{k}').style.color = 'red';"
        for k in range(nodes)
    )
    divs = "\n".join(f'<div id="n{uid}_{k}">item</div>' for k in range(nodes))
    return Fragment(
        html=(
            f"<script>\n"
            f"function addPopUp{uid}() {{\n"
            f"  if (document.getElementById('last{uid}') != null) {{\n"
            f"{touch}\n"
            f"  }} else {{ setTimeout(addPopUp{uid}, 5); }}\n"
            f"}}\n"
            f"addPopUp{uid}();\n"
            f"</script>\n"
            f"{divs}\n"
            f'<div id="last{uid}">end</div>\n'
        ),
        expected={HTML: (nodes + 1, 0)},
        raw_min={HTML: nodes + 1},
    )


def function_race_unguarded(uid: str, latency: float = 60.0) -> Fragment:
    """Fig. 4-style harmful function race exposed by a simulated click."""
    return Fragment(
        html=(
            f'<div id="menu{uid}" onclick="openMenu{uid}()">Products</div>\n'
            f'<script src="menu{uid}.js"></script>\n'
        ),
        resources={
            f"menu{uid}.js": (
                f"function openMenu{uid}() {{ window.menuOpen{uid} = true; }}"
            )
        },
        latencies={f"menu{uid}.js": latency},
        expected={FUNCTION: (1, 1)},
        raw_min={FUNCTION: 1},
    )


def function_race_guarded(uid: str, latency: float = 60.0) -> Fragment:
    """Function race guarded by typeof — detected but benign."""
    return Fragment(
        html=(
            f'<div id="gmenu{uid}" '
            f"onclick=\"if (typeof openG{uid} != 'undefined') openG{uid}();\">"
            f"Services</div>\n"
            f'<script src="gmenu{uid}.js"></script>\n'
        ),
        resources={
            f"gmenu{uid}.js": (
                f"function openG{uid}() {{ window.gOpen{uid} = true; }}"
            )
        },
        latencies={f"gmenu{uid}.js": latency},
        expected={FUNCTION: (1, 0)},
        raw_min={FUNCTION: 1},
    )


def gomez_monitoring(uid: str, images: int = 3) -> Fragment:
    """Section 6.3: the Gomez pattern — harmful event-dispatch races.

    Images appear *before* the monitoring script (so their parsing is
    ordered before it — no HTML race), but each image's load dispatch races
    with the interval callback attaching its ``onload`` handler.
    """
    imgs = "\n".join(
        f'<img id="m{uid}_{k}" src="img{uid}_{k}.png">' for k in range(images)
    )
    script = (
        f"var seen{uid} = {{}};\n"
        f"function poll{uid}() {{\n"
        f"  var imgs = document.images;\n"
        f"  for (var i = 0; i < imgs.length; i++) {{\n"
        f"    var im = imgs[i];\n"
        f"    if (!seen{uid}[im.id]) {{\n"
        f"      seen{uid}[im.id] = true;\n"
        f"      im.onload = function() {{ window.tracked{uid} = im.id; }};\n"
        f"    }}\n"
        f"  }}\n"
        f"}}\n"
        f"setInterval(poll{uid}, 10);\n"
    )
    resources = {f"img{uid}_{k}.png": "binary" for k in range(images)}
    return Fragment(
        html=f"{imgs}\n<script>\n{script}</script>\n",
        resources=resources,
        expected={EVENT_DISPATCH: (images, images)},
        raw_min={EVENT_DISPATCH: images},
    )


def late_onload_attach(uid: str, latency: float = 8.0) -> Fragment:
    """Fig. 5: iframe onload assigned from a separate script."""
    return Fragment(
        html=(
            f'<iframe id="fr{uid}" src="frame{uid}.html"></iframe>\n'
            f"<script>\n"
            f"document.getElementById('fr{uid}').onload = "
            f"function() {{ window.frLoaded{uid} = true; }};\n"
            f"</script>\n"
        ),
        resources={f"frame{uid}.html": "<div>nested</div>"},
        latencies={f"frame{uid}.html": latency},
        expected={EVENT_DISPATCH: (1, 1)},
        raw_min={EVENT_DISPATCH: 1},
    )


def delayed_onload_attach(uid: str) -> Fragment:
    """A deliberately-delayed script attaches a load handler: the race
    survives the single-dispatch filter but is judged benign."""
    return Fragment(
        html=(
            f'<img id="logo{uid}" src="logo{uid}.png">\n'
            f"<script>\n"
            f"var s{uid} = document.createElement('script');\n"
            f"s{uid}.src = 'track{uid}.js';\n"
            f"document.body.appendChild(s{uid});\n"
            f"</script>\n"
        ),
        resources={
            f"logo{uid}.png": "binary",
            f"track{uid}.js": (
                f"var im{uid} = document.getElementById('logo{uid}');\n"
                f"im{uid}.onload = function() {{ window.logoSeen{uid} = true; }};"
            ),
        },
        expected={EVENT_DISPATCH: (1, 0)},
        raw_min={EVENT_DISPATCH: 1},
    )


def delayed_widget_script(uid: str, widgets: int = 4) -> Fragment:
    """Section 6.2: delayed pop-up menu code.  The mouseover handler races
    are filtered out (multi-dispatch events) — Table 1 noise only."""
    divs = "\n".join(f'<div id="w{uid}_{k}">widget</div>' for k in range(widgets))
    attach = "\n".join(
        f"document.getElementById('w{uid}_{k}').onmouseover = "
        f"function() {{ window.hover{uid}_{k} = true; }};"
        for k in range(widgets)
    )
    return Fragment(
        html=(
            f"{divs}\n"
            f"<script>\n"
            f"var ws{uid} = document.createElement('script');\n"
            f"ws{uid}.src = 'widgets{uid}.js';\n"
            f"document.body.appendChild(ws{uid});\n"
            f"</script>\n"
        ),
        resources={f"widgets{uid}.js": attach},
        expected={},
        raw_min={EVENT_DISPATCH: widgets},
    )


def iframe_variable_race(uid: str) -> Fragment:
    """Fig. 1: two iframes race on a shared global."""
    return Fragment(
        html=(
            f"<script>xg{uid} = 1;</script>\n"
            f'<iframe src="fa{uid}.html"></iframe>\n'
            f'<iframe src="fb{uid}.html"></iframe>\n'
        ),
        resources={
            f"fa{uid}.html": f"<script>xg{uid} = 2;</script>",
            f"fb{uid}.html": f"<script>window.res{uid} = xg{uid};</script>",
        },
        expected={},
        raw_min={VARIABLE: 1},
    )


def async_global_noise(uid: str, globals_count: int = 8) -> Fragment:
    """Two async library scripts racing on shared globals (Table 1 bulk)."""
    writes_a = "\n".join(
        f"cfg{uid}_{k} = {k};" for k in range(globals_count)
    )
    writes_b = "\n".join(
        f"cfg{uid}_{k} = (typeof cfg{uid}_{k} == 'undefined') ? -1 : cfg{uid}_{k} + 1;"
        for k in range(globals_count)
    )
    return Fragment(
        html=(
            f'<script src="liba{uid}.js" async="true"></script>\n'
            f'<script src="libb{uid}.js" async="true"></script>\n'
        ),
        resources={
            f"liba{uid}.js": writes_a,
            f"libb{uid}.js": writes_b,
        },
        expected={},
        raw_min={VARIABLE: globals_count},
    )


def ajax_global_write(uid: str) -> Fragment:
    """An XHR completion handler writes a global also set by a later
    script — an AJAX race (the Zheng et al. class, detectable here)."""
    return Fragment(
        html=(
            f"<script>\n"
            f"var xr{uid} = new XMLHttpRequest();\n"
            f"xr{uid}.open('GET', 'data{uid}.json');\n"
            f"xr{uid}.onreadystatechange = function() {{\n"
            f"  if (xr{uid}.readyState == 4) {{ payload{uid} = xr{uid}.responseText; }}\n"
            f"}};\n"
            f"xr{uid}.send();\n"
            f"</script>\n"
            f'<script src="init{uid}.js" async="true"></script>\n'
        ),
        resources={
            f"data{uid}.json": '{"ok": true}',
            f"init{uid}.js": f"payload{uid} = 'default';",
        },
        expected={},
        raw_min={VARIABLE: 1},
    )


def cookie_race(uid: str) -> Fragment:
    """Cookie state raced by an AJAX handler and an async script.

    Zheng et al.'s static AJAX-race system had special cookie handling;
    the paper notes adding it to WebRacer "would be straightforward" —
    here it is: ``document.cookie`` is a DOM-property location, so the
    unordered writes race (variable race; filtered out as non-form).
    """
    return Fragment(
        html=(
            f"<script>\n"
            f"var cx{uid} = new XMLHttpRequest();\n"
            f"cx{uid}.open('GET', 'session{uid}.json');\n"
            f"cx{uid}.onreadystatechange = function() {{\n"
            f"  if (cx{uid}.readyState == 4) {{ document.cookie = 'sid=' + cx{uid}.responseText; }}\n"
            f"}};\n"
            f"cx{uid}.send();\n"
            f"</script>\n"
            f'<script src="prefs{uid}.js" async="true"></script>\n'
        ),
        resources={
            f"session{uid}.json": "abc123",
            f"prefs{uid}.js": f"document.cookie = 'prefs=dark';",
        },
        expected={},
        raw_min={VARIABLE: 1},
    )


def static_noise(uid: str, blocks: int = 3) -> Fragment:
    """Race-free filler: static content and a pure inline computation."""
    divs = "\n".join(
        f'<div id="s{uid}_{k}"><a href="/about{k}">About</a> '
        f"<p>Lorem ipsum dolor sit amet.</p></div>"
        for k in range(blocks)
    )
    return Fragment(
        html=(
            f"{divs}\n"
            f"<script>\n"
            f"var acc{uid} = 0;\n"
            f"for (var i{uid} = 0; i{uid} < 10; i{uid}++) {{ acc{uid} += i{uid}; }}\n"
            f"</script>\n"
        ),
        expected={},
        raw_min={},
    )


#: Registry used by the generator.
PATTERNS = {
    "southwest_form_hint": southwest_form_hint,
    "two_script_form_hint": two_script_form_hint,
    "guarded_form_hint": guarded_form_hint,
    "valero_email_link": valero_email_link,
    "ford_polling": ford_polling,
    "function_race_unguarded": function_race_unguarded,
    "function_race_guarded": function_race_guarded,
    "gomez_monitoring": gomez_monitoring,
    "late_onload_attach": late_onload_attach,
    "delayed_onload_attach": delayed_onload_attach,
    "delayed_widget_script": delayed_widget_script,
    "iframe_variable_race": iframe_variable_race,
    "async_global_noise": async_global_noise,
    "ajax_global_write": ajax_global_write,
    "cookie_race": cookie_race,
    "static_noise": static_noise,
}
