"""The synthetic Fortune-100 corpus (paper, Section 6.1).

The paper evaluated WebRacer on the home pages of 100 Fortune-100
companies.  Those pages (as of 2012) are unavailable, so the corpus is
rebuilt synthetically — see DESIGN.md's substitution table.  Its
construction is calibrated against the paper's published results:

* the 41 sites of Table 2 are reconstructed by name, each seeded with
  pattern instances chosen so its *filtered* race counts (and harmful
  counts) match the paper's row exactly — e.g. Ford gets a 112-location
  polling pattern, MetLife/Walgreens get 35-image Gomez monitoring,
  Sunoco gets 11 unguarded email-form links;
* the remaining 59 sites carry no filter-surviving races;
* every site additionally receives *noise* — async-library variable races
  and delayed-widget event-dispatch races that the filters remove — drawn
  from a seeded skewed distribution calibrated to Table 1's unfiltered
  statistics (variable mean ≈ 22.4, event-dispatch mean ≈ 22.3, overall
  median ≈ 27, max ≈ 278).

Everything is deterministic in ``master_seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .generator import Site, SiteSpec, build_site

#: Paper values for Table 1 (mean / median / max per race type).
PAPER_TABLE1 = {
    "html": {"mean": 2.2, "median": 0.0, "max": 112},
    "function": {"mean": 0.4, "median": 0.0, "max": 6},
    "variable": {"mean": 22.4, "median": 5.5, "max": 269},
    "event_dispatch": {"mean": 22.3, "median": 7.0, "max": 198},
    "all": {"mean": 47.3, "median": 27.0, "max": 278},
}

#: Paper totals for Table 2: type -> (filtered races, harmful).
PAPER_TABLE2_TOTALS = {
    "html": (219, 32),
    "function": (37, 7),
    "variable": (8, 5),
    "event_dispatch": (91, 83),
}

#: Number of sites with at least one filtered race in the paper's Table 2.
PAPER_TABLE2_SITES = 41

PatternList = List[Tuple[str, Dict]]


def _valero(n: int) -> PatternList:
    return [("valero_email_link", {})] * n


def _ford(filtered_html: int) -> PatternList:
    """A polling pattern contributing ``filtered_html`` benign HTML races."""
    return [("ford_polling", {"nodes": filtered_html - 1})]


def _fn(harmful: int, benign: int) -> PatternList:
    return [("function_race_unguarded", {})] * harmful + [
        ("function_race_guarded", {})
    ] * benign


def _gomez(images: int) -> PatternList:
    return [("gomez_monitoring", {"images": images})]


def _southwest() -> PatternList:
    return [("southwest_form_hint", {})]


def _benign_var(n: int) -> PatternList:
    return [("two_script_form_hint", {})] * n


def _delayed_onload(n: int) -> PatternList:
    return [("delayed_onload_attach", {})] * n


#: Table 2 reconstruction: site -> seeded patterns.  Comments give the
#: paper's row as "HTML Function Variable EventDispatch" with harmful in
#: parentheses.
TABLE2_SPECS: List[Tuple[str, PatternList]] = [
    # Allstate: 6 (6) html, 2 (0) fn
    ("Allstate", _valero(6) + _fn(0, 2)),
    # AmericanExpress: 41 (1) html
    ("AmericanExpress", _valero(1) + _ford(40)),
    # BankOfAmerica: 4 (0) html, 1 (1) fn
    ("BankOfAmerica", _ford(4) + _fn(1, 0)),
    # BestBuy: 2 (0) fn
    ("BestBuy", _fn(0, 2)),
    # CiscoSystems: 1 (0) fn
    ("CiscoSystems", _fn(0, 1)),
    # Citigroup: 3 (0) html, 3 (2) fn, 1 (0) ed
    ("Citigroup", _ford(3) + _fn(2, 1) + _delayed_onload(1)),
    # Comcast: 6 (1) fn
    ("Comcast", _fn(1, 5)),
    # ConocoPhillips: 2 (1) fn
    ("ConocoPhillips", _fn(1, 1)),
    # Costco: 3 (3) html
    ("Costco", _valero(3)),
    # FedEx: 1 (0) html
    ("FedEx", _ford(1)),
    # Ford: 112 (0) html
    ("Ford", _ford(112)),
    # GeneralDynamics: 1 (0) fn
    ("GeneralDynamics", _fn(0, 1)),
    # GeneralMotors: 1 (0) fn
    ("GeneralMotors", _fn(0, 1)),
    # HartfordFinancial: 1 (1) html
    ("HartfordFinancial", _valero(1)),
    # HomeDepot: 1 (0) fn
    ("HomeDepot", _fn(0, 1)),
    # Humana: 13 (13) ed
    ("Humana", _gomez(13)),
    # IBM: 16 (0) html, 1 (1) var
    ("IBM", _ford(16) + _southwest()),
    # Intel: 3 (0) fn
    ("Intel", _fn(0, 3)),
    # JPMorganChase: 3 (3) html, 5 (0) fn
    ("JPMorganChase", _valero(3) + _fn(0, 5)),
    # JohnsonControls: 1 (1) html, 1 (0) var
    ("JohnsonControls", _valero(1) + _benign_var(1)),
    # Kroger: 1 (0) html
    ("Kroger", _ford(1)),
    # LibertyMutual: 4 (0) fn, 1 (0) ed
    ("LibertyMutual", _fn(0, 4) + _delayed_onload(1)),
    # Lowes: 1 (0) html
    ("Lowes", _ford(1)),
    # Macys: 1 (1) var
    ("Macys", _southwest()),
    # MassMutual: 1 (0) html
    ("MassMutual", _ford(1)),
    # MerrillLynch: 1 (1) html
    ("MerrillLynch", _valero(1)),
    # MetLife: 35 (35) ed
    ("MetLife", _gomez(35)),
    # MorganStanley: 1 (1) html
    ("MorganStanley", _valero(1)),
    # Motorola: 1 (0) html, 1 (0) ed
    ("Motorola", _ford(1) + _delayed_onload(1)),
    # NewsCorporation: 1 (0) html
    ("NewsCorporation", _ford(1)),
    # Safeway: 1 (1) var
    ("Safeway", _southwest()),
    # Sunoco: 11 (11) html
    ("Sunoco", _valero(11)),
    # Target: 2 (2) html, 1 (1) var
    ("Target", _valero(2) + _southwest()),
    # UnitedHealthGroup: 1 (0) ed
    ("UnitedHealthGroup", _delayed_onload(1)),
    # UnitedTechnologies: 2 (1) html
    ("UnitedTechnologies", _valero(1) + _ford(1)),
    # ValeroEnergy: 5 (1) html, 4 (1) fn, 2 (0) var
    ("ValeroEnergy", _valero(1) + _ford(4) + _fn(1, 3) + _benign_var(2)),
    # Verizon: 1 (1) fn
    ("Verizon", _fn(1, 0)),
    # WalMart: 1 (1) var
    ("WalMart", _southwest()),
    # Walgreens: 35 (35) ed
    ("Walgreens", _gomez(35)),
    # WaltDisney: 1 (0) html
    ("WaltDisney", _ford(1)),
    # WellsFargo: 4 (0) ed
    ("WellsFargo", _delayed_onload(4)),
]

#: The 59 sites that reported no filter-surviving races.
CLEAN_SITES: List[str] = [
    "ExxonMobil", "Chevron", "GeneralElectric", "Berkshire", "Fannie",
    "HewlettPackard", "ATT", "McKesson", "CardinalHealth", "CVS",
    "UnitedParcel", "ProcterGamble", "Kraft", "MarathonOil", "Apple",
    "PepsiCo", "AIG", "Amerisource", "PrudentialFin", "Boeing",
    "Caterpillar", "Medco", "Pfizer", "Google", "Dow", "Aetna",
    "StateFarm", "Dell", "Sysco", "Cigna", "Microsoft", "Coke",
    "BunkerRamo", "TIAA", "Honeywell", "NorthropGrumman", "Sprint",
    "EnterpriseGP", "TysonFoods", "PlainsAllAmer", "Oracle",
    "Amazon", "DuPont", "Sears", "HCA", "AbbottLabs", "CocaCola",
    "DeltaAir", "Merck", "TimeWarner", "Halliburton", "Travelers",
    "PhilipMorris", "MurphyOil", "Paccar", "Alcoa", "FreddieMac",
    "Nationwide", "Supervalu",
]


def noise_levels(index: int, master_seed: int = 0) -> Tuple[int, int]:
    """Seeded (variable_noise, event_noise) sizes for site ``index``.

    Skewed three-tier distribution calibrated to Table 1: a few heavy
    sites, a band of medium ones, a long tail of light ones.
    """
    rng = random.Random(master_seed * 1_000_003 + index * 7919)

    def draw(tier: int) -> int:
        if tier < 2:  # 10% heavy (obfuscated-library-laden pages)
            return rng.randint(50, 210)
        if tier < 8:  # 30% medium
            return rng.randint(8, 35)
        return rng.randint(0, 6)  # 60% light

    # Variable and event noise tiers are offset so no site is heavy in
    # both — keeps the per-site maximum near the paper's 278.
    return draw(index % 20), draw((index + 10) % 20)


def corpus_specs(master_seed: int = 0) -> List[SiteSpec]:
    """The 100 SiteSpecs: 41 Table-2 sites + 59 clean sites, plus noise."""
    specs: List[SiteSpec] = []
    names_and_patterns: List[Tuple[str, PatternList]] = list(TABLE2_SPECS)
    names_and_patterns.extend((name, []) for name in CLEAN_SITES)
    for index, (name, patterns) in enumerate(names_and_patterns):
        spec = SiteSpec(name=name)
        for pattern_name, kwargs in patterns:
            spec.add(pattern_name, **kwargs)
        var_noise, event_noise = noise_levels(index, master_seed)
        if var_noise:
            spec.add("async_global_noise", globals_count=var_noise)
        if event_noise:
            spec.add("delayed_widget_script", widgets=event_noise)
        rng = random.Random(master_seed * 31 + index)
        if rng.random() < 0.3:
            spec.add("iframe_variable_race")
        if rng.random() < 0.3:
            spec.add("ajax_global_write")
        if rng.random() < 0.2:
            spec.add("cookie_race")
        if rng.random() < 0.5:
            spec.add("guarded_form_hint")
        spec.add("static_noise", blocks=rng.randint(1, 4))
        specs.append(spec)
    return specs


def build_corpus(master_seed: int = 0, limit: int = 100) -> List[Site]:
    """Materialize the corpus (optionally just the first ``limit`` sites)."""
    return [build_site(spec) for spec in corpus_specs(master_seed)[:limit]]


def expected_table2_totals() -> Dict[str, Tuple[int, int]]:
    """Ground-truth Table 2 totals seeded into the corpus."""
    sites = [build_site(_spec_for(name, patterns)) for name, patterns in TABLE2_SPECS]
    totals: Dict[str, List[int]] = {}
    for site in sites:
        for race_type, (count, harmful) in site.expected.items():
            bucket = totals.setdefault(race_type, [0, 0])
            bucket[0] += count
            bucket[1] += harmful
    return {race_type: tuple(val) for race_type, val in totals.items()}


def _spec_for(name: str, patterns: PatternList) -> SiteSpec:
    spec = SiteSpec(name=name)
    for pattern_name, kwargs in patterns:
        spec.add(pattern_name, **kwargs)
    return spec
