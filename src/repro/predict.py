"""Single-trace race prediction with replay confirmation (``repro predict``).

``repro explore`` buys schedule coverage by brute force: N runs per page,
one per schedule.  This pipeline extracts comparable coverage from **one**
recorded execution:

1. run the page once under FIFO, recording the schedule
   (:class:`~repro.browser.scheduler.RecordingScheduler`) — this is the
   *observed* execution, the one the paper's tool would have seen;
2. sweep the trace with the schedulable-happens-before analysis
   (:func:`repro.core.hb.shb.predict_races`): conflicting rule-concurrent
   pairs the exact detector missed become *predictions*, classified
   ``schedulable`` (SHB leaves the pair unordered) or ``conditional``
   (ordered only via racy reads-from edges);
3. **confirm by replay**: predictions are cross-validated against the
   explore machinery — witness schedules (adversarial, then seeded
   randoms up to ``budget``) run until one's filtered fingerprints
   contain the predicted fingerprint and
   :func:`~repro.schedule_runner.replay_reproduces` verifies the recorded
   witness replays to the same outcome.  Confirmed predictions can be
   ddmin-minimized (:func:`~repro.schedule_runner.minimize_schedule`)
   down to the smallest FIFO-divergence set that still fires the race.

A prediction that no witness schedule confirmed stays ``predicted-only``:
either the budget was too small, the Section 5.3 filters suppress the
race in every witnessing schedule, or the operation-level SHB abstraction
over-approximated.  Replay is the ground truth; the report never promotes
an unconfirmed prediction.

Every run goes through :func:`~repro.schedule_runner.run_page_once`, the
single run-config authority, so recorded witnesses replay exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .browser.scheduler import RecordingScheduler, derive_page_seed
from .core.hb.shb import (
    STATUS_CONDITIONAL,
    STATUS_SCHEDULABLE,
    ShbAnalysis,
    predict_races,
)
from .core.report import build_report
from .obs import NULL
from .schedule_runner import (
    EXPLORE_TIE_WINDOW,
    PageInput,
    ScheduleRunResult,
    ScheduleSpec,
    minimize_schedule,
    run_page_once,
    run_page_schedule,
)

#: Default number of witness schedules tried per page (adversarial + randoms).
DEFAULT_WITNESS_BUDGET = 6

OUTCOME_CONFIRMED = "predicted+confirmed"
OUTCOME_PREDICTED_ONLY = "predicted-only"


@dataclass
class PredictionResult:
    """One SHB prediction with its confirmation outcome."""

    fingerprint: str
    status: str  # "schedulable" | "conditional"
    kind: str
    location: str
    description: str
    op_pair: List[int]
    race_type: str = ""
    harmful: bool = False
    #: Racy reads-from edges a reordering must break (conditional tier).
    blocking_rf: List[Dict[str, Any]] = field(default_factory=list)
    confirmed: bool = False
    #: Witness schedule identity when confirmed.
    witness_sid: Optional[str] = None
    witness_policy: Optional[str] = None
    witness_seed: Optional[int] = None
    #: Recorded witness schedule (``ScheduleTrace.to_dict()``).
    witness_trace_dict: Optional[Dict[str, Any]] = None
    #: Replay verification of the witness run (None = not attempted).
    replay_ok: Optional[bool] = None
    #: ``MinimizationResult.to_dict()`` when minimization ran.
    minimized: Optional[Dict[str, Any]] = None
    #: ``RaceEvidence.to_dict()`` built from the recorded trace.
    evidence: Optional[Dict[str, Any]] = None

    @property
    def outcome(self) -> str:
        """``predicted+confirmed`` or ``predicted-only``."""
        return OUTCOME_CONFIRMED if self.confirmed else OUTCOME_PREDICTED_ONLY


@dataclass
class PredictReport:
    """Everything one prediction pass over a page produced."""

    page: str
    seed: int
    hb_backend: str
    budget: int
    #: Filtered fingerprints of the observed (FIFO) run.
    observed_fingerprints: List[str] = field(default_factory=list)
    #: fingerprint → {race_type, harmful, location, description}.
    observed_races: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Exact-detector raw races replayed into the SHB ``observed`` tier.
    observed_pairs: int = 0
    predictions: List[PredictionResult] = field(default_factory=list)
    #: Witness schedule runs actually executed, in trial order.
    witness_runs: List[ScheduleRunResult] = field(default_factory=list)
    #: The recorded observed schedule (``ScheduleTrace.to_dict()``).
    base_trace_dict: Optional[Dict[str, Any]] = None
    shb_summary: str = ""
    rf_edges: int = 0
    rf_racy: int = 0
    #: Total instrumented page executions (1 base + witnesses + replays).
    runs_executed: int = 0
    error: Optional[str] = None
    duration_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def confirmed(self) -> List[PredictionResult]:
        """Predictions a witness schedule replay-confirmed."""
        return [p for p in self.predictions if p.confirmed]

    def predicted_only(self) -> List[PredictionResult]:
        """Predictions no witness schedule confirmed within budget."""
        return [p for p in self.predictions if not p.confirmed]

    def summary(self) -> str:
        """One-line prediction summary."""
        return (
            f"{self.page}: {len(self.observed_fingerprints)} observed, "
            f"{len(self.predictions)} predicted, "
            f"{len(self.confirmed())} confirmed by replay"
        )


def witness_schedule_specs(seed: int, budget: int) -> List[ScheduleSpec]:
    """The witness schedules tried for one page, in trial order.

    Adversarial first (deterministic, and by construction the most
    reorder-happy policy), then seeded randoms derived from ``seed``
    position-independently — the same derivation the explore matrix uses,
    so prediction witnesses and matrix columns are directly comparable.
    """
    if budget < 1:
        raise ValueError(f"witness budget must be >= 1, got {budget}")
    specs = [ScheduleSpec("adversarial", "adversarial")]
    for index in range(budget - 1):
        specs.append(
            ScheduleSpec(
                f"random-{index}", "random", derive_page_seed(seed, index)
            )
        )
    return specs


def _prediction_entries(
    analysis: ShbAnalysis, page_obj, base_fingerprints: List[str]
) -> List[PredictionResult]:
    """Fingerprint, classify, and dedup the raw SHB predictions."""
    from .explain.evidence import build_race_evidence
    from .explain.fingerprint import race_fingerprint

    entries: List[PredictionResult] = []
    seen: set = set(base_fingerprints)
    for prediction in analysis.predictions:
        fingerprint = race_fingerprint(prediction.race, page_obj.trace)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        classified_report = build_report([prediction.race], page_obj.trace)
        classified = classified_report.races[0]
        evidence = build_race_evidence(
            classified, page_obj.trace, page_obj.monitor.graph
        )
        entries.append(
            PredictionResult(
                fingerprint=fingerprint,
                status=prediction.status,
                kind=prediction.race.kind,
                location=prediction.race.location.describe(),
                description=prediction.race.describe(),
                op_pair=list(prediction.op_pair()),
                race_type=classified.race_type,
                harmful=classified.harmful,
                blocking_rf=[
                    {
                        "src": edge.src,
                        "dst": edge.dst,
                        "location": edge.location.describe(),
                    }
                    for edge in prediction.blocking_rf
                ],
                evidence=evidence.to_dict(),
            )
        )
    # Schedulable predictions are the stronger claim; try them first.
    tier = {STATUS_SCHEDULABLE: 0, STATUS_CONDITIONAL: 1}
    entries.sort(key=lambda e: (tier.get(e.status, 2), e.fingerprint))
    return entries


def predict_page(
    page: PageInput,
    seed: int = 0,
    hb_backend: str = "graph",
    budget: int = DEFAULT_WITNESS_BUDGET,
    minimize: bool = False,
    obs=None,
) -> PredictReport:
    """Record one FIFO execution, predict races, confirm by replay.

    ``budget`` caps the number of witness schedules run; witness runs are
    shared across predictions (one adversarial run can confirm several),
    and the search stops early once every prediction is confirmed.
    ``hb_backend`` selects the *online* query engine for all runs;
    passing ``"shb"`` is allowed and equivalent to ``"chains"`` here
    (prediction is already this pipeline's job).
    """
    obs = obs if obs is not None else NULL
    started = time.perf_counter()
    report = PredictReport(
        page=page.url, seed=seed, hb_backend=hb_backend, budget=budget
    )
    try:
        with obs.span("predict.base_run", cat="predict", page=page.url):
            recorder = RecordingScheduler(ScheduleSpec("fifo", "fifo").build())
            page_obj, page_report, base_fps, base_races = run_page_once(
                page, recorder, seed, hb_backend, obs=obs
            )
        report.runs_executed += 1
        report.observed_fingerprints = base_fps
        report.observed_races = base_races
        report.base_trace_dict = recorder.trace(
            policy="fifo",
            seed=None,
            page=page.url,
            tie_window=EXPLORE_TIE_WINDOW,
        ).to_dict()
        with obs.span("predict.shb_sweep", cat="predict", page=page.url):
            analysis = predict_races(
                page_obj.trace, page_obj.monitor.graph, page_report.raw_races
            )
        report.observed_pairs = len(analysis.observed)
        report.shb_summary = analysis.summary()
        report.rf_edges = len(analysis.rf_edges)
        report.rf_racy = sum(1 for edge in analysis.rf_edges if edge.racy)
        report.predictions = _prediction_entries(analysis, page_obj, base_fps)
        _confirm_predictions(
            page, report, seed=seed, hb_backend=hb_backend, obs=obs
        )
        if minimize:
            _minimize_confirmed(
                page, report, seed=seed, hb_backend=hb_backend, obs=obs
            )
        if obs.enabled:
            obs.count("predict.pages")
            obs.count("predict.predicted", len(report.predictions))
            obs.count("predict.confirmed", len(report.confirmed()))
    except Exception as exc:  # crash isolation, as in the explore matrix
        message = str(exc).splitlines()[0] if str(exc) else ""
        report.error = f"{type(exc).__name__}: {message}".rstrip(": ")
    report.duration_ms = (time.perf_counter() - started) * 1000.0
    return report


def _confirm_predictions(
    page: PageInput,
    report: PredictReport,
    seed: int,
    hb_backend: str,
    obs,
) -> None:
    """Run witness schedules until every prediction is confirmed or the
    budget is spent.  Each witness run is recorded and replay-verified
    (:func:`~repro.schedule_runner.run_page_schedule` with
    ``verify_replay=True``), so a confirmation is backed by a replayable
    :class:`~repro.browser.scheduler.ScheduleTrace`, not a lucky run."""
    pending = {p.fingerprint: p for p in report.predictions}
    if not pending:
        return
    with obs.span(
        "predict.confirm",
        cat="predict",
        page=page.url,
        predictions=len(pending),
    ):
        for spec in witness_schedule_specs(seed, report.budget):
            run = run_page_schedule(
                page,
                spec,
                seed=seed,
                hb_backend=hb_backend,
                verify_replay=True,
                obs=obs,
            )
            report.witness_runs.append(run)
            # One recorded run + one replay verification.
            report.runs_executed += 2 if run.ok else 1
            if obs.enabled:
                obs.count("predict.witness_budget_spent")
            if not run.ok:
                continue
            for fingerprint in list(pending):
                if (
                    fingerprint not in run.fingerprints
                    or run.replay_ok is False
                ):
                    continue
                prediction = pending.pop(fingerprint)
                prediction.confirmed = True
                prediction.witness_sid = run.sid
                prediction.witness_policy = run.policy
                prediction.witness_seed = run.seed
                prediction.witness_trace_dict = run.trace_dict
                prediction.replay_ok = run.replay_ok
            if not pending:
                return


def _minimize_confirmed(
    page: PageInput,
    report: PredictReport,
    seed: int,
    hb_backend: str,
    obs,
) -> None:
    """ddmin every confirmed prediction's witness down to the smallest
    FIFO-divergence set that still fires its fingerprint."""
    for prediction in report.confirmed():
        if prediction.witness_trace_dict is None:
            continue
        from .browser.scheduler import ScheduleTrace

        try:
            result = minimize_schedule(
                page,
                ScheduleTrace.from_dict(prediction.witness_trace_dict),
                prediction.fingerprint,
                seed=seed,
                hb_backend=hb_backend,
                obs=obs,
            )
        except ValueError:
            # The recorded witness no longer reproduces (should not
            # happen after replay verification); keep the confirmation,
            # skip the minimization.
            continue
        prediction.minimized = result.to_dict()
        report.runs_executed += result.tests_run
        if obs.enabled:
            obs.count("predict.minimize_tests", result.tests_run)


def predict_pages(
    pages: List[PageInput],
    seed: int = 0,
    hb_backend: str = "graph",
    budget: int = DEFAULT_WITNESS_BUDGET,
    minimize: bool = False,
    obs=None,
) -> List[PredictReport]:
    """Run the prediction pipeline over several pages, sequentially."""
    return [
        predict_page(
            page,
            seed=seed,
            hb_backend=hb_backend,
            budget=budget,
            minimize=minimize,
            obs=obs,
        )
        for page in pages
    ]
