"""Structured evidence records for reported races.

One :class:`RaceEvidence` turns a detector :class:`~repro.core.detector.Race`
into a self-contained, checkable record of *why the detector believes the
pair can happen concurrently*:

* the rule-labeled HB ancestry of both racing operations up from their
  nearest common ancestor (:mod:`repro.core.hb.witness`), so a reader sees
  exactly which of the paper's 17 rules ordered each side — and that no
  chain of rules connects the two sides;
* source attribution for each access: the operation that performed it
  (script/HTML provenance via its label, kind and segment-parent chain)
  and the per-location access timeline around the racing accesses;
* the Section 2 classification + Section 6 harmfulness verdict with its
  reason;
* a stable fingerprint (:mod:`repro.explain.fingerprint`) for
  deduplication within a run and clustering across corpus runs.

Evidence is built strictly *after* detection from structures the run
already produced (trace + HB store), so attaching it can never perturb the
set of reported races — report-flagged and plain runs see byte-identical
races, a property the integration tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.detector import Race
from ..core.locations import location_family
from ..core.hb.witness import RaceWitness, race_witness
from ..core.report import ClassifiedRace, RaceReport
from ..core.trace import Trace
from ..obs import NULL
from .fingerprint import location_token, race_fingerprint

#: How many accesses to the racing location surround each side's timeline.
TIMELINE_WINDOW = 6


@dataclass
class SideEvidence:
    """One racing access with its provenance and HB ancestry."""

    role: str  # "prior" or "current"
    access: Dict[str, Any]
    operation: Dict[str, Any]
    source: str
    #: Rule-labeled edges from the nearest common ancestor down to this
    #: side's operation (empty when there is no common ancestor).
    path_from_nca: List[Dict[str, Any]] = field(default_factory=list)
    #: Accesses to the racing location around this access, in trace order.
    timeline: List[Dict[str, Any]] = field(default_factory=list)

    def rules(self) -> List[str]:
        """The paper rules ordering this side under the common ancestor."""
        return [step["rule"] for step in self.path_from_nca]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (matches the shipped report schema)."""
        return {
            "role": self.role,
            "access": self.access,
            "operation": self.operation,
            "source": self.source,
            "path_from_nca": self.path_from_nca,
            "timeline": self.timeline,
        }


@dataclass
class RaceEvidence:
    """The full evidence record for one reported race."""

    fingerprint: str
    kind: str
    location: str
    location_token: str
    location_family: str
    race_type: str
    harmful: bool
    reason: str
    nca: Optional[Dict[str, Any]]
    common_ancestor_count: int
    prior: SideEvidence
    current: SideEvidence
    explanation: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (matches the shipped report schema)."""
        return {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "location": {
                "describe": self.location,
                "token": self.location_token,
                "family": self.location_family,
            },
            "race_type": self.race_type,
            "harmful": self.harmful,
            "reason": self.reason,
            "nca": self.nca,
            "common_ancestor_count": self.common_ancestor_count,
            "prior": self.prior.to_dict(),
            "current": self.current.to_dict(),
            "explanation": self.explanation,
        }


# ----------------------------------------------------------------------
# builders


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return str(value)


def _operation_dict(trace: Trace, op_id: int) -> Dict[str, Any]:
    try:
        operation = trace.operation(op_id)
    except KeyError:
        return {"op_id": op_id, "kind": "?", "label": "", "parent": None,
                "meta": {}}
    return {
        "op_id": operation.op_id,
        "kind": operation.kind,
        "label": operation.label,
        "parent": operation.parent,
        "meta": _jsonable(operation.meta),
    }


def _source_of(trace: Trace, op_id: int) -> str:
    """Script/HTML provenance of an operation, segment chain unwound."""
    chain: List[str] = []
    seen = set()
    current: Optional[int] = op_id
    while current is not None and current not in seen:
        seen.add(current)
        try:
            operation = trace.operation(current)
        except KeyError:
            chain.append(f"op#{current}")
            break
        chain.append(operation.describe())
        current = operation.parent
    return " ⊂ ".join(chain)


def _access_dict(race: Race, role: str) -> Dict[str, Any]:
    access = race.prior if role == "prior" else race.current
    return {
        "kind": access.kind,
        "op_id": access.op_id,
        "seq": access.seq,
        "is_call": access.is_call,
        "is_function_decl": access.is_function_decl,
        "detail": _jsonable(access.detail),
    }


def _timeline(trace: Trace, race: Race, seq: int) -> List[Dict[str, Any]]:
    """Accesses to the racing location nearest to ``seq``, in order."""
    touches = trace.accesses_to(race.location)
    touches.sort(key=lambda a: abs(a.seq - seq))
    window = sorted(touches[:TIMELINE_WINDOW], key=lambda a: a.seq)
    racing = {race.prior.seq, race.current.seq}
    return [
        {
            "seq": access.seq,
            "op_id": access.op_id,
            "kind": access.kind,
            "racing": access.seq in racing,
        }
        for access in window
    ]


def _steps(witness_path) -> List[Dict[str, Any]]:
    return [
        {"src": step.src, "dst": step.dst, "rule": step.rule}
        for step in witness_path
    ]


def _explanation(race: Race, witness: RaceWitness, trace: Trace) -> str:
    a, b = race.prior.op_id, race.current.op_id
    if witness.ordered:
        return (
            f"ops {a} and {b} are HB-ordered — this pair should not have "
            "been reported (backend inconsistency)"
        )
    if witness.nca is None:
        return (
            f"no operation happens before both op {a} and op {b}: their "
            "happens-before cones are disjoint, so no rule chain can order "
            "them"
        )
    rules_a = {step.rule for step in witness.path_a}
    rules_b = {step.rule for step in witness.path_b}
    return (
        f"op {witness.nca} ({_source_of(trace, witness.nca)}) is the "
        f"nearest operation ordered before both sides; rules "
        f"{sorted(rules_a) or ['-']} order it before op {a} and rules "
        f"{sorted(rules_b) or ['-']} before op {b}, but no rule chain "
        f"connects op {a} and op {b} in either direction — the pair can "
        "happen concurrently"
    )


def build_race_evidence(
    classified: ClassifiedRace, trace: Trace, hb, obs=None
) -> RaceEvidence:
    """Build the evidence record for one classified race.

    ``hb`` is any object with the witness surface (``predecessors`` /
    ``edge_rule``) — every :func:`~repro.core.hb.backend.make_backend`
    product and the standalone chain clocks qualify.
    """
    obs = obs if obs is not None else NULL
    race = classified.race
    witness = race_witness(hb, race.prior.op_id, race.current.op_id)
    nca: Optional[Dict[str, Any]] = None
    if witness.nca is not None:
        nca = _operation_dict(trace, witness.nca)
    sides = {}
    for role, path in (("prior", witness.path_a), ("current", witness.path_b)):
        access = race.prior if role == "prior" else race.current
        sides[role] = SideEvidence(
            role=role,
            access=_access_dict(race, role),
            operation=_operation_dict(trace, access.op_id),
            source=_source_of(trace, access.op_id),
            path_from_nca=_steps(path),
            timeline=_timeline(trace, race, access.seq),
        )
    evidence = RaceEvidence(
        fingerprint=race_fingerprint(race, trace),
        kind=race.kind,
        location=race.location.describe(),
        location_token=location_token(race.location),
        location_family=location_family(race.location),
        race_type=classified.race_type,
        harmful=classified.harmful,
        reason=classified.reason,
        nca=nca,
        common_ancestor_count=witness.common_ancestor_count,
        prior=sides["prior"],
        current=sides["current"],
        explanation=_explanation(race, witness, trace),
    )
    if obs.enabled:
        obs.count("evidence.record")
        obs.count(
            "evidence.path_edges",
            len(evidence.prior.path_from_nca)
            + len(evidence.current.path_from_nca),
        )
    return evidence


def attach_evidence(
    report: RaceReport, trace: Trace, hb, obs=None
) -> List[RaceEvidence]:
    """Build and attach evidence for every race in a classified report."""
    obs = obs if obs is not None else NULL
    records: List[RaceEvidence] = []
    with obs.span("explain.evidence", cat="explain", races=report.total()):
        for classified in report.races:
            classified.evidence = build_race_evidence(
                classified, trace, hb, obs=obs
            )
            records.append(classified.evidence)
    return records
