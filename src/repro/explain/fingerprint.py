"""Stable race fingerprints for deduplication and clustering.

A fingerprint identifies *what raced where*, not the particular execution
that exposed it: two corpus runs (different seeds, different interleaving
depths, different HB backends) that surface the same logical race should
produce the same fingerprint, so reports can be deduplicated within a run
and clustered across runs.

Volatile identity therefore never enters the hash: operation ids change
with scheduling, and ``VarLocation.cell_id`` / ``PropLocation.object_id``
are heap-allocation order.  What does enter is the stable shape of the
race — access kinds, the classification flags, the operations' *labels*
(``"exe(<script src=hint.js>)"`` is scheduling-independent), and a
location token built from names/ids rather than allocation counters.  The
two sides are sorted so prior/current role flips between schedules do not
split a cluster.
"""

from __future__ import annotations

import hashlib

from ..core.access import Access
from ..core.detector import Race
from ..core.locations import (
    CollectionLocation,
    DomPropLocation,
    ElementKey,
    HandlerLocation,
    HElemLocation,
    Location,
    PropLocation,
    TimerSlotLocation,
    VarLocation,
)
from ..core.trace import Trace

#: Hex digest length kept in reports; 64 bits is ample for per-corpus dedup.
FINGERPRINT_HEX_CHARS = 16


def _element_token(key: ElementKey) -> str:
    """Stable token for an element key: prefer the ``id`` attribute."""
    if key[0] == "id":
        return f"#{key[2]}"
    return f"node{key[1]}"


def location_token(location: Location) -> str:
    """A scheduling-stable token naming one logical location."""
    if isinstance(location, VarLocation):
        return f"var:{location.name or '?'}"
    if isinstance(location, PropLocation):
        return f"prop:{location.name}"
    if isinstance(location, DomPropLocation):
        return (
            f"domprop:{_element_token(location.element)}"
            f".{location.name}:{location.tag}"
        )
    if isinstance(location, HElemLocation):
        return f"helem:{_element_token(location.element)}"
    if isinstance(location, CollectionLocation):
        return f"collection:{location.kind}:{location.key}"
    if isinstance(location, HandlerLocation):
        return (
            f"handler:{_element_token(location.element)}"
            f":{location.event}:{location.handler}"
        )
    if isinstance(location, TimerSlotLocation):
        return f"timer:{location.timer_id}"
    raise TypeError(f"not a location: {location!r}")


def _side_token(access: Access, trace: Trace) -> str:
    """Stable token for one side of a race: access shape + operation label."""
    try:
        operation = trace.operation(access.op_id)
        op_part = f"{operation.kind}:{operation.label}"
    except KeyError:
        op_part = "?:?"
    flags = f"{int(access.is_call)}{int(access.is_function_decl)}"
    return f"{access.kind}/{flags}/{op_part}"


def race_fingerprint(race: Race, trace: Trace) -> str:
    """A stable hex fingerprint for one reported race."""
    sides = sorted(
        (_side_token(race.prior, trace), _side_token(race.current, trace))
    )
    payload = "|".join([race.kind, location_token(race.location), *sides])
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_HEX_CHARS]
