"""Explore- and predict-report documents (``repro explore/predict --json``).

Serializes a :class:`~repro.schedule_runner.ExploreReport` — the merged
page×schedule matrix — into a versioned, machine-readable document, plus
a terminal rendering.  The document is deterministic in the exploration
inputs alone: schedule order is matrix order, races sort by fingerprint,
and no wall-clock value is ever included, so two explorations with the
same pages/seed/width emit byte-identical JSON (the property CI pins).

The same treatment applies to :class:`~repro.predict.PredictReport`:
:func:`assemble_predict_document` emits the ``repro predict --json``
document (schema: :data:`repro.explain.schema.PREDICT_SCHEMA`), splitting
predictions into ``predicted+confirmed`` and ``predicted-only``, and
:func:`render_predict_text` renders it for the terminal.

The module is duck-typed over the runner's result objects rather than
importing them, mirroring how :mod:`repro.explain.report_json` accepts
live or serialized evidence interchangeably.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .schema import PREDICT_FORMAT_NAME, PREDICT_FORMAT_VERSION

EXPLORE_FORMAT_NAME = "webracer-explore-report"
EXPLORE_FORMAT_VERSION = 1

#: Keys every assembled document carries at top level.
_REQUIRED_KEYS = (
    "format",
    "version",
    "seed",
    "hb_backend",
    "schedules",
    "pages",
    "totals",
)


def _run_dict(run) -> Dict[str, Any]:
    """One matrix cell's JSON block (no wall-clock fields)."""
    trace = run.trace_dict or {}
    return {
        "schedule": run.sid,
        "policy": run.policy,
        "seed": run.seed,
        "error": run.error,
        "fingerprints": list(run.fingerprints),
        "picks": len(trace.get("picks", [])),
        "divergences": len(trace.get("divergences", [])),
        "choice_points": run.choice_points,
        "operations": run.operations,
        "replay_ok": run.replay_ok,
    }


def assemble_explore_document(
    report, minimizations: Optional[List[Any]] = None
) -> Dict[str, Any]:
    """The versioned JSON document for one exploration.

    ``minimizations`` takes :class:`~repro.schedule_runner.MinimizationResult`
    objects (or their ``to_dict`` output) and lands under a
    ``"minimizations"`` key only when present, so plain explorations stay
    byte-stable across tool versions that add minimization.
    """
    pages = []
    for page in report.pages:
        pages.append(
            {
                "url": page.url,
                "runs": [_run_dict(run) for run in page.runs],
                "races": [dict(race) for race in page.races],
            }
        )
    document: Dict[str, Any] = {
        "format": EXPLORE_FORMAT_NAME,
        "version": EXPLORE_FORMAT_VERSION,
        "seed": report.seed,
        "hb_backend": report.hb_backend,
        "schedules": [spec.to_dict() for spec in report.specs],
        "pages": pages,
        "totals": {
            "pages": len(report.pages),
            "schedules_run": sum(
                1 for page in report.pages for run in page.runs if run.ok
            ),
            "schedules_failed": sum(
                1 for page in report.pages for run in page.runs if not run.ok
            ),
            "races_union": report.union_count(),
            "races_stable": report.stable_count(),
            "races_schedule_sensitive": report.sensitive_count(),
        },
    }
    if minimizations:
        document["minimizations"] = [
            entry if isinstance(entry, dict) else entry.to_dict()
            for entry in minimizations
        ]
    return document


def validate_explore_document(document: Dict[str, Any]) -> None:
    """Structural check; raises ``ValueError`` on a malformed document."""
    if not isinstance(document, dict):
        raise ValueError("explore document must be an object")
    for key in _REQUIRED_KEYS:
        if key not in document:
            raise ValueError(f"explore document missing key {key!r}")
    if document["format"] != EXPLORE_FORMAT_NAME:
        raise ValueError(f"unexpected format {document['format']!r}")
    if document["version"] != EXPLORE_FORMAT_VERSION:
        raise ValueError(f"unexpected version {document['version']!r}")
    for page in document["pages"]:
        for race in page["races"]:
            for key in ("fingerprint", "stable", "witnesses"):
                if key not in race:
                    raise ValueError(
                        f"race entry missing key {key!r} on {page['url']!r}"
                    )


def write_explore_json(document: Dict[str, Any], path: str) -> None:
    """Validate and write the document (sorted keys, trailing newline)."""
    validate_explore_document(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# predict documents (``repro predict``)


def _witness_run_dict(run) -> Dict[str, Any]:
    """One witness schedule run's JSON block (no wall-clock fields)."""
    trace = run.trace_dict or {}
    return {
        "schedule": run.sid,
        "policy": run.policy,
        "seed": run.seed,
        "error": run.error,
        "fingerprints": list(run.fingerprints),
        "replay_ok": run.replay_ok,
        "picks": len(trace.get("picks", [])),
        "divergences": len(trace.get("divergences", [])),
    }


def _prediction_dict(prediction, with_evidence: bool) -> Dict[str, Any]:
    """One prediction's JSON block."""
    witness = None
    if prediction.confirmed:
        witness = {
            "schedule": prediction.witness_sid,
            "policy": prediction.witness_policy,
            "seed": prediction.witness_seed,
        }
    entry: Dict[str, Any] = {
        "fingerprint": prediction.fingerprint,
        "status": prediction.status,
        "outcome": prediction.outcome,
        "kind": prediction.kind,
        "location": prediction.location,
        "description": prediction.description,
        "op_pair": list(prediction.op_pair),
        "race_type": prediction.race_type,
        "harmful": prediction.harmful,
        "blocking_rf": [dict(edge) for edge in prediction.blocking_rf],
        "confirmed": prediction.confirmed,
        "witness": witness,
        "replay_ok": prediction.replay_ok,
        "minimized": prediction.minimized,
    }
    if with_evidence:
        entry["evidence"] = prediction.evidence
    return entry


def assemble_predict_document(
    reports: List[Any], with_evidence: bool = True
) -> Dict[str, Any]:
    """The versioned JSON document for one prediction run.

    ``reports`` is a list of :class:`~repro.predict.PredictReport` (one
    per page).  Seed/backend/budget are shared across pages by
    construction (one CLI invocation), so they live at top level; the
    document carries no wall-clock values and is deterministic in the
    prediction inputs alone.
    """
    pages = []
    for report in reports:
        pages.append(
            {
                "url": report.page,
                "error": report.error,
                "observed": {
                    "fingerprints": list(report.observed_fingerprints),
                    "races": dict(report.observed_races),
                    "pairs": report.observed_pairs,
                },
                "shb": {
                    "summary": report.shb_summary,
                    "rf_edges": report.rf_edges,
                    "rf_racy": report.rf_racy,
                },
                "witness_runs": [
                    _witness_run_dict(run) for run in report.witness_runs
                ],
                "predictions": [
                    _prediction_dict(prediction, with_evidence)
                    for prediction in report.predictions
                ],
                "runs_executed": report.runs_executed,
            }
        )
    first = reports[0] if reports else None
    predicted = sum(len(report.predictions) for report in reports)
    confirmed = sum(len(report.confirmed()) for report in reports)
    return {
        "format": PREDICT_FORMAT_NAME,
        "version": PREDICT_FORMAT_VERSION,
        "seed": first.seed if first else 0,
        "hb_backend": first.hb_backend if first else "graph",
        "budget": first.budget if first else 0,
        "pages": pages,
        "totals": {
            "pages": len(reports),
            "observed": sum(
                len(report.observed_fingerprints) for report in reports
            ),
            "predicted": predicted,
            "confirmed": confirmed,
            "predicted_only": predicted - confirmed,
        },
    }


def validate_predict_document(document: Dict[str, Any]) -> None:
    """Schema check; raises ``ValueError`` on a malformed document."""
    from .schema import validate_predict_report

    validate_predict_report(document)


def write_predict_json(document: Dict[str, Any], path: str) -> None:
    """Validate and write the document (sorted keys, trailing newline)."""
    validate_predict_document(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_predict_text(document: Dict[str, Any]) -> str:
    """Human-readable prediction summary for the terminal."""
    lines: List[str] = []
    totals = document["totals"]
    lines.append(
        f"predicted races for {totals['pages']} page(s) "
        f"(seed {document['seed']}, hb={document['hb_backend']}, "
        f"witness budget {document['budget']})"
    )
    for page in document["pages"]:
        if page["error"] is not None:
            lines.append(f"\n{page['url']}: FAILED — {page['error']}")
            continue
        observed = page["observed"]["fingerprints"]
        lines.append(
            f"\n{page['url']}: {len(observed)} observed fingerprint(s), "
            f"{len(page['predictions'])} predicted "
            f"({page['shb']['rf_edges']} reads-from edges, "
            f"{page['shb']['rf_racy']} racy)"
        )
        if observed:
            lines.append(f"  observed: {', '.join(observed)}")
        if not page["predictions"]:
            lines.append(
                "  no additional races predicted from the recorded trace"
            )
        for prediction in page["predictions"]:
            suffix = ""
            if prediction["confirmed"]:
                witness = prediction["witness"] or {}
                suffix = f"  witness: {witness.get('schedule', '?')}"
                if prediction.get("replay_ok"):
                    suffix += " [replay verified]"
                minimized = prediction.get("minimized")
                if minimized:
                    suffix += (
                        f" [minimized to "
                        f"{minimized['minimized_divergences']} divergence(s)]"
                    )
            lines.append(
                f"  {prediction['fingerprint']}  "
                f"{prediction['outcome']:<19s} [{prediction['status']}] "
                f"{prediction['race_type']}"
                f"{' harmful' if prediction.get('harmful') else ''}{suffix}"
            )
            lines.append(f"    {prediction['description']}")
            if prediction["blocking_rf"]:
                flips = ", ".join(
                    f"{edge['src']}->{edge['dst']} ({edge['location']})"
                    for edge in prediction["blocking_rf"]
                )
                lines.append(f"    requires flipping reads-from: {flips}")
    lines.append(
        f"\n{totals['predicted']} prediction(s): "
        f"{totals['confirmed']} confirmed by replay, "
        f"{totals['predicted_only']} predicted-only"
    )
    return "\n".join(lines)


def render_explore_text(document: Dict[str, Any]) -> str:
    """Human-readable exploration summary for the terminal."""
    lines: List[str] = []
    totals = document["totals"]
    lines.append(
        f"explored {totals['pages']} page(s) × "
        f"{len(document['schedules'])} schedule(s) "
        f"(seed {document['seed']}, hb={document['hb_backend']})"
    )
    for page in document["pages"]:
        ok = [run for run in page["runs"] if run["error"] is None]
        failed = [run for run in page["runs"] if run["error"] is not None]
        lines.append(f"\n{page['url']}: {len(ok)} schedule(s) completed")
        for run in failed:
            lines.append(f"  FAILED {run['schedule']}: {run['error']}")
        if not page["races"]:
            lines.append("  no races under any schedule")
        for race in page["races"]:
            kind = "stable" if race["stable"] else "schedule-sensitive"
            witnesses = ", ".join(race["witnesses"])
            verified = race.get("replay_verified")
            suffix = "" if verified is None else (
                " [replay verified]" if verified else " [replay FAILED]"
            )
            lines.append(
                f"  {race['fingerprint']}  {kind:<18s} "
                f"{race['race_type']}"
                f"{' harmful' if race.get('harmful') else ''}"
                f"  witnesses: {witnesses}{suffix}"
            )
            lines.append(f"    {race.get('description', '')}")
    lines.append(
        f"\n{totals['races_union']} distinct race(s): "
        f"{totals['races_stable']} stable, "
        f"{totals['races_schedule_sensitive']} schedule-sensitive"
    )
    for entry in document.get("minimizations", []):
        lines.append(
            f"minimized {entry['fingerprint']} on {entry['page']}: "
            f"{entry['original_divergences']} → "
            f"{entry['minimized_divergences']} divergence(s) "
            f"({entry['tests_run']} test runs)"
        )
    return "\n".join(lines)
