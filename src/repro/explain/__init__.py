"""Race provenance and explainability (``repro.explain``).

Turns every reported race into a structured, self-contained **evidence
record** — the rule-labeled happens-before ancestry of both racing
operations up from their nearest common ancestor, source attribution and
access timelines, the Section 2/6 classification verdict, and a stable
fingerprint for cross-run clustering.  Three consumers:

* ``--report-json`` (:mod:`repro.explain.report_json`) — a
  schema-validated machine-readable document
  (:data:`repro.explain.schema.REPORT_SCHEMA`);
* ``--report-html`` (:mod:`repro.explain.html_report`) — a dependency-free
  single-file HTML report with per-race evidence views and operation-lane
  timelines, aggregated per-site on corpus runs;
* ``repro explain`` (:mod:`repro.explain.render_text`) — evidence for a
  captured trace, printed to the terminal.

Evidence is built after detection from the run's existing trace and HB
store; plain runs without report flags construct nothing and pay nothing
(the null-sink contract of :mod:`repro.obs` extends here).
"""

from .evidence import (
    RaceEvidence,
    SideEvidence,
    attach_evidence,
    build_race_evidence,
)
from .fingerprint import location_token, race_fingerprint
from .html_report import render_html_report, write_html_report
from .render_text import render_all_evidence, render_evidence
from .report_json import (
    assemble_report_document,
    build_clusters,
    build_report_document,
    page_evidence_dict,
    write_report_json,
)
from .schedule_report import (
    EXPLORE_FORMAT_NAME,
    EXPLORE_FORMAT_VERSION,
    assemble_explore_document,
    assemble_predict_document,
    render_explore_text,
    render_predict_text,
    validate_explore_document,
    validate_predict_document,
    write_explore_json,
    write_predict_json,
)
from .schema import (
    HISTORY_FORMAT_NAME,
    HISTORY_FORMAT_VERSION,
    HISTORY_SCHEMA,
    PREDICT_FORMAT_NAME,
    PREDICT_FORMAT_VERSION,
    PREDICT_SCHEMA,
    REPORT_SCHEMA,
    RUN_RECORD_FORMAT_NAME,
    RUN_RECORD_FORMAT_VERSION,
    RUN_RECORD_SCHEMA,
    validate_history_report,
    validate_predict_report,
    validate_report,
    validate_report_file,
    validate_run_record,
)
from .trend_report import (
    assemble_history_document,
    render_history_json,
    render_history_text,
    render_trend_html,
    write_trend_html,
)

__all__ = [
    "EXPLORE_FORMAT_NAME",
    "EXPLORE_FORMAT_VERSION",
    "HISTORY_FORMAT_NAME",
    "HISTORY_FORMAT_VERSION",
    "HISTORY_SCHEMA",
    "PREDICT_FORMAT_NAME",
    "PREDICT_FORMAT_VERSION",
    "PREDICT_SCHEMA",
    "REPORT_SCHEMA",
    "RUN_RECORD_FORMAT_NAME",
    "RUN_RECORD_FORMAT_VERSION",
    "RUN_RECORD_SCHEMA",
    "assemble_history_document",
    "render_history_json",
    "render_history_text",
    "render_trend_html",
    "validate_history_report",
    "validate_run_record",
    "write_trend_html",
    "assemble_explore_document",
    "assemble_predict_document",
    "render_explore_text",
    "render_predict_text",
    "validate_explore_document",
    "validate_predict_document",
    "validate_predict_report",
    "write_explore_json",
    "write_predict_json",
    "RaceEvidence",
    "SideEvidence",
    "assemble_report_document",
    "attach_evidence",
    "build_clusters",
    "page_evidence_dict",
    "build_race_evidence",
    "build_report_document",
    "location_token",
    "race_fingerprint",
    "render_all_evidence",
    "render_evidence",
    "render_html_report",
    "validate_report",
    "validate_report_file",
    "write_html_report",
    "write_report_json",
]
