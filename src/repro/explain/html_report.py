"""Self-contained single-file HTML race report (``--report-html``).

Renders the validated ``--report-json`` document (one source of truth for
both formats) into a dependency-free HTML file: no external scripts,
stylesheets, fonts or images — everything is inline, so the file can be
attached to a bug report and opened anywhere.  Each race gets an evidence
card (classification, harmfulness reason, the rule-labeled HB ancestry of
both sides up from their nearest common ancestor) and an operation-lane
timeline (inline SVG) of the accesses around the racing pair.  Corpus runs
aggregate per-site sections under a cross-site fingerprint-cluster table.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List

_CSS = """
body { font-family: ui-sans-serif, system-ui, sans-serif; margin: 2rem;
       color: #1a1c23; background: #fff; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
code, .mono { font-family: ui-monospace, monospace; font-size: 0.85rem; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #d4d7dd; padding: 0.3rem 0.6rem;
         text-align: left; font-size: 0.85rem; }
th { background: #f0f2f5; }
.race { border: 1px solid #d4d7dd; border-radius: 6px; margin: 1rem 0;
        padding: 0.75rem 1rem; }
.race.harmful { border-color: #c0392b; }
.badge { display: inline-block; border-radius: 4px; padding: 0.1rem 0.45rem;
         font-size: 0.75rem; font-weight: 600; margin-right: 0.4rem; }
.badge.harmful { background: #c0392b; color: #fff; }
.badge.benign { background: #e5e8ec; color: #444; }
.badge.type { background: #2c5f8a; color: #fff; }
.fp { color: #777; font-size: 0.75rem; }
.sides { display: flex; gap: 1.5rem; flex-wrap: wrap; }
.side { flex: 1 1 18rem; background: #f8f9fb; border-radius: 6px;
        padding: 0.5rem 0.75rem; }
.side h4 { margin: 0.2rem 0; font-size: 0.9rem; }
.path { margin: 0.3rem 0 0.3rem 0; padding-left: 1.1rem; }
.path li { font-size: 0.8rem; margin: 0.15rem 0; }
.rule { color: #2c5f8a; font-weight: 600; }
.explanation { background: #fdf6e3; border-radius: 6px;
               padding: 0.5rem 0.75rem; font-size: 0.85rem; }
.timeline { margin-top: 0.6rem; }
svg text { font-family: ui-monospace, monospace; }
details > summary { cursor: pointer; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _badges(evidence: Dict[str, Any]) -> str:
    verdict = "harmful" if evidence["harmful"] else "benign"
    return (
        f'<span class="badge type">{_esc(evidence["race_type"])}</span>'
        f'<span class="badge {verdict}">{verdict.upper()}</span>'
        f'<span class="badge benign">{_esc(evidence["kind"])}</span>'
    )


def _path_html(side: Dict[str, Any]) -> str:
    steps = side["path_from_nca"]
    if not steps:
        return "<p class='mono'>no common-ancestor path (disjoint cone)</p>"
    items = "".join(
        f"<li><code>{step['src']} &#x227a; {step['dst']}</code> "
        f"<span class='rule'>[{_esc(step['rule'] or '?')}]</span></li>"
        for step in steps
    )
    return f"<ol class='path'>{items}</ol>"


def _timeline_svg(evidence: Dict[str, Any]) -> str:
    """Operation-lane timeline of accesses around the racing pair."""
    entries: List[Dict[str, Any]] = []
    seen = set()
    for side in (evidence["prior"], evidence["current"]):
        for entry in side["timeline"]:
            key = (entry["seq"], entry["op_id"])
            if key not in seen:
                seen.add(key)
                entries.append(entry)
    if not entries:
        return ""
    entries.sort(key=lambda e: e["seq"])
    lanes = sorted({entry["op_id"] for entry in entries})
    lane_of = {op: index for index, op in enumerate(lanes)}
    seqs = [entry["seq"] for entry in entries]
    lo, hi = min(seqs), max(seqs)
    span = max(hi - lo, 1)
    left, lane_h, top = 90, 26, 14
    width = 620
    height = top * 2 + lane_h * len(lanes)
    parts = [
        f'<svg class="timeline" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" '
        'aria-label="operation-lane access timeline">'
    ]
    for op, index in lane_of.items():
        y = top + index * lane_h + lane_h // 2
        parts.append(
            f'<line x1="{left}" y1="{y}" x2="{width - 12}" y2="{y}" '
            'stroke="#d4d7dd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="4" y="{y + 4}" font-size="11" fill="#555">'
            f"op {op}</text>"
        )
    for entry in entries:
        x = left + (entry["seq"] - lo) / span * (width - left - 30)
        y = top + lane_of[entry["op_id"]] * lane_h + lane_h // 2
        racing = entry.get("racing")
        color = "#c0392b" if racing else "#2c5f8a"
        if entry["kind"] == "write":
            parts.append(
                f'<rect x="{x - 5:.1f}" y="{y - 5}" width="10" height="10" '
                f'fill="{color}"><title>seq {entry["seq"]}: write by op '
                f'{entry["op_id"]}</title></rect>'
            )
        else:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y}" r="5" fill="none" '
                f'stroke="{color}" stroke-width="2">'
                f'<title>seq {entry["seq"]}: read by op {entry["op_id"]}'
                "</title></circle>"
            )
    parts.append("</svg>")
    legend = (
        "<p class='fp'>lanes = operations; squares = writes, circles = "
        "reads; red = the racing pair; x = trace order (seq)</p>"
    )
    return "".join(parts) + legend


def _side_html(side: Dict[str, Any]) -> str:
    access = side["access"]
    flags = []
    if access["is_call"]:
        flags.append("call")
    if access["is_function_decl"]:
        flags.append("function-decl")
    flag_text = f" [{', '.join(flags)}]" if flags else ""
    return (
        "<div class='side'>"
        f"<h4>{_esc(side['role'])}: {_esc(access['kind'])}{flag_text} "
        f"by op {access['op_id']}</h4>"
        f"<p class='mono'>{_esc(side['source'])}</p>"
        f"<p class='fp'>trace seq {access['seq']}</p>"
        f"{_path_html(side)}"
        "</div>"
    )


def _race_html(evidence: Dict[str, Any]) -> str:
    nca = evidence["nca"]
    if nca is None:
        nca_text = "none — the two cones share no ancestor"
    else:
        nca_text = (
            f"op {nca['op_id']} "
            f"({_esc(nca.get('label') or nca.get('kind', '?'))})"
        )
    harmful_class = " harmful" if evidence["harmful"] else ""
    return (
        f"<div class='race{harmful_class}'>"
        f"<div>{_badges(evidence)} "
        f"<code>{_esc(evidence['location']['describe'])}</code> "
        f"<span class='fp'>fingerprint {_esc(evidence['fingerprint'])}"
        "</span></div>"
        f"<p>{_esc(evidence['reason'])}</p>"
        f"<p class='mono'>nearest common HB ancestor: {nca_text} "
        f"(common ancestors: {evidence['common_ancestor_count']})</p>"
        f"<div class='sides'>{_side_html(evidence['prior'])}"
        f"{_side_html(evidence['current'])}</div>"
        f"<details><summary>why these can happen concurrently</summary>"
        f"<p class='explanation'>{_esc(evidence['explanation'])}</p>"
        "</details>"
        f"{_timeline_svg(evidence)}"
        "</div>"
    )


def _clusters_html(clusters: List[Dict[str, Any]]) -> str:
    if not clusters:
        return "<p>no races reported.</p>"
    rows = "".join(
        "<tr>"
        f"<td class='mono'>{_esc(cluster['fingerprint'])}</td>"
        f"<td>{_esc(cluster['race_type'])}</td>"
        f"<td>{'yes' if cluster['harmful'] else 'no'}</td>"
        f"<td>{cluster['count']}</td>"
        f"<td class='mono'>{_esc(cluster.get('location', ''))}</td>"
        f"<td>{_esc(', '.join(cluster['pages']))}</td>"
        "</tr>"
        for cluster in clusters
    )
    return (
        "<table><tr><th>fingerprint</th><th>type</th><th>harmful</th>"
        "<th>races</th><th>location</th><th>pages</th></tr>"
        f"{rows}</table>"
    )


def _page_html(page: Dict[str, Any]) -> str:
    races = page["races"]
    filters = ", ".join(
        f"{name}: {count}" for name, count in page["filters_removed"].items()
    ) or "none configured"
    body = "".join(_race_html(e) for e in page["evidence"]) or (
        "<p>no filtered races on this page.</p>"
    )
    return (
        f"<h2>{_esc(page['url'])}</h2>"
        f"<p>{races['raw']} raw races, {races['filtered']} after filtering, "
        f"{races['harmful']} harmful &middot; hb backend "
        f"<code>{_esc(page['hb_backend'])}</code> &middot; filter "
        f"suppression — {_esc(filters)}</p>"
        f"{body}"
    )


def render_html_report(document: Dict[str, Any]) -> str:
    """Render one validated report document to a self-contained HTML page."""
    totals = document["totals"]
    pages = document["pages"]
    title = "WebRacer race report"
    if len(pages) == 1:
        title += f" — {pages[0]['url']}"
    else:
        title += f" — {len(pages)} sites"
    sections = "".join(_page_html(page) for page in pages)
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        f"<p>mode <code>{_esc(document['mode'])}</code> &middot; "
        f"hb backend <code>{_esc(document['hb_backend'])}</code> &middot; "
        f"{totals['races']['filtered']} reported races "
        f"({totals['races']['harmful']} harmful) &middot; "
        f"{totals['distinct_fingerprints']} distinct fingerprints</p>"
        "<h2>Race clusters (deduplicated by fingerprint)</h2>"
        f"{_clusters_html(document['clusters'])}"
        f"{sections}"
        "</body></html>"
    )


def write_html_report(document: Dict[str, Any], path: str) -> None:
    """Write the HTML report for a validated document."""
    with open(path, "w") as handle:
        handle.write(render_html_report(document))
