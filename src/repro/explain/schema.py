"""The race-report JSON schema, shipped and enforced.

Like :mod:`repro.obs.trace_event`, the machine-readable race report is a
contract: :data:`REPORT_SCHEMA` is a JSON-Schema-style document describing
exactly what ``--report-json`` emits, and :func:`validate_report` enforces
it without external dependencies (the container has no ``jsonschema``
package, so a small structural validator covering the subset the schema
uses — ``type``, ``properties``, ``required``, ``items``, ``enum``,
``additionalProperties`` — is implemented here).  The CLI validates every
report before writing it, and the tests validate emitted files end to end.
"""

from __future__ import annotations

from typing import Any, Dict, List

FORMAT_NAME = "webracer-race-report"
FORMAT_VERSION = 1

_WITNESS_STEP = {
    "type": "object",
    "required": ["src", "dst", "rule"],
    "properties": {
        "src": {"type": "integer"},
        "dst": {"type": "integer"},
        "rule": {"type": "string"},
    },
}

_TIMELINE_ENTRY = {
    "type": "object",
    "required": ["seq", "op_id", "kind", "racing"],
    "properties": {
        "seq": {"type": "integer"},
        "op_id": {"type": "integer"},
        "kind": {"type": "string", "enum": ["read", "write"]},
        "racing": {"type": "boolean"},
    },
}

_OPERATION = {
    "type": "object",
    "required": ["op_id", "kind", "label"],
    "properties": {
        "op_id": {"type": "integer"},
        "kind": {"type": "string"},
        "label": {"type": "string"},
        "parent": {"type": ["integer", "null"]},
        "meta": {"type": "object"},
    },
}

_SIDE = {
    "type": "object",
    "required": [
        "role", "access", "operation", "source", "path_from_nca", "timeline",
    ],
    "properties": {
        "role": {"type": "string", "enum": ["prior", "current"]},
        "access": {
            "type": "object",
            "required": ["kind", "op_id", "seq", "is_call", "is_function_decl"],
            "properties": {
                "kind": {"type": "string", "enum": ["read", "write"]},
                "op_id": {"type": "integer"},
                "seq": {"type": "integer"},
                "is_call": {"type": "boolean"},
                "is_function_decl": {"type": "boolean"},
                "detail": {"type": "object"},
            },
        },
        "operation": _OPERATION,
        "source": {"type": "string"},
        "path_from_nca": {"type": "array", "items": _WITNESS_STEP},
        "timeline": {"type": "array", "items": _TIMELINE_ENTRY},
    },
}

_EVIDENCE = {
    "type": "object",
    "required": [
        "fingerprint", "kind", "location", "race_type", "harmful", "reason",
        "nca", "common_ancestor_count", "prior", "current", "explanation",
    ],
    "properties": {
        "fingerprint": {"type": "string"},
        "kind": {"type": "string", "enum": ["read-write", "write-write"]},
        "location": {
            "type": "object",
            "required": ["describe", "token", "family"],
            "properties": {
                "describe": {"type": "string"},
                "token": {"type": "string"},
                "family": {
                    "type": "string",
                    "enum": ["jsvar", "helem", "eloc"],
                },
            },
        },
        "race_type": {
            "type": "string",
            "enum": ["variable", "html", "function", "event_dispatch"],
        },
        "harmful": {"type": "boolean"},
        "reason": {"type": "string"},
        "nca": {"type": ["object", "null"]},
        "common_ancestor_count": {"type": "integer"},
        "prior": _SIDE,
        "current": _SIDE,
        "explanation": {"type": "string"},
    },
}

_COUNTS = {
    "type": "object",
    "required": ["raw", "filtered", "harmful"],
    "properties": {
        "raw": {"type": "integer"},
        "filtered": {"type": "integer"},
        "harmful": {"type": "integer"},
    },
}

_PAGE = {
    "type": "object",
    "required": ["url", "hb_backend", "races", "filters_removed", "evidence"],
    "properties": {
        "url": {"type": "string"},
        "hb_backend": {"type": "string"},
        "races": _COUNTS,
        "filters_removed": {"type": "object"},
        "evidence": {"type": "array", "items": _EVIDENCE},
    },
}

_CLUSTER = {
    "type": "object",
    "required": ["fingerprint", "count", "pages", "race_type", "harmful"],
    "properties": {
        "fingerprint": {"type": "string"},
        "count": {"type": "integer"},
        "pages": {"type": "array", "items": {"type": "string"}},
        "race_type": {"type": "string"},
        "harmful": {"type": "boolean"},
        "location": {"type": "string"},
    },
}

REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "format", "version", "mode", "hb_backend", "pages", "clusters",
        "totals",
    ],
    "properties": {
        "format": {"type": "string", "enum": [FORMAT_NAME]},
        "version": {"type": "integer", "enum": [FORMAT_VERSION]},
        "mode": {"type": "string", "enum": ["check", "corpus", "explain"]},
        "hb_backend": {"type": "string"},
        "pages": {"type": "array", "items": _PAGE},
        "clusters": {"type": "array", "items": _CLUSTER},
        "totals": {
            "type": "object",
            "required": ["races", "evidence_records", "distinct_fingerprints"],
            "properties": {
                "races": _COUNTS,
                "evidence_records": {"type": "integer"},
                "distinct_fingerprints": {"type": "integer"},
            },
        },
    },
}

PREDICT_FORMAT_NAME = "webracer-predict-report"
PREDICT_FORMAT_VERSION = 1

_RF_EDGE = {
    "type": "object",
    "required": ["src", "dst", "location"],
    "properties": {
        "src": {"type": "integer"},
        "dst": {"type": "integer"},
        "location": {"type": "string"},
    },
}

_WITNESS_RUN = {
    "type": "object",
    "required": ["schedule", "policy", "seed", "error", "fingerprints",
                 "replay_ok"],
    "properties": {
        "schedule": {"type": "string"},
        "policy": {"type": "string"},
        "seed": {"type": ["integer", "null"]},
        "error": {"type": ["string", "null"]},
        "fingerprints": {"type": "array", "items": {"type": "string"}},
        "replay_ok": {"type": ["boolean", "null"]},
        "picks": {"type": "integer"},
        "divergences": {"type": "integer"},
    },
}

_MINIMIZATION = {
    "type": "object",
    "required": ["fingerprint", "page", "original_divergences",
                 "minimized_divergences", "kept_divergences", "tests_run"],
    "properties": {
        "fingerprint": {"type": "string"},
        "page": {"type": "string"},
        "original_divergences": {"type": "integer"},
        "minimized_divergences": {"type": "integer"},
        "kept_divergences": {"type": "array", "items": {"type": "integer"}},
        "tests_run": {"type": "integer"},
        "minimized_trace": {"type": "object"},
    },
}

_PREDICTION = {
    "type": "object",
    "required": [
        "fingerprint", "status", "outcome", "kind", "location",
        "description", "op_pair", "race_type", "harmful", "blocking_rf",
        "confirmed", "witness", "replay_ok", "minimized",
    ],
    "properties": {
        "fingerprint": {"type": "string"},
        "status": {"type": "string", "enum": ["schedulable", "conditional"]},
        "outcome": {
            "type": "string",
            "enum": ["predicted+confirmed", "predicted-only"],
        },
        "kind": {"type": "string", "enum": ["read-write", "write-write"]},
        "location": {"type": "string"},
        "description": {"type": "string"},
        "op_pair": {"type": "array", "items": {"type": "integer"}},
        "race_type": {
            "type": "string",
            "enum": ["variable", "html", "function", "event_dispatch"],
        },
        "harmful": {"type": "boolean"},
        "blocking_rf": {"type": "array", "items": _RF_EDGE},
        "confirmed": {"type": "boolean"},
        "witness": {
            "type": ["object", "null"],
            "required": ["schedule", "policy", "seed"],
            "properties": {
                "schedule": {"type": "string"},
                "policy": {"type": "string"},
                "seed": {"type": ["integer", "null"]},
            },
        },
        "replay_ok": {"type": ["boolean", "null"]},
        "minimized": dict(_MINIMIZATION, type=["object", "null"]),
        "evidence": dict(_EVIDENCE, type=["object", "null"]),
    },
}

_PREDICT_PAGE = {
    "type": "object",
    "required": [
        "url", "error", "observed", "shb", "witness_runs", "predictions",
        "runs_executed",
    ],
    "properties": {
        "url": {"type": "string"},
        "error": {"type": ["string", "null"]},
        "observed": {
            "type": "object",
            "required": ["fingerprints", "races", "pairs"],
            "properties": {
                "fingerprints": {"type": "array", "items": {"type": "string"}},
                "races": {"type": "object"},
                "pairs": {"type": "integer"},
            },
        },
        "shb": {
            "type": "object",
            "required": ["summary", "rf_edges", "rf_racy"],
            "properties": {
                "summary": {"type": "string"},
                "rf_edges": {"type": "integer"},
                "rf_racy": {"type": "integer"},
            },
        },
        "witness_runs": {"type": "array", "items": _WITNESS_RUN},
        "predictions": {"type": "array", "items": _PREDICTION},
        "runs_executed": {"type": "integer"},
    },
}

#: The ``repro predict --json`` document contract.
PREDICT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "format", "version", "seed", "hb_backend", "budget", "pages",
        "totals",
    ],
    "properties": {
        "format": {"type": "string", "enum": [PREDICT_FORMAT_NAME]},
        "version": {"type": "integer", "enum": [PREDICT_FORMAT_VERSION]},
        "seed": {"type": "integer"},
        "hb_backend": {"type": "string"},
        "budget": {"type": "integer"},
        "pages": {"type": "array", "items": _PREDICT_PAGE},
        "totals": {
            "type": "object",
            "required": [
                "pages", "observed", "predicted", "confirmed",
                "predicted_only",
            ],
            "properties": {
                "pages": {"type": "integer"},
                "observed": {"type": "integer"},
                "predicted": {"type": "integer"},
                "confirmed": {"type": "integer"},
                "predicted_only": {"type": "integer"},
            },
        },
    },
}

RUN_RECORD_FORMAT_NAME = "webracer-run-record"
RUN_RECORD_FORMAT_VERSION = 1

_RUN_RACE = {
    "type": "object",
    "required": [
        "fingerprint", "verdict", "race_type", "harmful", "location", "page",
    ],
    "properties": {
        "fingerprint": {"type": "string"},
        "verdict": {
            "type": "string",
            "enum": [
                "observed",
                "stable",
                "schedule-sensitive",
                "predicted+confirmed",
                "predicted-only",
            ],
        },
        "race_type": {"type": "string"},
        "harmful": {"type": "boolean"},
        "location": {"type": "string"},
        "page": {"type": "string"},
        "description": {"type": "string"},
        # Which detection tier reported the race (sampling/two-tier runs
        # only): "screen" = the budgeted sampler, "escalated" = exact
        # detection re-run over the recorded trace of a suspicious page.
        "tier": {"type": "string", "enum": ["screen", "escalated"]},
    },
}

#: One ``--ledger`` run record: the ``repro.obs.ledger`` line format.
RUN_RECORD_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "format", "version", "run_id", "timestamp", "command", "config",
        "config_digest", "duration_ms", "phases", "counters", "totals",
        "races",
    ],
    "properties": {
        "format": {"type": "string", "enum": [RUN_RECORD_FORMAT_NAME]},
        "version": {"type": "integer", "enum": [RUN_RECORD_FORMAT_VERSION]},
        "run_id": {"type": "string"},
        "timestamp": {"type": "string"},
        "command": {
            "type": "string",
            "enum": ["check", "corpus", "explore", "predict"],
        },
        "config": {"type": "object"},
        "config_digest": {"type": "string"},
        "duration_ms": {"type": "number"},
        # Phase/counter names are dynamic (span names); values are
        # checked structurally by the ledger's builders.
        "phases": {"type": "object"},
        "counters": {"type": "object"},
        "totals": {"type": "object"},
        "races": {"type": "array", "items": _RUN_RACE},
    },
}

HISTORY_FORMAT_NAME = "webracer-history-report"
HISTORY_FORMAT_VERSION = 1

_HISTORY_RUN = {
    "type": "object",
    "required": [
        "run_id", "timestamp", "command", "config_digest", "duration_ms",
        "races", "phases",
    ],
    "properties": {
        "run_id": {"type": "string"},
        "timestamp": {"type": "string"},
        "command": {"type": "string"},
        "config_digest": {"type": "string"},
        "duration_ms": {"type": "number"},
        "races": {
            "type": "object",
            "required": ["total", "harmful", "by_verdict"],
            "properties": {
                "total": {"type": "integer"},
                "harmful": {"type": "integer"},
                "by_verdict": {"type": "object"},
            },
        },
        "phases": {"type": "object"},
    },
}

_LIFECYCLE_ENTRY = {
    "type": "object",
    "required": [
        "fingerprint", "status", "first_seen", "last_seen", "occurrences",
        "runs_considered", "race_type", "harmful", "location", "verdict",
    ],
    "properties": {
        "fingerprint": {"type": "string"},
        "status": {
            "type": "string",
            "enum": ["new", "persisting", "resolved", "flaky"],
        },
        "first_seen": {"type": "string"},
        "last_seen": {"type": "string"},
        "occurrences": {"type": "integer"},
        "runs_considered": {"type": "integer"},
        "race_type": {"type": "string"},
        "harmful": {"type": "boolean"},
        "location": {"type": "string"},
        "verdict": {"type": "string"},
    },
}

#: The ``repro history --json`` document contract (also what the HTML
#: trend report renders from — one source of truth for both formats).
HISTORY_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "version", "ledger", "runs", "fingerprints",
                 "totals"],
    "properties": {
        "format": {"type": "string", "enum": [HISTORY_FORMAT_NAME]},
        "version": {"type": "integer", "enum": [HISTORY_FORMAT_VERSION]},
        "ledger": {"type": "string"},
        "runs": {"type": "array", "items": _HISTORY_RUN},
        "fingerprints": {"type": "array", "items": _LIFECYCLE_ENTRY},
        "totals": {
            "type": "object",
            "required": [
                "runs", "fingerprints", "new", "persisting", "resolved",
                "flaky",
            ],
            "properties": {
                "runs": {"type": "integer"},
                "fingerprints": {"type": "integer"},
                "new": {"type": "integer"},
                "persisting": {"type": "integer"},
                "resolved": {"type": "integer"},
                "flaky": {"type": "integer"},
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check_type(value: Any, expected, path: str) -> None:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        python_type = _TYPES[name]
        if isinstance(value, python_type):
            # bool is an int subclass; don't let True pass as an integer.
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return
    raise ValueError(
        f"{path}: expected {' or '.join(names)}, "
        f"got {type(value).__name__} ({value!r})"
    )


def _validate(value: Any, schema: Dict[str, Any], path: str) -> None:
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if "enum" in schema and value not in schema["enum"]:
        raise ValueError(f"{path}: {value!r} not in {schema['enum']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise ValueError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            extra = set(value) - set(properties)
            if extra:
                raise ValueError(f"{path}: unexpected keys {sorted(extra)!r}")
        for key, sub_schema in properties.items():
            if key in value:
                _validate(value[key], sub_schema, f"{path}.{key}")
    elif isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{index}]")


def validate_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when ``document`` violates the report schema."""
    _validate(document, REPORT_SCHEMA, "$")


def validate_predict_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when ``document`` violates the predict schema."""
    _validate(document, PREDICT_SCHEMA, "$")


def validate_run_record(record: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when a ledger record violates its schema."""
    _validate(record, RUN_RECORD_SCHEMA, "$")


def validate_history_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when ``document`` violates the history schema."""
    _validate(document, HISTORY_SCHEMA, "$")


def validate_report_file(path: str) -> Dict[str, Any]:
    """Load a report file and validate it; returns the document."""
    import json

    with open(path) as handle:
        document = json.load(handle)
    validate_report(document)
    return document
