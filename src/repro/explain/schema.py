"""The race-report JSON schema, shipped and enforced.

Like :mod:`repro.obs.trace_event`, the machine-readable race report is a
contract: :data:`REPORT_SCHEMA` is a JSON-Schema-style document describing
exactly what ``--report-json`` emits, and :func:`validate_report` enforces
it without external dependencies (the container has no ``jsonschema``
package, so a small structural validator covering the subset the schema
uses — ``type``, ``properties``, ``required``, ``items``, ``enum``,
``additionalProperties`` — is implemented here).  The CLI validates every
report before writing it, and the tests validate emitted files end to end.
"""

from __future__ import annotations

from typing import Any, Dict, List

FORMAT_NAME = "webracer-race-report"
FORMAT_VERSION = 1

_WITNESS_STEP = {
    "type": "object",
    "required": ["src", "dst", "rule"],
    "properties": {
        "src": {"type": "integer"},
        "dst": {"type": "integer"},
        "rule": {"type": "string"},
    },
}

_TIMELINE_ENTRY = {
    "type": "object",
    "required": ["seq", "op_id", "kind", "racing"],
    "properties": {
        "seq": {"type": "integer"},
        "op_id": {"type": "integer"},
        "kind": {"type": "string", "enum": ["read", "write"]},
        "racing": {"type": "boolean"},
    },
}

_OPERATION = {
    "type": "object",
    "required": ["op_id", "kind", "label"],
    "properties": {
        "op_id": {"type": "integer"},
        "kind": {"type": "string"},
        "label": {"type": "string"},
        "parent": {"type": ["integer", "null"]},
        "meta": {"type": "object"},
    },
}

_SIDE = {
    "type": "object",
    "required": [
        "role", "access", "operation", "source", "path_from_nca", "timeline",
    ],
    "properties": {
        "role": {"type": "string", "enum": ["prior", "current"]},
        "access": {
            "type": "object",
            "required": ["kind", "op_id", "seq", "is_call", "is_function_decl"],
            "properties": {
                "kind": {"type": "string", "enum": ["read", "write"]},
                "op_id": {"type": "integer"},
                "seq": {"type": "integer"},
                "is_call": {"type": "boolean"},
                "is_function_decl": {"type": "boolean"},
                "detail": {"type": "object"},
            },
        },
        "operation": _OPERATION,
        "source": {"type": "string"},
        "path_from_nca": {"type": "array", "items": _WITNESS_STEP},
        "timeline": {"type": "array", "items": _TIMELINE_ENTRY},
    },
}

_EVIDENCE = {
    "type": "object",
    "required": [
        "fingerprint", "kind", "location", "race_type", "harmful", "reason",
        "nca", "common_ancestor_count", "prior", "current", "explanation",
    ],
    "properties": {
        "fingerprint": {"type": "string"},
        "kind": {"type": "string", "enum": ["read-write", "write-write"]},
        "location": {
            "type": "object",
            "required": ["describe", "token", "family"],
            "properties": {
                "describe": {"type": "string"},
                "token": {"type": "string"},
                "family": {
                    "type": "string",
                    "enum": ["jsvar", "helem", "eloc"],
                },
            },
        },
        "race_type": {
            "type": "string",
            "enum": ["variable", "html", "function", "event_dispatch"],
        },
        "harmful": {"type": "boolean"},
        "reason": {"type": "string"},
        "nca": {"type": ["object", "null"]},
        "common_ancestor_count": {"type": "integer"},
        "prior": _SIDE,
        "current": _SIDE,
        "explanation": {"type": "string"},
    },
}

_COUNTS = {
    "type": "object",
    "required": ["raw", "filtered", "harmful"],
    "properties": {
        "raw": {"type": "integer"},
        "filtered": {"type": "integer"},
        "harmful": {"type": "integer"},
    },
}

_PAGE = {
    "type": "object",
    "required": ["url", "hb_backend", "races", "filters_removed", "evidence"],
    "properties": {
        "url": {"type": "string"},
        "hb_backend": {"type": "string"},
        "races": _COUNTS,
        "filters_removed": {"type": "object"},
        "evidence": {"type": "array", "items": _EVIDENCE},
    },
}

_CLUSTER = {
    "type": "object",
    "required": ["fingerprint", "count", "pages", "race_type", "harmful"],
    "properties": {
        "fingerprint": {"type": "string"},
        "count": {"type": "integer"},
        "pages": {"type": "array", "items": {"type": "string"}},
        "race_type": {"type": "string"},
        "harmful": {"type": "boolean"},
        "location": {"type": "string"},
    },
}

REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "format", "version", "mode", "hb_backend", "pages", "clusters",
        "totals",
    ],
    "properties": {
        "format": {"type": "string", "enum": [FORMAT_NAME]},
        "version": {"type": "integer", "enum": [FORMAT_VERSION]},
        "mode": {"type": "string", "enum": ["check", "corpus", "explain"]},
        "hb_backend": {"type": "string"},
        "pages": {"type": "array", "items": _PAGE},
        "clusters": {"type": "array", "items": _CLUSTER},
        "totals": {
            "type": "object",
            "required": ["races", "evidence_records", "distinct_fingerprints"],
            "properties": {
                "races": _COUNTS,
                "evidence_records": {"type": "integer"},
                "distinct_fingerprints": {"type": "integer"},
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check_type(value: Any, expected, path: str) -> None:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        python_type = _TYPES[name]
        if isinstance(value, python_type):
            # bool is an int subclass; don't let True pass as an integer.
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return
    raise ValueError(
        f"{path}: expected {' or '.join(names)}, "
        f"got {type(value).__name__} ({value!r})"
    )


def _validate(value: Any, schema: Dict[str, Any], path: str) -> None:
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if "enum" in schema and value not in schema["enum"]:
        raise ValueError(f"{path}: {value!r} not in {schema['enum']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise ValueError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            extra = set(value) - set(properties)
            if extra:
                raise ValueError(f"{path}: unexpected keys {sorted(extra)!r}")
        for key, sub_schema in properties.items():
            if key in value:
                _validate(value[key], sub_schema, f"{path}.{key}")
    elif isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{index}]")


def validate_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when ``document`` violates the report schema."""
    _validate(document, REPORT_SCHEMA, "$")


def validate_report_file(path: str) -> Dict[str, Any]:
    """Load a report file and validate it; returns the document."""
    import json

    with open(path) as handle:
        document = json.load(handle)
    validate_report(document)
    return document
