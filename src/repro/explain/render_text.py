"""Plain-text rendering of race evidence (the ``explain`` subcommand)."""

from __future__ import annotations

from typing import List

from .evidence import RaceEvidence, SideEvidence


def _render_side(side: SideEvidence) -> List[str]:
    access = side.access
    flags = []
    if access["is_call"]:
        flags.append("call")
    if access["is_function_decl"]:
        flags.append("function-decl")
    flag_text = f" [{', '.join(flags)}]" if flags else ""
    lines = [
        f"  {side.role}: {access['kind']}{flag_text} by op "
        f"{access['op_id']} (seq {access['seq']})",
        f"    source: {side.source}",
    ]
    if side.path_from_nca:
        lines.append("    ordered under the common ancestor by:")
        for step in side.path_from_nca:
            rule = step["rule"] or "?"
            lines.append(f"      {step['src']} ≺ {step['dst']}  [{rule}]")
    else:
        lines.append("    no path from a common ancestor (disjoint cone)")
    return lines


def render_evidence(evidence: RaceEvidence, index: int = 0) -> str:
    """Multi-line text form of one evidence record."""
    verdict = "HARMFUL" if evidence.harmful else "benign"
    lines = [
        f"race #{index}: [{evidence.race_type}/{verdict}] {evidence.kind} "
        f"on {evidence.location}",
        f"  fingerprint: {evidence.fingerprint}",
        f"  verdict: {evidence.reason}",
    ]
    if evidence.nca is None:
        lines.append("  nearest common HB ancestor: none (disjoint cones)")
    else:
        lines.append(
            f"  nearest common HB ancestor: op {evidence.nca['op_id']} "
            f"({evidence.nca.get('label') or evidence.nca.get('kind')}) "
            f"— {evidence.common_ancestor_count} common ancestor(s)"
        )
    lines.extend(_render_side(evidence.prior))
    lines.extend(_render_side(evidence.current))
    lines.append(f"  why concurrent: {evidence.explanation}")
    return "\n".join(lines)


def render_all_evidence(records: List[RaceEvidence]) -> str:
    """Text for a list of evidence records, numbered from 0."""
    if not records:
        return "no races to explain"
    return "\n\n".join(
        render_evidence(record, index) for index, record in enumerate(records)
    )
