"""Machine-readable race-report documents (``--report-json``).

Builds the schema-validated JSON document (:mod:`repro.explain.schema`)
from one or many :class:`~repro.webracer.PageReport` objects: per-page
evidence records, cross-page fingerprint clusters (the same logical race
surfacing on several sites collapses into one cluster row), and corpus
totals.  The document is validated against :data:`REPORT_SCHEMA` before it
is written, so an emitted file that loads is by construction schema-valid.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..obs import NULL
from .evidence import RaceEvidence, attach_evidence
from .schema import FORMAT_NAME, FORMAT_VERSION, validate_report

#: One analysed page, ready for document assembly.
PageEvidence = Tuple[str, Any, List[RaceEvidence]]  # (url, page_report, records)


def collect_page_evidence(page_report, hb, obs=None) -> List[RaceEvidence]:
    """Build (and attach) evidence for every filtered race of one page."""
    return attach_evidence(
        page_report.classified, page_report.trace, hb, obs=obs
    )


def page_evidence_dict(url: str, page_report, records: List[RaceEvidence],
                       hb_backend: str) -> Dict[str, Any]:
    """One page's JSON-able report block (race totals + evidence records).

    This is the unit sharded corpus workers ship back to the parent —
    fully serialized, so document assembly never needs the live page.
    """
    return {
        "url": url,
        "hb_backend": hb_backend,
        "races": {
            "raw": len(page_report.raw_races),
            "filtered": len(page_report.filtered_races),
            "harmful": len(page_report.classified.harmful()),
        },
        "filters_removed": dict(page_report.filter_removed),
        "evidence": [record.to_dict() for record in records],
    }


def _cluster_key(record) -> Tuple[str, str, bool, str]:
    """(fingerprint, race_type, harmful, location token) for clustering,
    from either a live :class:`RaceEvidence` or its serialized dict."""
    if isinstance(record, dict):
        return (
            record["fingerprint"],
            record["race_type"],
            record["harmful"],
            record["location"]["token"],
        )
    return (
        record.fingerprint,
        record.race_type,
        record.harmful,
        record.location_token,
    )


def build_clusters(
    pages: Iterable[Tuple[str, List[Any]]]
) -> List[Dict[str, Any]]:
    """Group evidence records by fingerprint across pages.

    Accepts live :class:`RaceEvidence` records or their serialized dicts
    (``RaceEvidence.to_dict`` shape) interchangeably.
    """
    clusters: Dict[str, Dict[str, Any]] = {}
    for url, records in pages:
        for record in records:
            fingerprint, race_type, harmful, token = _cluster_key(record)
            cluster = clusters.get(fingerprint)
            if cluster is None:
                cluster = clusters[fingerprint] = {
                    "fingerprint": fingerprint,
                    "count": 0,
                    "pages": [],
                    "race_type": race_type,
                    "harmful": False,
                    "location": token,
                }
            cluster["count"] += 1
            if url not in cluster["pages"]:
                cluster["pages"].append(url)
            cluster["harmful"] = cluster["harmful"] or harmful
    return sorted(
        clusters.values(),
        key=lambda c: (-c["count"], c["fingerprint"]),
    )


def assemble_report_document(
    pages: List[Dict[str, Any]],
    mode: str = "check",
    hb_backend: str = "graph",
) -> Dict[str, Any]:
    """Assemble (and validate) the report document from serialized pages.

    ``pages`` are ``page_evidence_dict`` blocks — possibly produced in
    worker processes — merged here into one document with cross-page
    fingerprint clusters and corpus totals.  This is the single assembly
    path for both sequential and sharded runs, which is what makes their
    ``--report-json`` outputs byte-identical.
    """
    totals = {"raw": 0, "filtered": 0, "harmful": 0}
    for page in pages:
        for key in totals:
            totals[key] += page["races"][key]
    clusters = build_clusters([(page["url"], page["evidence"]) for page in pages])
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "mode": mode,
        "hb_backend": hb_backend,
        "pages": pages,
        "clusters": clusters,
        "totals": {
            "races": totals,
            "evidence_records": sum(len(page["evidence"]) for page in pages),
            "distinct_fingerprints": len(clusters),
        },
    }
    validate_report(document)
    return document


def build_report_document(
    page_reports: List[Tuple[str, Any]],
    hb_backend: str = "graph",
    mode: str = "check",
    obs=None,
) -> Dict[str, Any]:
    """The full ``--report-json`` document for one or many pages.

    ``page_reports`` is a list of ``(url, PageReport)`` pairs; each page's
    HB store is taken from its own monitor, so per-site backends stay
    independent.  The result is validated before being returned.
    """
    obs = obs if obs is not None else NULL
    pages: List[Dict[str, Any]] = []
    with obs.span("explain.report", cat="explain", pages=len(page_reports)):
        for url, page_report in page_reports:
            records = collect_page_evidence(
                page_report, page_report.page.monitor.graph, obs=obs
            )
            pages.append(page_evidence_dict(url, page_report, records, hb_backend))
    document = assemble_report_document(pages, mode=mode, hb_backend=hb_backend)
    if obs.enabled:
        obs.count("explain.reports_built")
    return document


def write_report_json(document: Dict[str, Any], path: str) -> None:
    """Write a validated report document to ``path``."""
    validate_report(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
