"""Machine-readable race-report documents (``--report-json``).

Builds the schema-validated JSON document (:mod:`repro.explain.schema`)
from one or many :class:`~repro.webracer.PageReport` objects: per-page
evidence records, cross-page fingerprint clusters (the same logical race
surfacing on several sites collapses into one cluster row), and corpus
totals.  The document is validated against :data:`REPORT_SCHEMA` before it
is written, so an emitted file that loads is by construction schema-valid.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..obs import NULL
from .evidence import RaceEvidence, attach_evidence
from .schema import FORMAT_NAME, FORMAT_VERSION, validate_report

#: One analysed page, ready for document assembly.
PageEvidence = Tuple[str, Any, List[RaceEvidence]]  # (url, page_report, records)


def collect_page_evidence(page_report, hb, obs=None) -> List[RaceEvidence]:
    """Build (and attach) evidence for every filtered race of one page."""
    return attach_evidence(
        page_report.classified, page_report.trace, hb, obs=obs
    )


def _page_dict(url: str, page_report, records: List[RaceEvidence],
               hb_backend: str) -> Dict[str, Any]:
    return {
        "url": url,
        "hb_backend": hb_backend,
        "races": {
            "raw": len(page_report.raw_races),
            "filtered": len(page_report.filtered_races),
            "harmful": len(page_report.classified.harmful()),
        },
        "filters_removed": dict(page_report.filter_removed),
        "evidence": [record.to_dict() for record in records],
    }


def build_clusters(
    pages: Iterable[Tuple[str, List[RaceEvidence]]]
) -> List[Dict[str, Any]]:
    """Group evidence records by fingerprint across pages."""
    clusters: Dict[str, Dict[str, Any]] = {}
    for url, records in pages:
        for record in records:
            cluster = clusters.get(record.fingerprint)
            if cluster is None:
                cluster = clusters[record.fingerprint] = {
                    "fingerprint": record.fingerprint,
                    "count": 0,
                    "pages": [],
                    "race_type": record.race_type,
                    "harmful": False,
                    "location": record.location_token,
                }
            cluster["count"] += 1
            if url not in cluster["pages"]:
                cluster["pages"].append(url)
            cluster["harmful"] = cluster["harmful"] or record.harmful
    return sorted(
        clusters.values(),
        key=lambda c: (-c["count"], c["fingerprint"]),
    )


def build_report_document(
    page_reports: List[Tuple[str, Any]],
    hb_backend: str = "graph",
    mode: str = "check",
    obs=None,
) -> Dict[str, Any]:
    """The full ``--report-json`` document for one or many pages.

    ``page_reports`` is a list of ``(url, PageReport)`` pairs; each page's
    HB store is taken from its own monitor, so per-site backends stay
    independent.  The result is validated before being returned.
    """
    obs = obs if obs is not None else NULL
    pages: List[Dict[str, Any]] = []
    evidence_by_page: List[Tuple[str, List[RaceEvidence]]] = []
    totals = {"raw": 0, "filtered": 0, "harmful": 0}
    with obs.span("explain.report", cat="explain", pages=len(page_reports)):
        for url, page_report in page_reports:
            records = collect_page_evidence(
                page_report, page_report.page.monitor.graph, obs=obs
            )
            pages.append(_page_dict(url, page_report, records, hb_backend))
            evidence_by_page.append((url, records))
            totals["raw"] += len(page_report.raw_races)
            totals["filtered"] += len(page_report.filtered_races)
            totals["harmful"] += len(page_report.classified.harmful())
    clusters = build_clusters(evidence_by_page)
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "mode": mode,
        "hb_backend": hb_backend,
        "pages": pages,
        "clusters": clusters,
        "totals": {
            "races": totals,
            "evidence_records": sum(
                len(records) for _url, records in evidence_by_page
            ),
            "distinct_fingerprints": len(clusters),
        },
    }
    validate_report(document)
    if obs.enabled:
        obs.count("explain.reports_built")
    return document


def write_report_json(document: Dict[str, Any], path: str) -> None:
    """Write a validated report document to ``path``."""
    validate_report(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
