"""Cross-run history and trend reporting (``repro history``).

Renders the run ledger (:mod:`repro.obs.ledger`) three ways from one
assembled, schema-validated document
(:data:`repro.explain.schema.HISTORY_SCHEMA`):

* ``repro history`` — a terminal table of runs plus the
  fingerprint-lifecycle summary;
* ``repro history --json`` — the document itself, machine-readable;
* ``repro history --html`` — a dependency-free single-file HTML trend
  report with per-phase duration sparklines (inline SVG, same visual
  language as the ``--report-html`` evidence timelines).

Like every ``repro.explain`` renderer, the document is the single source
of truth: text, JSON and HTML all read the same validated shape.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .html_report import _CSS, _esc
from .schema import (
    HISTORY_FORMAT_NAME,
    HISTORY_FORMAT_VERSION,
    validate_history_report,
)


def _run_summary(record: Dict[str, Any]) -> Dict[str, Any]:
    by_verdict: Dict[str, int] = {}
    harmful = 0
    for race in record.get("races", ()):
        verdict = race.get("verdict", "observed")
        by_verdict[verdict] = by_verdict.get(verdict, 0) + 1
        if race.get("harmful"):
            harmful += 1
    return {
        "run_id": record["run_id"],
        "timestamp": record["timestamp"],
        "command": record["command"],
        "config_digest": record["config_digest"],
        "duration_ms": record.get("duration_ms", 0.0),
        "races": {
            "total": len(record.get("races", ())),
            "harmful": harmful,
            "by_verdict": dict(sorted(by_verdict.items())),
        },
        "phases": {
            name: phase.get("total_ms", 0.0)
            for name, phase in sorted(record.get("phases", {}).items())
        },
    }


def assemble_history_document(
    records: List[Dict[str, Any]],
    ledger_path: str,
    command: Optional[str] = None,
    limit: Optional[int] = None,
) -> Dict[str, Any]:
    """Build and validate the history document from ledger records.

    ``command`` filters to one subcommand's runs; ``limit`` keeps only
    the most recent N (after filtering).  The lifecycle index is computed
    over the *filtered* run sequence so "new"/"resolved" answer the
    question the filter asks.
    """
    # Lazy import keeps repro.explain importable without repro.obs being
    # initialised first (both ride on repro.core).
    from ..obs.ledger import lifecycle_index

    selected = [
        record
        for record in records
        if command is None or record["command"] == command
    ]
    if limit is not None and limit > 0:
        selected = selected[-limit:]
    fingerprints = lifecycle_index(selected)
    totals = {
        "runs": len(selected),
        "fingerprints": len(fingerprints),
        "new": sum(1 for f in fingerprints if f["status"] == "new"),
        "persisting": sum(
            1 for f in fingerprints if f["status"] == "persisting"
        ),
        "resolved": sum(1 for f in fingerprints if f["status"] == "resolved"),
        "flaky": sum(1 for f in fingerprints if f["status"] == "flaky"),
    }
    document = {
        "format": HISTORY_FORMAT_NAME,
        "version": HISTORY_FORMAT_VERSION,
        "ledger": ledger_path,
        "runs": [_run_summary(record) for record in selected],
        "fingerprints": fingerprints,
        "totals": totals,
    }
    validate_history_report(document)
    return document


# ----------------------------------------------------------------------
# terminal rendering


def render_history_text(document: Dict[str, Any]) -> str:
    """Terminal table of runs plus the fingerprint lifecycle."""
    totals = document["totals"]
    lines = [
        f"ledger {document['ledger']}: {totals['runs']} run(s), "
        f"{totals['fingerprints']} distinct fingerprint(s) "
        f"({totals['new']} new, {totals['persisting']} persisting, "
        f"{totals['flaky']} flaky, {totals['resolved']} resolved)"
    ]
    if document["runs"]:
        lines.append(
            f"  {'run':18s} {'command':8s} {'config':16s} "
            f"{'races':>5s} {'harmful':>7s} {'ms':>10s}  timestamp"
        )
        for run in document["runs"]:
            lines.append(
                f"  {run['run_id'][:18]:18s} {run['command']:8s} "
                f"{run['config_digest']:16s} "
                f"{run['races']['total']:5d} {run['races']['harmful']:7d} "
                f"{run['duration_ms']:10.1f}  {run['timestamp']}"
            )
    for entry in document["fingerprints"]:
        lines.append(
            f"  {entry['status'].upper():10s} {entry['fingerprint']}  "
            f"{entry['race_type']}"
            f"{' harmful' if entry['harmful'] else ''}  "
            f"[{entry['verdict']}] seen {entry['occurrences']}/"
            f"{entry['runs_considered']} runs  {entry['location']}"
        )
    return "\n".join(lines)


def render_history_json(document: Dict[str, Any]) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# HTML trend report


def _sparkline_svg(values: List[float], label: str) -> str:
    """One inline-SVG sparkline of a per-phase duration series."""
    if not values:
        return ""
    width, height, pad = 220, 34, 4
    peak = max(values) or 1.0
    if len(values) == 1:
        xs = [width / 2.0]
    else:
        step = (width - 2 * pad) / (len(values) - 1)
        xs = [pad + index * step for index in range(len(values))]
    points = " ".join(
        f"{x:.1f},{height - pad - (value / peak) * (height - 2 * pad):.1f}"
        for x, value in zip(xs, values)
    )
    last = values[-1]
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{_esc(label)} trend">'
        f'<polyline points="{points}" fill="none" stroke="#2c5f8a" '
        'stroke-width="1.5"/>'
        f'<circle cx="{xs[-1]:.1f}" '
        f'cy="{height - pad - (last / peak) * (height - 2 * pad):.1f}" '
        'r="2.5" fill="#c0392b"/>'
        "</svg>"
    )


def _phase_series(document: Dict[str, Any]) -> Dict[str, List[float]]:
    names = sorted(
        {name for run in document["runs"] for name in run["phases"]}
    )
    return {
        name: [run["phases"].get(name, 0.0) for run in document["runs"]]
        for name in names
    }


def _runs_table_html(document: Dict[str, Any]) -> str:
    rows = "".join(
        "<tr>"
        f"<td class='mono'>{_esc(run['run_id'])}</td>"
        f"<td>{_esc(run['command'])}</td>"
        f"<td class='mono'>{_esc(run['config_digest'])}</td>"
        f"<td>{run['races']['total']}</td>"
        f"<td>{run['races']['harmful']}</td>"
        f"<td>{run['duration_ms']:.1f}</td>"
        f"<td>{_esc(run['timestamp'])}</td>"
        "</tr>"
        for run in document["runs"]
    )
    return (
        "<table><tr><th>run</th><th>command</th><th>config</th>"
        "<th>races</th><th>harmful</th><th>ms</th><th>timestamp</th></tr>"
        f"{rows}</table>"
    )


def _lifecycle_table_html(document: Dict[str, Any]) -> str:
    if not document["fingerprints"]:
        return "<p>no race fingerprints recorded.</p>"
    rows = "".join(
        "<tr>"
        f"<td><span class='badge "
        f"{'harmful' if entry['status'] in ('new', 'flaky') else 'benign'}'>"
        f"{_esc(entry['status'].upper())}</span></td>"
        f"<td class='mono'>{_esc(entry['fingerprint'])}</td>"
        f"<td>{_esc(entry['race_type'])}</td>"
        f"<td>{'yes' if entry['harmful'] else 'no'}</td>"
        f"<td>{_esc(entry['verdict'])}</td>"
        f"<td>{entry['occurrences']}/{entry['runs_considered']}</td>"
        f"<td class='mono'>{_esc(entry['location'])}</td>"
        "</tr>"
        for entry in document["fingerprints"]
    )
    return (
        "<table><tr><th>status</th><th>fingerprint</th><th>type</th>"
        "<th>harmful</th><th>verdict</th><th>seen</th><th>location</th>"
        "</tr>"
        f"{rows}</table>"
    )


def _sparklines_html(document: Dict[str, Any]) -> str:
    series = _phase_series(document)
    durations = [run["duration_ms"] for run in document["runs"]]
    rows = [
        "<tr><td class='mono'>&lt;run&gt;</td>"
        f"<td>{_sparkline_svg(durations, 'run duration')}</td>"
        f"<td>{durations[-1]:.1f}</td></tr>"
        if durations
        else ""
    ]
    rows += [
        f"<tr><td class='mono'>{_esc(name)}</td>"
        f"<td>{_sparkline_svg(values, name)}</td>"
        f"<td>{values[-1]:.1f}</td></tr>"
        for name, values in series.items()
    ]
    if not any(rows):
        return "<p>no phase timings recorded.</p>"
    return (
        "<table><tr><th>phase</th><th>total ms per run</th>"
        "<th>latest ms</th></tr>"
        f"{''.join(rows)}</table>"
        "<p class='fp'>x = run order (oldest to newest); red dot = most "
        "recent run; each sparkline is scaled to its own peak</p>"
    )


def render_trend_html(document: Dict[str, Any]) -> str:
    """Render the history document to a self-contained HTML trend page."""
    validate_history_report(document)
    totals = document["totals"]
    title = f"WebRacer run history — {totals['runs']} runs"
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        f"<p>ledger <code>{_esc(document['ledger'])}</code> &middot; "
        f"{totals['fingerprints']} distinct fingerprints "
        f"({totals['new']} new, {totals['persisting']} persisting, "
        f"{totals['flaky']} flaky, {totals['resolved']} resolved)</p>"
        "<h2>Race lifecycle</h2>"
        f"{_lifecycle_table_html(document)}"
        "<h2>Per-phase duration trends</h2>"
        f"{_sparklines_html(document)}"
        "<h2>Runs</h2>"
        f"{_runs_table_html(document)}"
        "</body></html>"
    )


def write_trend_html(document: Dict[str, Any], path: str) -> None:
    """Write the HTML trend report for a validated history document."""
    with open(path, "w") as handle:
        handle.write(render_trend_html(document))
