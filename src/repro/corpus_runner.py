"""Process-pool sharded corpus runner (``repro corpus --jobs N``).

The Fortune-100 corpus is embarrassingly parallel: every site is
deterministic in ``(master_seed, site_index)`` and detection on one site
never touches another.  This module exploits that without ever pickling a
``Site``/``Page`` graph — each worker task carries only the small payload
``(master_seed, index, seed, flags)``, **rebuilds** its site from the
deterministic spec generator (:func:`repro.sites.corpus_specs` +
:func:`repro.sites.build_site`), runs detection with the standard
per-site seed formula (``seed + index * 101``), and ships back a plain
:class:`~repro.webracer.SiteResult` summary.

Why rebuild instead of pickle?  A built ``Site`` is mostly strings, but a
run's ``Page`` holds the DOM, the JS heap, the HB store and the trace —
megabytes of interlinked objects, much of it (closures, bound handlers)
not picklable at all.  Rebuilding from the seed costs a few milliseconds
per site and keeps the parent↔worker contract to two small, stable,
versionable value types (the task payload and ``SiteResult``).

Each site is one pool task (not one contiguous shard per worker), so an
expensive site — Ford's 112-location polling page, say — never serializes
a whole shard behind it; the pool load-balances across whatever cores
exist.  Results are merged in site-index order, which together with
per-site determinism makes ``--jobs N`` output byte-identical to
``--jobs 1``.

Failure isolation is inherited from
:meth:`~repro.webracer.WebRacer.run_site_guarded`: a site that raises or
overruns the per-site deadline becomes an error ``SiteResult`` inside its
worker.  Errors that kill the worker process itself (or a broken pool)
are converted to error results here, so a corpus run always completes
with one result per site.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional

from .obs import Instrumentation, merge_shard, snapshot
from .webracer import SiteResult, WebRacer


def resolve_jobs(jobs: int) -> int:
    """Map the ``--jobs`` flag to a worker count (0 = all CPUs)."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs if jobs else (os.cpu_count() or 1)


def corpus_site_count(master_seed: int, limit: int) -> int:
    """How many sites a corpus build with this limit yields."""
    from .sites import corpus as corpus_mod

    return len(corpus_mod.corpus_specs(master_seed)[:limit])


def _pool_context():
    """Prefer fork: no interpreter re-exec per worker, and the parent's
    module state (including test monkeypatches) carries over."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_site_task(payload: Dict[str, Any]) -> SiteResult:
    """Worker entry point: rebuild one site from its seed and run it.

    Module-level (picklable by reference) and self-contained: the worker
    constructs its own :class:`WebRacer` and, when profiling was
    requested, its own :class:`Instrumentation` whose clock origin is
    synced to the parent's so merged timelines line up.  The corpus
    module is resolved at call time so the worker sees the same
    generator functions the parent would.
    """
    from .sites import corpus as corpus_mod

    index = payload["index"]
    obs = None
    if payload.get("with_obs"):
        obs = Instrumentation()
        parent_t0 = payload.get("obs_t0")
        if parent_t0 is not None:
            obs._t0 = parent_t0

    def build():
        spec = corpus_mod.corpus_specs(payload["master_seed"])[index]
        return corpus_mod.build_site(spec)

    racer = WebRacer(
        seed=payload["seed"],
        scheduler=payload.get("scheduler", "fifo"),
        schedule_seed=payload.get("schedule_seed"),
        hb_backend=payload.get("hb_backend", "graph"),
        detector=payload.get("detector", "exact"),
        sample_budget=payload.get("sample_budget"),
        sample_seed=payload.get("sample_seed", 0),
        network=payload.get("network", "uniform"),
        bandwidth=payload.get("bandwidth"),
        rtt=payload.get("rtt"),
        connections_per_origin=payload.get("connections_per_origin"),
        obs=obs,
    )
    result = racer.run_site_guarded(
        build,
        index,
        payload["seed"] + index * 101,
        timeout=payload.get("timeout"),
        collect_evidence=payload.get("collect_evidence", False),
        keep_page=False,
    )
    if obs is not None:
        result.obs_snapshot = snapshot(obs)
    return result


def run_corpus_parallel(
    master_seed: int = 0,
    limit: int = 100,
    jobs: int = 0,
    seed: int = 0,
    scheduler: Any = "fifo",
    schedule_seed: Optional[int] = None,
    hb_backend: str = "graph",
    detector: str = "exact",
    sample_budget: Optional[int] = None,
    sample_seed: int = 0,
    network: str = "uniform",
    bandwidth: Optional[float] = None,
    rtt: Optional[float] = None,
    connections_per_origin: Optional[int] = None,
    timeout: Optional[float] = None,
    collect_evidence: bool = False,
    obs: Optional[Instrumentation] = None,
) -> List[SiteResult]:
    """Run the corpus across a process pool; results in site-index order.

    When ``obs`` is a live collector, worker instrumentation shards are
    merged into it (in site-index order, one Chrome-trace lane per site)
    after the pool drains.  The returned list always has one entry per
    site; sites whose worker died abnormally carry an error entry.
    """
    workers = resolve_jobs(jobs)
    count = corpus_site_count(master_seed, limit)
    results: List[SiteResult] = []
    if count:
        payload_base = {
            "master_seed": master_seed,
            "seed": seed,
            "scheduler": scheduler,
            "schedule_seed": schedule_seed,
            "hb_backend": hb_backend,
            "detector": detector,
            "sample_budget": sample_budget,
            "sample_seed": sample_seed,
            "network": network,
            "bandwidth": bandwidth,
            "rtt": rtt,
            "connections_per_origin": connections_per_origin,
            "timeout": timeout,
            "collect_evidence": collect_evidence,
            "with_obs": obs is not None,
            "obs_t0": obs._t0 if obs is not None else None,
        }
        with ProcessPoolExecutor(
            max_workers=min(workers, count), mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(run_site_task, {**payload_base, "index": index}): index
                for index in range(count)
            }
            for future, index in futures.items():
                try:
                    results.append(future.result())
                except Exception as exc:  # worker process died / lost
                    results.append(
                        SiteResult(
                            index=index,
                            url=f"site[{index}]",
                            error=f"worker failed: {type(exc).__name__}: {exc}",
                        )
                    )
    results.sort(key=lambda result: result.index)
    if obs is not None:
        for result in results:
            if result.obs_snapshot is not None:
                merge_shard(
                    obs,
                    result.obs_snapshot,
                    tid=result.index + 1,
                    thread_name=result.url,
                )
                result.obs_snapshot = None
    return results
