"""Multi-schedule race exploration (``repro explore``).

WebRacer observes a *single* execution per page, so every race report is
conditioned on one arbitrary interleaving (paper, Section 2.1).  This
module composes the pieces the repo already has — three scheduler
policies, stable race fingerprints, the fork-based process pool — into a
**schedule exploration engine**:

1. every page runs under a *matrix* of schedules (FIFO + adversarial +
   N−2 seeded-random), each wrapped in a
   :class:`~repro.browser.scheduler.RecordingScheduler` so the exact
   sequence of task picks is captured as a replayable
   :class:`~repro.browser.scheduler.ScheduleTrace`;
2. the page×schedule matrix fans out over the same fork pool the corpus
   runner uses — every cell is deterministic in its inputs, so parallel
   and sequential runs merge byte-identically;
3. results merge by race fingerprint into a union report that marks each
   race **stable** (seen under every schedule that completed) or
   **schedule-sensitive** (seen under a proper subset), with the
   witnessing schedule ids and seeds;
4. **schedule minimization**: ddmin over a recorded schedule's
   divergences from FIFO order finds the smallest reordering that still
   reproduces a target fingerprint.

Exploration runs with ``tie_window=inf`` — ready times become lower
bounds, so the scheduler chooses among *all* pending tasks and the matrix
actually explores the interleaving space instead of only breaking exact
ties (the same semantics :mod:`repro.browser.enumerate` uses for
exhaustive enumeration).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .browser.event_loop import ScheduleDivergence
from .browser.page import Browser
from .browser.scheduler import (
    DivergenceScheduler,
    RecordingScheduler,
    ReplayScheduler,
    ScheduleTrace,
    Scheduler,
    derive_page_seed,
    make_scheduler,
)
from .obs import NULL, Instrumentation, merge_shard, snapshot

#: Exploration offers every pending task to the scheduler (see module doc).
EXPLORE_TIE_WINDOW = float("inf")


# ----------------------------------------------------------------------
# the schedule matrix


@dataclass(frozen=True)
class ScheduleSpec:
    """One column of the page×schedule matrix."""

    sid: str
    policy: str
    seed: Optional[int] = None

    def build(self) -> Scheduler:
        """Instantiate the scheduler this spec describes."""
        return make_scheduler(self.policy, seed=self.seed or 0)

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.sid, "policy": self.policy, "seed": self.seed}


def schedule_matrix(schedules: int, seed: int = 0) -> List[ScheduleSpec]:
    """The schedule columns for an exploration of width ``schedules``.

    FIFO and adversarial are always worth one run each (they are
    deterministic); the remaining width is spent on seeded-random
    schedules whose seeds derive from ``seed`` position-independently.
    """
    if schedules < 1:
        raise ValueError(f"schedules must be >= 1, got {schedules}")
    specs = [ScheduleSpec("fifo", "fifo")]
    if schedules >= 2:
        specs.append(ScheduleSpec("adversarial", "adversarial"))
    for index in range(schedules - 2):
        specs.append(
            ScheduleSpec(
                f"random-{index}", "random", derive_page_seed(seed, index)
            )
        )
    return specs


# ----------------------------------------------------------------------
# page inputs


@dataclass
class PageInput:
    """One page to explore: url, markup, and its sub-resources.

    ``sizes`` pins on-the-wire resource sizes (HAR captures) and
    ``network`` carries the network-model config (``{}`` = uniform;
    otherwise ``{"model": "connection", "bandwidth": ..., "rtt": ...,
    "connections_per_origin": ...}`` with ``None`` meaning defaults).
    Both ride on the page so every run of it — record, replay, ddmin,
    predict — shares the exact same network physics.
    """

    url: str
    html: str
    resources: Dict[str, str] = field(default_factory=dict)
    sizes: Dict[str, float] = field(default_factory=dict)
    network: Dict[str, Any] = field(default_factory=dict)


def _har_page_input(
    path: str, resources: Optional[Dict[str, str]] = None
) -> PageInput:
    """One page input from a ``.har`` capture (see :mod:`repro.har`)."""
    from .har import load_har

    workload = load_har(path)
    merged = dict(workload.resources)
    merged.update(resources or {})
    return PageInput(
        url=path,
        html=workload.html,
        resources=merged,
        sizes={url: float(size) for url, size in workload.sizes.items()},
    )


def load_page_inputs(
    path: str, resources: Optional[Dict[str, str]] = None
) -> List[PageInput]:
    """Pages from an HTML/HAR file or a directory of pages.

    A file yields one page (``resources`` maps URL → content); ``.har``
    files go through the HAR front end, which supplies the page's own
    resources and on-the-wire sizes.  A directory yields one page per
    ``*.html`` file plus one per ``*.har`` capture (sorted by name);
    every *other* file in the directory is offered to every HTML page as
    a resource keyed by its basename, which is how the example pages
    reference their scripts (``<script src="hint.js">``).
    """
    if os.path.isfile(path):
        if path.endswith(".har"):
            return [_har_page_input(path, resources)]
        with open(path) as handle:
            html = handle.read()
        return [PageInput(url=path, html=html, resources=dict(resources or {}))]
    if not os.path.isdir(path):
        raise FileNotFoundError(f"no such page or directory: {path!r}")
    names = sorted(os.listdir(path))
    contents: Dict[str, str] = {}
    for name in names:
        full = os.path.join(path, name)
        if os.path.isfile(full) and not name.endswith(".har"):
            with open(full) as handle:
                contents[name] = handle.read()
    pages: List[PageInput] = []
    for name in names:
        full = os.path.join(path, name)
        if name.endswith(".har") and os.path.isfile(full):
            pages.append(_har_page_input(full, resources))
            continue
        if not name.endswith(".html"):
            continue
        page_resources = {
            other: content
            for other, content in contents.items()
            if other != name
        }
        page_resources.update(resources or {})
        pages.append(
            PageInput(
                url=full,
                html=contents[name],
                resources=page_resources,
            )
        )
    pages.sort(key=lambda page: page.url)
    if not pages:
        raise FileNotFoundError(f"no *.html or *.har pages under {path!r}")
    return pages


# ----------------------------------------------------------------------
# one matrix cell


@dataclass
class ScheduleRunResult:
    """Picklable outcome of one page×schedule cell."""

    page: str
    sid: str
    policy: str
    seed: Optional[int] = None
    error: Optional[str] = None
    #: Sorted distinct fingerprints of the filtered races.
    fingerprints: List[str] = field(default_factory=list)
    #: fingerprint → {race_type, harmful, location, description}.
    races: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: ``ScheduleTrace.to_dict()`` of the recorded schedule.
    trace_dict: Optional[Dict[str, Any]] = None
    #: Replay verification outcome (None = not attempted).
    replay_ok: Optional[bool] = None
    operations: int = 0
    choice_points: int = 0
    duration_ms: float = 0.0
    obs_snapshot: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def trace(self) -> ScheduleTrace:
        """The recorded schedule as a live :class:`ScheduleTrace`."""
        if self.trace_dict is None:
            raise ValueError(f"run {self.page}@{self.sid} recorded no trace")
        return ScheduleTrace.from_dict(self.trace_dict)


def run_page_once(
    page: PageInput,
    scheduler: Scheduler,
    seed: int,
    hb_backend: str,
    obs=None,
) -> Tuple[Any, Any, List[str], Dict[str, Dict[str, Any]]]:
    """One instrumented exploration run; the single run-config authority.

    Every recording, replay, and minimization run goes through here, so
    they all share the exact same page configuration — which is what
    makes a recorded trace replayable at all.
    """
    from .explain.fingerprint import race_fingerprint
    from .webracer import WebRacer

    network = page.network or {}
    browser = Browser(
        seed=seed,
        scheduler=scheduler,
        resources=dict(page.resources),
        tie_window=EXPLORE_TIE_WINDOW,
        hb_backend=hb_backend,
        network=network.get("model", "uniform"),
        sizes=dict(page.sizes) if page.sizes else None,
        bandwidth=network.get("bandwidth"),
        rtt=network.get("rtt"),
        connections_per_origin=network.get("connections_per_origin"),
        obs=obs if obs is not None else NULL,
    )
    page_obj = browser.open(page.html, url=page.url)
    page_obj.auto_explore = True
    page_obj.eager_explore = True
    page_obj.run()
    racer = WebRacer(seed=seed, hb_backend=hb_backend)
    report = racer.report_for(page_obj, page.url)
    races: Dict[str, Dict[str, Any]] = {}
    for race, classified in zip(report.filtered_races, report.classified.races):
        fingerprint = race_fingerprint(race, page_obj.trace)
        if fingerprint not in races:
            races[fingerprint] = {
                "race_type": classified.race_type,
                "harmful": classified.harmful,
                "location": str(classified.location),
                "description": classified.describe(),
            }
    return page_obj, report, sorted(races), races


def run_page_schedule(
    page: PageInput,
    spec: ScheduleSpec,
    seed: int = 0,
    hb_backend: str = "graph",
    verify_replay: bool = True,
    obs=None,
) -> ScheduleRunResult:
    """Run one page under one schedule; record, and optionally verify.

    Crash isolation mirrors the corpus runner: an exception inside the
    cell becomes an error result instead of taking down the matrix.
    """
    started = time.perf_counter()
    obs = obs if obs is not None else NULL
    try:
        recorder = RecordingScheduler(spec.build())
        with obs.span(
            "explore.run", cat="explore", page=page.url, schedule=spec.sid
        ):
            page_obj, _report, fingerprints, races = run_page_once(
                page, recorder, seed, hb_backend, obs=obs
            )
        trace = recorder.trace(
            policy=spec.policy,
            seed=spec.seed,
            page=page.url,
            tie_window=EXPLORE_TIE_WINDOW,
        )
        result = ScheduleRunResult(
            page=page.url,
            sid=spec.sid,
            policy=spec.policy,
            seed=spec.seed,
            fingerprints=fingerprints,
            races=races,
            trace_dict=trace.to_dict(),
            operations=len(page_obj.trace.operations.operations),
            choice_points=page_obj.loop.choice_points,
        )
        if verify_replay:
            result.replay_ok = replay_reproduces(
                page, trace, fingerprints, seed=seed, hb_backend=hb_backend,
                obs=obs,
            )
        if obs.enabled:
            obs.count("explore.schedules_run")
    except Exception as exc:  # crash isolation: record, don't propagate
        message = str(exc).splitlines()[0] if str(exc) else ""
        result = ScheduleRunResult(
            page=page.url,
            sid=spec.sid,
            policy=spec.policy,
            seed=spec.seed,
            error=f"{type(exc).__name__}: {message}".rstrip(": "),
        )
    result.duration_ms = (time.perf_counter() - started) * 1000.0
    return result


def replay_run(
    page: PageInput,
    trace: ScheduleTrace,
    seed: int = 0,
    hb_backend: str = "graph",
    obs=None,
) -> List[str]:
    """Replay a recorded schedule; returns the run's race fingerprints.

    Raises :class:`~repro.browser.event_loop.ScheduleDivergence` when the
    trace no longer matches the page — replay never silently drifts.
    """
    obs = obs if obs is not None else NULL
    with obs.span("explore.replay", cat="explore", page=page.url):
        _page_obj, _report, fingerprints, _races = run_page_once(
            page, ReplayScheduler(trace), seed, hb_backend, obs=obs
        )
    if obs.enabled:
        obs.count("explore.replays")
    return fingerprints


def replay_reproduces(
    page: PageInput,
    trace: ScheduleTrace,
    fingerprints: Sequence[str],
    seed: int = 0,
    hb_backend: str = "graph",
    obs=None,
) -> bool:
    """Does replaying ``trace`` reproduce exactly these fingerprints?"""
    obs = obs if obs is not None else NULL
    try:
        reproduced = replay_run(
            page, trace, seed=seed, hb_backend=hb_backend, obs=obs
        ) == sorted(fingerprints)
    except ScheduleDivergence:
        if obs.enabled:
            obs.count("explore.replay_diverged")
        return False
    if obs.enabled and not reproduced:
        obs.count("explore.replay_mismatched")
    return reproduced


# ----------------------------------------------------------------------
# matrix execution + fingerprint merge


@dataclass
class PageExploration:
    """All schedules of one page, merged by race fingerprint."""

    url: str
    runs: List[ScheduleRunResult] = field(default_factory=list)
    #: Merged union entries, sorted by fingerprint (see ``merge_runs``).
    races: List[Dict[str, Any]] = field(default_factory=list)

    def stable(self) -> List[Dict[str, Any]]:
        """Races every completed schedule witnessed."""
        return [race for race in self.races if race["stable"]]

    def schedule_sensitive(self) -> List[Dict[str, Any]]:
        """Races only a proper subset of schedules witnessed."""
        return [race for race in self.races if not race["stable"]]


@dataclass
class ExploreReport:
    """The full matrix outcome: one :class:`PageExploration` per page."""

    seed: int
    specs: List[ScheduleSpec] = field(default_factory=list)
    pages: List[PageExploration] = field(default_factory=list)
    hb_backend: str = "graph"

    def union_count(self) -> int:
        return sum(len(page.races) for page in self.pages)

    def stable_count(self) -> int:
        return sum(len(page.stable()) for page in self.pages)

    def sensitive_count(self) -> int:
        return sum(len(page.schedule_sensitive()) for page in self.pages)

    def find_witness(
        self, fingerprint: str
    ) -> Optional[Tuple[PageExploration, ScheduleRunResult]]:
        """The first run witnessing ``fingerprint`` (prefix match allowed)."""
        for page in self.pages:
            for run in page.runs:
                if not run.ok:
                    continue
                for fp in run.fingerprints:
                    if fp == fingerprint or fp.startswith(fingerprint):
                        return page, run
        return None


def merge_runs(url: str, runs: List[ScheduleRunResult]) -> PageExploration:
    """Merge one page's schedule runs into a fingerprint-union report.

    A race is *stable* when every schedule that completed witnessed it,
    *schedule-sensitive* when only a proper subset did.  Witness lists
    preserve matrix column order; race metadata comes from the first
    witnessing run, so merged output is deterministic in the runs alone.
    """
    ok_runs = [run for run in runs if run.ok]
    witnesses: Dict[str, List[ScheduleRunResult]] = {}
    for run in ok_runs:
        for fingerprint in run.fingerprints:
            witnesses.setdefault(fingerprint, []).append(run)
    races: List[Dict[str, Any]] = []
    for fingerprint in sorted(witnesses):
        seen_by = witnesses[fingerprint]
        info = seen_by[0].races[fingerprint]
        races.append(
            {
                "fingerprint": fingerprint,
                **info,
                "stable": len(seen_by) == len(ok_runs),
                "witnesses": [run.sid for run in seen_by],
                "witness_seeds": [run.seed for run in seen_by],
                "replay_verified": all(
                    run.replay_ok for run in seen_by
                ) if all(run.replay_ok is not None for run in seen_by) else None,
            }
        )
    return PageExploration(url=url, runs=list(runs), races=races)


def _matrix_task(payload: Dict[str, Any]) -> ScheduleRunResult:
    """Worker entry point for one matrix cell (module-level: picklable)."""
    obs = None
    if payload.get("with_obs"):
        obs = Instrumentation()
        parent_t0 = payload.get("obs_t0")
        if parent_t0 is not None:
            obs._t0 = parent_t0
    page = PageInput(
        url=payload["url"],
        html=payload["html"],
        resources=payload["resources"],
        sizes=payload.get("sizes", {}),
        network=payload.get("network", {}),
    )
    spec = ScheduleSpec(
        sid=payload["sid"], policy=payload["policy"], seed=payload["spec_seed"]
    )
    result = run_page_schedule(
        page,
        spec,
        seed=payload["seed"],
        hb_backend=payload["hb_backend"],
        verify_replay=payload["verify_replay"],
        obs=obs,
    )
    if obs is not None:
        result.obs_snapshot = snapshot(obs)
    return result


def explore_pages(
    pages: Sequence[PageInput],
    schedules: int = 8,
    seed: int = 0,
    jobs: int = 1,
    hb_backend: str = "graph",
    verify_replay: bool = True,
    obs=None,
) -> ExploreReport:
    """Run the page×schedule matrix and merge by fingerprint.

    ``jobs > 1`` fans the cells out over the corpus runner's fork pool;
    every cell is deterministic in its payload and results merge in
    matrix order, so parallel output is byte-identical to sequential.
    """
    from .corpus_runner import _pool_context, resolve_jobs

    obs = obs if obs is not None else NULL
    specs = schedule_matrix(schedules, seed=seed)
    cells: List[Tuple[PageInput, ScheduleSpec]] = [
        (page, spec) for page in pages for spec in specs
    ]
    workers = min(resolve_jobs(jobs), len(cells)) if cells else 1
    results: List[ScheduleRunResult] = []
    if workers <= 1:
        for page, spec in cells:
            results.append(
                run_page_schedule(
                    page,
                    spec,
                    seed=seed,
                    hb_backend=hb_backend,
                    verify_replay=verify_replay,
                    obs=obs,
                )
            )
    else:
        live_obs = obs if getattr(obs, "enabled", False) else None
        payload_base = {
            "seed": seed,
            "hb_backend": hb_backend,
            "verify_replay": verify_replay,
            "with_obs": live_obs is not None,
            "obs_t0": live_obs._t0 if live_obs is not None else None,
        }
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = []
            for page, spec in cells:
                payload = {
                    **payload_base,
                    "url": page.url,
                    "html": page.html,
                    "resources": dict(page.resources),
                    "sizes": dict(page.sizes),
                    "network": dict(page.network),
                    "sid": spec.sid,
                    "policy": spec.policy,
                    "spec_seed": spec.seed,
                }
                futures.append(pool.submit(_matrix_task, payload))
            for future, (page, spec) in zip(futures, cells):
                try:
                    results.append(future.result())
                except Exception as exc:  # worker process died / lost
                    results.append(
                        ScheduleRunResult(
                            page=page.url,
                            sid=spec.sid,
                            policy=spec.policy,
                            seed=spec.seed,
                            error=f"worker failed: {type(exc).__name__}: {exc}",
                        )
                    )
        if live_obs is not None:
            for tid, result in enumerate(results):
                if result.obs_snapshot is not None:
                    merge_shard(
                        live_obs,
                        result.obs_snapshot,
                        tid=tid + 1,
                        thread_name=f"{result.page}::{result.sid}",
                    )
                    result.obs_snapshot = None
            for result in results:
                if result.ok:
                    live_obs.count("explore.schedules_run")
    by_page: Dict[str, List[ScheduleRunResult]] = {}
    for result in results:
        by_page.setdefault(result.page, []).append(result)
    report = ExploreReport(seed=seed, specs=specs, hb_backend=hb_backend)
    for page in pages:
        report.pages.append(merge_runs(page.url, by_page.get(page.url, [])))
    if obs.enabled:
        obs.count("explore.pages", len(report.pages))
        obs.count("explore.races_stable", report.stable_count())
        obs.count("explore.races_schedule_sensitive", report.sensitive_count())
    return report


# ----------------------------------------------------------------------
# schedule minimization (ddmin)


@dataclass
class MinimizationResult:
    """Outcome of minimizing one schedule against a target fingerprint."""

    fingerprint: str
    page: str
    original: ScheduleTrace
    minimized: ScheduleTrace
    #: Divergence subset (indices into ``original.picks``) that survived.
    kept_divergences: List[int] = field(default_factory=list)
    tests_run: int = 0

    @property
    def original_divergences(self) -> int:
        return len(self.original.divergences)

    @property
    def minimized_divergences(self) -> int:
        return len(self.minimized.divergences)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "page": self.page,
            "original_divergences": self.original_divergences,
            "minimized_divergences": self.minimized_divergences,
            "kept_divergences": list(self.kept_divergences),
            "tests_run": self.tests_run,
            "minimized_trace": self.minimized.to_dict(),
        }


def _ddmin(items: List[int], test) -> List[int]:
    """Zeller/Hildebrandt ddmin: a 1-minimal subset of ``items`` passing
    ``test``.  ``test`` must accept the full set (the caller checks)."""
    if test([]):
        return []
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk_size = max(1, len(current) // granularity)
        chunks = [
            current[i : i + chunk_size]
            for i in range(0, len(current), chunk_size)
        ]
        reduced = False
        for chunk in chunks:
            if len(chunk) < len(current) and test(chunk):
                current = list(chunk)
                granularity = 2
                reduced = True
                break
        if not reduced:
            for index in range(len(chunks)):
                complement = [
                    item
                    for chunk_index, chunk in enumerate(chunks)
                    if chunk_index != index
                    for item in chunk
                ]
                if len(complement) < len(current) and test(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def minimize_schedule(
    page: PageInput,
    trace: ScheduleTrace,
    fingerprint: str,
    seed: int = 0,
    hb_backend: str = "graph",
    obs=None,
) -> MinimizationResult:
    """The smallest FIFO-divergence subset still reproducing ``fingerprint``.

    ddmin over the recorded schedule's divergences from FIFO order: each
    candidate subset replays via
    :class:`~repro.browser.scheduler.DivergenceScheduler` (recorded picks
    at kept divergence steps, FIFO everywhere else) and passes when the
    re-run detector still reports the target fingerprint.  Ground truth
    is always the re-run, never the trace, so dropped divergences that
    shift later picks cannot produce a false positive.

    Raises ``ValueError`` when the full recorded schedule itself does not
    reproduce the fingerprint (a stale trace or the wrong page).
    """
    obs = obs if obs is not None else NULL
    tests = {"count": 0}

    def attempt(keep: Sequence[int]) -> Optional[ScheduleTrace]:
        tests["count"] += 1
        recorder = RecordingScheduler(DivergenceScheduler(trace, keep))
        _page_obj, _report, fingerprints, _races = run_page_once(
            page, recorder, seed, hb_backend
        )
        if fingerprint not in fingerprints:
            return None
        return recorder.trace(
            policy="replay-min",
            seed=trace.seed,
            page=trace.page,
            tie_window=trace.tie_window,
        )

    with obs.span(
        "explore.minimize", cat="explore", page=page.url, fingerprint=fingerprint
    ):
        if attempt(trace.divergences) is None:
            raise ValueError(
                f"recorded schedule does not reproduce fingerprint "
                f"{fingerprint!r} on {page.url!r}"
            )
        kept = _ddmin(
            list(trace.divergences), lambda keep: attempt(keep) is not None
        )
        minimized = attempt(kept)
        assert minimized is not None  # ddmin only returns passing subsets
    if obs.enabled:
        obs.count("explore.minimizations")
        obs.count("explore.minimize_tests", tests["count"])
    return MinimizationResult(
        fingerprint=fingerprint,
        page=page.url,
        original=trace,
        minimized=minimized,
        kept_divergences=list(kept),
        tests_run=tests["count"],
    )
