"""HAR ingestion: turn a recorded page capture into a checkable workload.

A `.har` file (HTTP Archive, the capture format every browser devtools
"Save all as HAR" button emits) records one real page load: every request
URL, its response size, MIME type and — when the exporter includes bodies
— the response text.  This module maps that onto the simulator's inputs:

* every entry becomes a **resource** (``url -> body``) with an
  **on-the-wire size** (``url -> bytes``) for the connection-level
  network model, and an **origin** implied by its URL;
* the first ``text/html`` entry is the **driver page** — its captured
  body is used verbatim when present, otherwise a synthetic driver is
  generated that references every captured sub-resource the way a real
  page would (``<script src>`` for scripts, ``<img>`` for images,
  ``<iframe>`` for documents), so even a body-stripped HAR still
  reproduces the capture's fetch graph and arrival-order pressure.

Sizes prefer the exporter's ``response.content.size``, then
``response.bodySize``, then the captured body length — so a HAR whose
bodies were replaced with small stand-ins (or stripped) still transfers
its real byte counts through the connection model.

Strictness follows the CLI error conventions (PR 4): anything that is
not a HAR — bad JSON, missing ``log.entries``, an empty capture, an
entry without a URL — raises :class:`HarError` with a one-line message;
the CLI converts that to exit 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .browser.network import origin_of

#: Size billed for an entry with no usable size information at all.
DEFAULT_ENTRY_SIZE = 1024


class HarError(ValueError):
    """The input is not a usable HAR capture."""


@dataclass
class HarEntry:
    """One captured request/response pair, reduced to what the sim needs."""

    url: str
    size: int
    mime: str = ""
    text: str = ""
    status: int = 200

    @property
    def origin(self) -> str:
        return origin_of(self.url)

    @property
    def is_html(self) -> bool:
        return "html" in self.mime

    @property
    def is_script(self) -> bool:
        return "javascript" in self.mime or "ecmascript" in self.mime

    @property
    def is_image(self) -> bool:
        return self.mime.startswith("image/")


@dataclass
class HarWorkload:
    """A HAR capture ready to run: driver page + resources + sizes."""

    url: str
    html: str
    resources: Dict[str, str] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)
    entries: List[HarEntry] = field(default_factory=list)


def _entry_size(content: Dict[str, Any], body_size: Any, text: str) -> int:
    size = content.get("size")
    if isinstance(size, (int, float)) and size > 0:
        return int(size)
    if isinstance(body_size, (int, float)) and body_size > 0:
        return int(body_size)
    if text:
        return len(text)
    return DEFAULT_ENTRY_SIZE


def parse_har(text: str) -> List[HarEntry]:
    """Parse HAR JSON text into entries; raises :class:`HarError`."""
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise HarError(f"not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise HarError("top level is not an object")
    log = document.get("log")
    if not isinstance(log, dict):
        raise HarError("missing 'log' object")
    raw_entries = log.get("entries")
    if not isinstance(raw_entries, list):
        raise HarError("missing 'log.entries' array")
    if not raw_entries:
        raise HarError("capture has no entries")
    entries: List[HarEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise HarError(f"entry {index} is not an object")
        request = raw.get("request") or {}
        response = raw.get("response") or {}
        url = request.get("url") if isinstance(request, dict) else None
        if not url or not isinstance(url, str):
            raise HarError(f"entry {index} has no request URL")
        content = response.get("content") if isinstance(response, dict) else {}
        if not isinstance(content, dict):
            content = {}
        body = content.get("text")
        if not isinstance(body, str):
            body = ""
        status = response.get("status") if isinstance(response, dict) else 200
        if not isinstance(status, int) or status <= 0:
            status = 200
        entries.append(
            HarEntry(
                url=url,
                size=_entry_size(content, response.get("bodySize"), body),
                mime=str(content.get("mimeType") or ""),
                text=body,
                status=status,
            )
        )
    return entries


def synthesize_driver(entries: List[HarEntry], title: str = "har capture") -> str:
    """A driver page referencing every sub-resource of a body-less HAR.

    Scripts load ``async`` (the common modern pattern, and the one that
    makes arrival order matter); everything non-script and non-document
    is referenced as an image, which in this engine is a plain
    sub-resource fetch with a ``load`` event.
    """
    lines = [
        "<html><head><title>%s</title></head><body>" % title,
        "<div id='har-root'></div>",
    ]
    for entry in entries:
        if entry.is_html:
            continue  # the driver itself / captured documents
        if entry.is_script:
            lines.append(f'<script src="{entry.url}" async></script>')
        else:
            lines.append(f'<img src="{entry.url}">')
    lines.append("</body></html>")
    return "\n".join(lines)


def workload_from_entries(entries: List[HarEntry]) -> HarWorkload:
    """Assemble a runnable workload from parsed entries."""
    driver: Optional[HarEntry] = next(
        (entry for entry in entries if entry.is_html), None
    )
    sub_entries = [entry for entry in entries if entry is not driver]
    if driver is not None and driver.text:
        html = driver.text
    else:
        html = synthesize_driver(sub_entries)
    resources = {entry.url: entry.text for entry in sub_entries}
    sizes = {entry.url: entry.size for entry in sub_entries}
    return HarWorkload(
        url=driver.url if driver is not None else entries[0].url,
        html=html,
        resources=resources,
        sizes=sizes,
        entries=entries,
    )


def load_har(path: str) -> HarWorkload:
    """Read and assemble a ``.har`` file; raises :class:`HarError`/OSError."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return workload_from_entries(parse_har(text))
