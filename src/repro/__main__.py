"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``check PAGE.html [--resource url=path]... [--seed N] [--json out.json]``
    Run WebRacer on a local HTML file and print the classified report.
    ``--resource`` maps a URL referenced by the page (script src, iframe
    src, image, XHR endpoint) to a local file.  ``--json`` additionally
    dumps the full execution trace for offline analysis.

``corpus [--sites N] [--seed N] [--jobs N] [--site-timeout S] [--json out.json]``
    Build the synthetic Fortune-100 corpus and print Table 1 / Table 2.
    ``--json`` additionally writes the tables as machine-readable JSON.
    ``--jobs N`` shards the run over N worker processes (0 = one per
    CPU); workers rebuild their sites deterministically from
    ``(master_seed, index)`` and results merge in site-index order, so
    the output is byte-identical to a sequential run.  A site that
    crashes or exceeds ``--site-timeout`` seconds records a site error
    (listed in the output and the ``--json`` payload) and the run
    continues.  All output paths are validated before any site runs.

``explore PATH [--schedules N] [--seed N] [--jobs N] [--json out.json]``
    Multi-schedule race exploration: run every page under ``PATH`` (an
    HTML file or a directory of pages) under FIFO + adversarial + N−2
    seeded-random schedules, record each schedule as a replayable trace,
    verify replays, and merge races by fingerprint into a union report
    marking each race *stable* or *schedule-sensitive*.
    ``--traces-dir DIR`` saves the recorded schedule traces;
    ``--minimize FP`` ddmin-minimizes a witnessed fingerprint's schedule
    down to the fewest divergences from FIFO that still reproduce it.

``predict PATH [--resource url=path]... [--budget N] [--minimize] [--json out.json]``
    Single-trace race prediction: record one FIFO execution per page
    under ``PATH`` (an HTML file or a directory of pages), sweep the
    trace with the schedulable-happens-before analysis
    (:mod:`repro.core.hb.shb`), and cross-validate every predicted race
    against the explore machinery — witness schedules run until a
    recorded, replay-verified reordering exhibits the predicted
    fingerprint.  Confirmed predictions report ``predicted+confirmed``
    (with the witness schedule, and a ddmin-minimized divergence set
    under ``--minimize``); the rest stay ``predicted-only``.

``analyze TRACE.json``
    Re-run detection, filtering and classification on a captured trace.
    With ``--hb-backend shb`` the offline SHB prediction sweep runs too
    and predicted races print after the report (no replay confirmation —
    use ``predict`` for that).

``explain TRACE.json [--race N] [--no-filters]``
    Load a captured trace (written by ``check --json``) and print the full
    HB evidence for one race (``--race N``, report order) or for all races:
    classification + harmfulness reason, stable fingerprint, the nearest
    common happens-before ancestor, and the rule-labeled edge chain
    ordering each side under it.

``history --ledger DIR [--command CMD] [--last N] [--json F] [--html F]``
    List the runs recorded in a ledger (see ``--ledger`` below) and the
    lifecycle of every race fingerprint across them (new / persisting /
    flaky / resolved).  ``--json`` writes the schema-validated history
    document; ``--html`` writes a self-contained trend report with
    per-phase duration sparklines.

``diff RUN_A RUN_B --ledger DIR`` / ``diff --against last --ledger DIR``
    Diff two ledgered runs: race fingerprints that are new or resolved in
    the later run, plus per-phase wall-clock deltas.  ``--against last``
    compares the most recent run against the latest earlier run with the
    same command and config digest.  ``--fail-on-regression PCT`` exits
    nonzero when any phase slowed down by more than PCT percent.

``check``, ``corpus``, ``explore`` and ``predict`` all accept
``--ledger DIR``: append one schema-validated run record (command, config
digest, per-phase durations, counters, race fingerprints with verdicts)
to ``DIR/ledger.jsonl`` — the persistent cross-run store ``history`` and
``diff`` read.  Without the flag nothing is recorded and the null-sink
zero-overhead guarantee holds unchanged.

All commands accept ``--hb-backend {graph,chains,crosscheck,shb}`` to
select the happens-before representation answering CHC queries: the
paper's graph with frozen ancestor sets (default), incremental chain
vector clocks, or both cross-checked against each other (slow; raises on
any disagreement).  ``shb`` answers online queries like ``chains`` and
additionally runs the predictive SHB sweep after detection (``check`` /
``analyze`` print predicted races alongside observed ones).

``check`` and ``corpus`` also accept the profiling flags:

``--profile``
    Print a per-phase timing and counter table after the report.
``--trace-out FILE``
    Write a Chrome trace-event file (open in chrome://tracing / Perfetto).
``--stats-json FILE``
    Write phase timings, counters and race totals as JSON (per-site for
    ``corpus`` runs).

and the race-report flags:

``--report-json FILE``
    Write a schema-validated race report with full HB evidence per race
    (see ``repro.explain.schema.REPORT_SCHEMA``).
``--report-html FILE``
    Write a self-contained single-file HTML report (no external assets)
    with per-race evidence views and operation-lane timelines; corpus runs
    aggregate per-site with a cross-site fingerprint-cluster table.

Profiling and report generation never change detection results: both only
observe structures the run already produced, so a flagged run reports
byte-identical races.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from . import WebRacer
from .browser.scheduler import SCHEDULER_POLICIES
from .core.hb.backend import HB_BACKENDS
from .core.render import render_crashes, render_race_report, render_table1, render_table2
from .core.report import RACE_TYPES
from .core.serialize import dump_trace, load_trace
from .obs import Instrumentation, render_profile, stats_dict, write_chrome_trace

#: Every flag naming an output file, validated up front so a bad path
#: fails before — not after — an expensive run.
OUTPUT_PATH_FLAGS = (
    "json",
    "stats_json",
    "trace_out",
    "report_json",
    "report_html",
    "html",
)


def _fail(message: str) -> int:
    """Print a one-line error to stderr; returns the exit status (2)."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _output_path_error(path: str) -> Optional[str]:
    """Why ``path`` cannot be written, or ``None`` if it looks writable."""
    if os.path.isdir(path):
        return f"output path {path!r} is a directory"
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        return f"output directory {directory!r} does not exist"
    if not os.access(directory, os.W_OK):
        return f"output directory {directory!r} is not writable"
    if os.path.exists(path) and not os.access(path, os.W_OK):
        return f"output file {path!r} is not writable"
    return None


def _validate_output_paths(args) -> Optional[str]:
    """First problem among the requested output paths, or ``None``."""
    for flag in OUTPUT_PATH_FLAGS:
        path = getattr(args, flag, None)
        if path:
            error = _output_path_error(path)
            if error:
                return error
    return None


def _write_output(path: str, writer) -> Optional[str]:
    """Run ``writer()``; turn an ``OSError`` into a one-line message."""
    try:
        writer()
        return None
    except OSError as exc:
        return f"cannot write {path!r}: {exc.strerror or exc}"


def _scheduler_args_error(args) -> Optional[str]:
    """Why the scheduler flags are inconsistent, or ``None``.

    ``--schedule-seed`` only means something under the random policy;
    silently ignoring it would let a user believe they varied a FIFO or
    adversarial run.
    """
    if getattr(args, "schedule_seed", None) is not None:
        if getattr(args, "scheduler", "fifo") != "random":
            return "--schedule-seed requires --scheduler random"
    return None


def _detector_args_error(args) -> Optional[str]:
    """Why the detector flags are inconsistent, or ``None``.

    ``--sample-budget`` / ``--sample-seed`` only mean something when a
    sampling tier runs; silently ignoring them would let a user believe
    an exact run was budgeted.
    """
    if getattr(args, "detector", "exact") == "exact":
        if getattr(args, "sample_budget", None) is not None:
            return "--sample-budget requires --detector sampling or two-tier"
        if getattr(args, "sample_seed", None) is not None:
            return "--sample-seed requires --detector sampling or two-tier"
        return None
    if args.sample_budget is not None and args.sample_budget < 1:
        return f"--sample-budget must be >= 1, got {args.sample_budget}"
    return None


def _detector_kwargs(args) -> dict:
    """WebRacer constructor kwargs for the detector flags."""
    return {
        "detector": getattr(args, "detector", "exact"),
        "sample_budget": getattr(args, "sample_budget", None),
        "sample_seed": getattr(args, "sample_seed", None) or 0,
    }


def _detector_config(args) -> dict:
    """Ledger config additions for sampling modes.

    Exact runs add nothing, so ledgers written before the sampling
    detector existed keep their config digests and still baseline
    against new exact runs.
    """
    if getattr(args, "detector", "exact") == "exact":
        return {}
    from .core.sampling import DEFAULT_SAMPLE_BUDGET

    budget = getattr(args, "sample_budget", None)
    return {
        "detector": args.detector,
        "sample_budget": budget if budget is not None else DEFAULT_SAMPLE_BUDGET,
        "sample_seed": getattr(args, "sample_seed", None) or 0,
    }


def _network_args_error(args) -> Optional[str]:
    """Why the network flags are inconsistent, or ``None``.

    The tuning knobs only mean something under the connection model;
    silently ignoring them would let a user believe a uniform run was
    bandwidth-shaped.
    """
    if getattr(args, "network", "uniform") == "uniform":
        for flag, name in (
            ("bandwidth", "--bandwidth"),
            ("rtt", "--rtt"),
            ("connections_per_origin", "--connections-per-origin"),
        ):
            if getattr(args, flag, None) is not None:
                return f"{name} requires --network connection"
        return None
    if args.bandwidth is not None and args.bandwidth <= 0:
        return f"--bandwidth must be > 0, got {args.bandwidth:g}"
    if args.rtt is not None and args.rtt <= 0:
        return f"--rtt must be > 0, got {args.rtt:g}"
    if args.connections_per_origin is not None and args.connections_per_origin < 1:
        return (
            f"--connections-per-origin must be >= 1, "
            f"got {args.connections_per_origin}"
        )
    return None


def _network_kwargs(args) -> dict:
    """WebRacer constructor kwargs for the network flags."""
    return {
        "network": getattr(args, "network", "uniform"),
        "bandwidth": getattr(args, "bandwidth", None),
        "rtt": getattr(args, "rtt", None),
        "connections_per_origin": getattr(args, "connections_per_origin", None),
    }


def _network_config(args) -> dict:
    """Ledger config additions for the connection network model.

    Uniform runs add nothing, so ledgers written before the connection
    model existed keep their config digests and still baseline against
    new uniform runs.
    """
    if getattr(args, "network", "uniform") == "uniform":
        return {}
    from .browser.network import (
        DEFAULT_BANDWIDTH,
        DEFAULT_CONNECTIONS_PER_ORIGIN,
        DEFAULT_RTT,
    )

    bandwidth = getattr(args, "bandwidth", None)
    rtt = getattr(args, "rtt", None)
    connections = getattr(args, "connections_per_origin", None)
    return {
        "network": args.network,
        "bandwidth": bandwidth if bandwidth is not None else DEFAULT_BANDWIDTH,
        "rtt": rtt if rtt is not None else DEFAULT_RTT,
        "connections_per_origin": (
            connections
            if connections is not None
            else DEFAULT_CONNECTIONS_PER_ORIGIN
        ),
    }


def _page_network(args) -> dict:
    """The :class:`~repro.schedule_runner.PageInput` network config the
    flags describe (``{}`` = uniform, the PageInput default)."""
    if getattr(args, "network", "uniform") == "uniform":
        return {}
    return {
        "model": args.network,
        "bandwidth": getattr(args, "bandwidth", None),
        "rtt": getattr(args, "rtt", None),
        "connections_per_origin": getattr(args, "connections_per_origin", None),
    }


def _parse_resources(mappings) -> tuple:
    """Parse ``--resource URL=PATH`` flags into a ``{url: content}`` map.

    Returns ``(resources, error)``; exactly one is ``None``.
    """
    resources = {}
    for mapping in mappings or ():
        url, _sep, path = mapping.partition("=")
        if not path:
            return None, f"bad --resource {mapping!r}; expected url=path"
        try:
            with open(path) as handle:
                resources[url] = handle.read()
        except OSError as exc:
            return None, f"cannot read --resource {path!r}: {exc.strerror or exc}"
    return resources, None


def _print_predictions(predictions) -> None:
    """Print SHB-predicted races (``--hb-backend shb`` runs)."""
    if not predictions:
        return
    print(
        f"\npredicted races (SHB; not reported in this schedule): "
        f"{len(predictions)}"
    )
    for prediction in predictions:
        print(f"  {prediction.describe()}")


def _load_trace_cli(path: str, hb_backend: str):
    """Load a trace for analyze/explain; returns ``None`` after printing a
    one-line error for a missing, unreadable or corrupt file."""
    try:
        return load_trace(path, hb_backend=hb_backend)
    except OSError as exc:
        _fail(f"cannot read trace {path!r}: {exc.strerror or exc}")
    except (ValueError, KeyError, TypeError, AttributeError) as exc:
        reason = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
        _fail(f"corrupt trace {path!r}: {reason}")
    return None


def _print_report(report) -> int:
    print(report.summary())
    print(render_race_report(report.classified))
    if report.trace.crashes:
        print(render_crashes(report.trace.crashes))
    return 1 if report.classified.harmful() else 0


def _make_obs(args) -> Optional[Instrumentation]:
    """A live Instrumentation when any profiling flag asks for one.

    ``--ledger`` counts: the run record snapshots per-phase spans and
    counters, so a ledgered run needs a live collector.  Without any of
    these flags the pipeline keeps the NULL sink (zero overhead).
    """
    if (
        args.profile
        or args.trace_out
        or args.stats_json
        or getattr(args, "ledger", None)
    ):
        return Instrumentation()
    return None


def _ledger_dir_error(path: str) -> Optional[str]:
    """Why ``path`` cannot hold a ledger, or ``None`` (validated up front,
    like every output path, so a bad ledger fails before the run)."""
    if os.path.isfile(path):
        return f"--ledger {path!r} is a file"
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        return f"cannot create --ledger {path!r}: {exc.strerror or exc}"
    if not os.access(path, os.W_OK):
        return f"--ledger {path!r} is not writable"
    return None


def _append_ledger(args, command, config, races, totals, obs, started) -> Optional[str]:
    """Append exactly one run record when ``--ledger`` is set.

    Called once per CLI invocation, in the parent process — sharded
    (``--jobs``) runs still yield a single record because workers never
    see the ledger arguments.
    """
    if not getattr(args, "ledger", None):
        return None
    from .obs.ledger import Ledger, build_run_record

    record = build_run_record(
        command,
        config,
        races,
        totals,
        obs=obs,
        duration_ms=(time.perf_counter() - started) * 1000.0,
    )
    try:
        ledger = Ledger(args.ledger)
        ledger.append(record)
    except (OSError, ValueError) as exc:
        return f"cannot append to ledger {args.ledger!r}: {exc}"
    print(f"run {record['run_id']} appended to {ledger.path}")
    return None


def _emit_document(args, document) -> Optional[str]:
    """Write a built report document to the requested report outputs."""
    from .explain import write_html_report, write_report_json

    if args.report_json:
        error = _write_output(
            args.report_json, lambda: write_report_json(document, args.report_json)
        )
        if error:
            return error
        print(f"race report (JSON) written to {args.report_json}")
    if args.report_html:
        error = _write_output(
            args.report_html, lambda: write_html_report(document, args.report_html)
        )
        if error:
            return error
        print(f"race report (HTML) written to {args.report_html}")
    return None


def _emit_reports(args, page_reports, obs, mode: str) -> Optional[str]:
    """Write --report-json / --report-html outputs when requested.

    ``page_reports`` is a list of ``(url, PageReport)`` pairs.  Evidence is
    built from the run's existing trace + HB store, strictly after
    detection, so flagged runs report byte-identical races.
    """
    if not (args.report_json or args.report_html):
        return None
    from .explain import build_report_document

    document = build_report_document(
        page_reports, hb_backend=args.hb_backend, mode=mode, obs=obs
    )
    return _emit_document(args, document)


def _emit_corpus_reports(args, corpus_report) -> Optional[str]:
    """Corpus report outputs, assembled from serialized site summaries.

    Both the sequential and the sharded runner leave a serialized
    evidence block (``SiteResult.report_page``) on every successful site,
    so assembly here is mode-independent — which is what keeps ``--jobs 1``
    and ``--jobs N`` report files byte-identical.  Failed sites carry no
    evidence and are simply absent from the document's pages.
    """
    if not (args.report_json or args.report_html):
        return None
    from .explain import assemble_report_document

    pages = [
        result.report_page
        for result in corpus_report.reports
        if result.report_page is not None
    ]
    document = assemble_report_document(
        pages, mode="corpus", hb_backend=args.hb_backend
    )
    return _emit_document(args, document)


def _emit_profile(args, obs: Optional[Instrumentation], extra=None) -> Optional[str]:
    """Print/write whatever profiling outputs the flags requested."""
    if obs is None:
        return None
    if args.profile:
        print()
        print(render_profile(obs))
    if args.trace_out:
        error = _write_output(
            args.trace_out, lambda: write_chrome_trace(obs, args.trace_out)
        )
        if error:
            return error
        print(f"chrome trace written to {args.trace_out}")
    if args.stats_json:

        def _write_stats():
            with open(args.stats_json, "w") as handle:
                json.dump(stats_dict(obs, extra=extra), handle, indent=2)

        error = _write_output(args.stats_json, _write_stats)
        if error:
            return error
        print(f"stats written to {args.stats_json}")
    return None


def cmd_check(args) -> int:
    """Run WebRacer on a local HTML file (the `check` subcommand)."""
    path_error = _validate_output_paths(args)
    if path_error:
        return _fail(path_error)
    scheduler_error = _scheduler_args_error(args)
    if scheduler_error:
        return _fail(scheduler_error)
    detector_error = _detector_args_error(args)
    if detector_error:
        return _fail(detector_error)
    network_error = _network_args_error(args)
    if network_error:
        return _fail(network_error)
    if args.ledger:
        ledger_error = _ledger_dir_error(args.ledger)
        if ledger_error:
            return _fail(ledger_error)
    started = time.perf_counter()
    sizes = None
    har_resources = {}
    if args.page.endswith(".har"):
        from .har import HarError, load_har

        try:
            workload = load_har(args.page)
        except HarError as exc:
            return _fail(f"bad HAR {args.page!r}: {exc}")
        except OSError as exc:
            return _fail(f"cannot read {args.page!r}: {exc.strerror or exc}")
        html = workload.html
        har_resources = workload.resources
        sizes = {url: float(size) for url, size in workload.sizes.items()}
    else:
        with open(args.page) as handle:
            html = handle.read()
    resources, resource_error = _parse_resources(args.resource)
    if resource_error:
        return _fail(resource_error)
    resources = {**har_resources, **resources}
    obs = _make_obs(args)
    racer = WebRacer(
        seed=args.seed,
        scheduler=args.scheduler,
        schedule_seed=args.schedule_seed,
        hb_backend=args.hb_backend,
        obs=obs,
        **_detector_kwargs(args),
        **_network_kwargs(args),
    )
    report = racer.check_page(
        html, resources=resources, url=args.page, sizes=sizes
    )
    status = _print_report(report)
    if report.sampling is not None:
        stats = report.sampling
        print(
            f"screening: tier {report.tier}, "
            f"{'suspicious' if report.suspicious else 'clean'} "
            f"(budget {stats['budget']}, tracked peak "
            f"{stats['tracked_peak']} of {stats['distinct_locations']} "
            f"locations, {stats['races_sampled']} sampled races)"
        )
    _print_predictions(report.predicted_races)
    if args.json:
        error = _write_output(
            args.json,
            lambda: dump_trace(report.trace, report.page.monitor.graph, args.json),
        )
        if error:
            return _fail(error)
        print(f"trace written to {args.json}")
    error = _emit_reports(args, [(args.page, report)], obs, mode="check")
    if error:
        return _fail(error)
    error = _emit_profile(
        args,
        obs,
        extra={
            "page": args.page,
            "races": {
                "raw": len(report.raw_races),
                "filtered": len(report.filtered_races),
                "harmful": len(report.classified.harmful()),
            },
        },
    )
    if error:
        return _fail(error)
    error = _append_ledger(
        args,
        "check",
        config={
            "page": args.page,
            "seed": args.seed,
            "scheduler": args.scheduler,
            "schedule_seed": args.schedule_seed,
            "hb_backend": args.hb_backend,
            **_detector_config(args),
            **_network_config(args),
        },
        races=_check_ledger_races(args.page, report),
        totals={
            "races_raw": len(report.raw_races),
            "races_filtered": len(report.filtered_races),
            "races_harmful": len(report.classified.harmful()),
            "races_predicted": len(report.predicted_races),
        },
        obs=obs,
        started=started,
    )
    if error:
        return _fail(error)
    return status


def _check_ledger_races(page_url: str, report) -> List[dict]:
    """Ledger race entries for one ``check`` run (verdict ``observed``)."""
    from .explain import race_fingerprint

    entries = {}
    for race, classified in zip(report.filtered_races, report.classified.races):
        fingerprint = race_fingerprint(race, report.trace)
        if fingerprint not in entries:
            entries[fingerprint] = {
                "fingerprint": fingerprint,
                "verdict": "observed",
                "race_type": classified.race_type,
                "harmful": classified.harmful,
                "location": str(classified.location),
                "description": classified.describe(),
                "page": page_url,
            }
            if report.tier is not None:
                entries[fingerprint]["tier"] = report.tier
    return list(entries.values())


def _corpus_tables_dict(corpus_report, full_run: bool):
    """Table 1 / Table 2 / totals as a machine-readable dict."""
    from .sites import PAPER_TABLE1, PAPER_TABLE2_TOTALS

    payload = {
        "sites_checked": len(corpus_report.reports),
        "full_run": full_run,
        "table1": corpus_report.table1(),
        "table2": [
            {
                "site": row["site"],
                **{
                    race_type: {"count": row[race_type][0], "harmful": row[race_type][1]}
                    for race_type in RACE_TYPES
                },
            }
            for row in corpus_report.table2()
        ],
        "table2_totals": {
            race_type: {"count": count, "harmful": harmful}
            for race_type, (count, harmful) in corpus_report.table2_totals().items()
        },
        # Per-type harmful counts for the *unfiltered* view, so the
        # machine-readable Table 1 carries the harmfulness information the
        # text report shows for Table 2.
        "table1_harmful": corpus_report.raw_harmful_totals(),
        "harmful_by_type": {
            race_type: harmful
            for race_type, (_count, harmful)
            in corpus_report.table2_totals().items()
        },
        # How many races each Section 5.3 filter suppressed, corpus-wide.
        "filters_removed": corpus_report.filters_removed_totals(),
        "sites_with_races": corpus_report.sites_with_filtered_races(),
        # Crash/timeout isolation: failed sites stay in the payload so a
        # partially failing run is still a complete account of the corpus.
        "sites_failed": len(corpus_report.failed()),
        "site_errors": [
            {"index": result.index, "site": result.url, "error": result.error}
            for result in corpus_report.failed()
        ],
    }
    if full_run:
        payload["paper"] = {
            "table1": PAPER_TABLE1,
            "table2_totals": {
                race_type: {"count": count, "harmful": harmful}
                for race_type, (count, harmful) in PAPER_TABLE2_TOTALS.items()
            },
            "sites_with_races": 41,
        }
    return payload


def _per_site_stats(corpus_report) -> List[dict]:
    """Per-site race totals for the corpus ``--stats-json`` payload."""
    stats = []
    for result in corpus_report.reports:
        entry = {
            "site": result.url,
            "races": {
                "raw": sum(result.raw_counts().values()),
                "filtered": sum(result.filtered_counts().values()),
                "harmful": sum(result.harmful_counts().values()),
            },
            "operations": result.operations,
            "accesses": result.accesses,
            "chc_queries": result.chc_queries,
            "duration_ms": result.duration_ms,
        }
        if result.error is not None:
            entry["error"] = result.error
        stats.append(entry)
    return stats


def cmd_corpus(args) -> int:
    """Run the Fortune-100 evaluation (the `corpus` subcommand)."""
    from .sites import PAPER_TABLE1, PAPER_TABLE2_TOTALS, build_corpus

    path_error = _validate_output_paths(args)
    if path_error:
        return _fail(path_error)
    scheduler_error = _scheduler_args_error(args)
    if scheduler_error:
        return _fail(scheduler_error)
    detector_error = _detector_args_error(args)
    if detector_error:
        return _fail(detector_error)
    network_error = _network_args_error(args)
    if network_error:
        return _fail(network_error)
    if args.jobs < 0:
        return _fail(f"--jobs must be >= 0, got {args.jobs}")
    if args.ledger:
        ledger_error = _ledger_dir_error(args.ledger)
        if ledger_error:
            return _fail(ledger_error)
    started = time.perf_counter()
    from .corpus_runner import resolve_jobs

    jobs = resolve_jobs(args.jobs)
    # The ledger needs fingerprints on the serialized site races, and
    # those only exist when evidence is collected.
    collect_evidence = bool(args.report_json or args.report_html or args.ledger)
    timeout = args.site_timeout if args.site_timeout else None
    obs = _make_obs(args)
    racer = WebRacer(
        seed=args.seed,
        scheduler=args.scheduler,
        schedule_seed=args.schedule_seed,
        hb_backend=args.hb_backend,
        obs=obs,
        **_detector_kwargs(args),
        **_network_kwargs(args),
    )
    if jobs == 1:
        sites = build_corpus(master_seed=args.seed, limit=args.sites)
        corpus_report = racer.check_corpus(
            sites,
            timeout=timeout,
            collect_evidence=collect_evidence,
            keep_pages=False,
        )
    else:
        corpus_report = racer.check_corpus_parallel(
            master_seed=args.seed,
            limit=args.sites,
            jobs=jobs,
            timeout=timeout,
            collect_evidence=collect_evidence,
        )

    # Paper comparisons only make sense against the full 100-site corpus.
    # Gate on the number of sites actually built: ``--sites 150`` clamps
    # to the full corpus (compare away), a smaller build never compares.
    full_run = len(corpus_report.reports) >= 100
    print("Table 1 — unfiltered (reproduced vs. paper):")
    print(render_table1(corpus_report.table1(), paper=PAPER_TABLE1))
    print()
    print("Table 2 — filtered races (harmful in parentheses):")
    print(
        render_table2(
            corpus_report.table2(),
            totals=corpus_report.table2_totals(),
            paper_totals=PAPER_TABLE2_TOTALS if full_run else None,
        )
    )
    line = f"sites with races: {corpus_report.sites_with_filtered_races()}"
    if full_run:
        line += " (paper 41)"
    print(line)
    screening = corpus_report.screening_summary()
    if screening is not None:
        print(
            f"screening ({args.detector}): "
            f"{screening['suspicious']} of {screening['sites_screened']} "
            f"sites suspicious, {screening['escalated']} escalated to "
            f"exact detection (tracked peak "
            f"{screening['tracked_peak_max']} locations)"
        )
    failed = corpus_report.failed()
    if failed:
        print(f"site errors: {len(failed)} of {len(corpus_report.reports)} sites")
        for result in failed:
            print(f"  [{result.index}] {result.url}: {result.error}")
    if args.json:

        def _write_tables():
            payload = _corpus_tables_dict(corpus_report, full_run)
            if screening is not None:
                payload["screening"] = {
                    **_detector_config(args),
                    **screening,
                    "suspicious_sites": sorted(
                        result.url
                        for result in corpus_report.ok()
                        if result.suspicious
                    ),
                }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)

        error = _write_output(args.json, _write_tables)
        if error:
            return _fail(error)
        print(f"tables written to {args.json}")
    error = _emit_corpus_reports(args, corpus_report)
    if error:
        return _fail(error)
    error = _emit_profile(args, obs, extra={"sites": _per_site_stats(corpus_report)})
    if error:
        return _fail(error)
    error = _append_ledger(
        args,
        "corpus",
        config={
            "sites": args.sites,
            "seed": args.seed,
            "scheduler": args.scheduler,
            "schedule_seed": args.schedule_seed,
            "hb_backend": args.hb_backend,
            # --jobs is an execution strategy, not a semantic input:
            # sharded and sequential runs are byte-identical by design,
            # so they share a config digest and diff against each other.
            **_detector_config(args),
            **_network_config(args),
        },
        races=_corpus_ledger_races(corpus_report),
        totals={
            "sites_checked": len(corpus_report.reports),
            "sites_failed": len(corpus_report.failed()),
            "sites_with_races": corpus_report.sites_with_filtered_races(),
            "races_filtered": sum(
                count
                for count, _harmful in corpus_report.table2_totals().values()
            ),
            "races_harmful": sum(
                harmful
                for _count, harmful in corpus_report.table2_totals().values()
            ),
        },
        obs=obs,
        started=started,
    )
    if error:
        return _fail(error)
    return 0


def _corpus_ledger_races(corpus_report) -> List[dict]:
    """Ledger race entries for one ``corpus`` run, one per distinct
    ``(fingerprint, site)`` (verdict ``observed``)."""
    entries = {}
    for result in corpus_report.reports:
        for race in result.races:
            fingerprint = race.get("fingerprint")
            if fingerprint is None:
                continue
            key = (fingerprint, result.url)
            if key not in entries:
                entries[key] = {
                    "fingerprint": fingerprint,
                    "verdict": "observed",
                    "race_type": race["type"],
                    "harmful": bool(race["harmful"]),
                    "location": race["location"],
                    "description": race.get("description", ""),
                    "page": result.url,
                }
                if result.tier is not None:
                    entries[key]["tier"] = result.tier
    return list(entries.values())


def cmd_explore(args) -> int:
    """Multi-schedule race exploration (the `explore` subcommand)."""
    from .explain.schedule_report import (
        assemble_explore_document,
        render_explore_text,
        write_explore_json,
    )
    from .schedule_runner import (
        ScheduleTrace,
        explore_pages,
        load_page_inputs,
        minimize_schedule,
    )

    path_error = _validate_output_paths(args)
    if path_error:
        return _fail(path_error)
    if args.schedules < 1:
        return _fail(f"--schedules must be >= 1, got {args.schedules}")
    if args.jobs < 0:
        return _fail(f"--jobs must be >= 0, got {args.jobs}")
    network_error = _network_args_error(args)
    if network_error:
        return _fail(network_error)
    if args.traces_dir:
        if os.path.isfile(args.traces_dir):
            return _fail(f"--traces-dir {args.traces_dir!r} is a file")
        try:
            os.makedirs(args.traces_dir, exist_ok=True)
        except OSError as exc:
            return _fail(
                f"cannot create --traces-dir {args.traces_dir!r}: "
                f"{exc.strerror or exc}"
            )
    if args.ledger:
        ledger_error = _ledger_dir_error(args.ledger)
        if ledger_error:
            return _fail(ledger_error)
    started = time.perf_counter()
    from .har import HarError

    try:
        pages = load_page_inputs(args.path)
    except HarError as exc:
        return _fail(f"bad HAR under {args.path!r}: {exc}")
    except OSError as exc:
        return _fail(str(exc))
    page_network = _page_network(args)
    if page_network:
        for page in pages:
            page.network = dict(page_network)
    obs = _make_obs(args)
    report = explore_pages(
        pages,
        schedules=args.schedules,
        seed=args.seed,
        jobs=args.jobs,
        hb_backend=args.hb_backend,
        obs=obs,
    )
    minimizations = []
    if args.minimize is not None:
        # An empty fingerprint would prefix-match every race; reject it
        # instead of silently minimizing an arbitrary one (or, worse,
        # silently skipping minimization altogether).
        if not args.minimize:
            return _fail("--minimize requires a non-empty fingerprint")
        witness = report.find_witness(args.minimize)
        if witness is None:
            return _fail(
                f"fingerprint {args.minimize!r} was not witnessed by any "
                f"schedule; nothing to minimize"
            )
        page_exploration, run = witness
        page = next(p for p in pages if p.url == page_exploration.url)
        try:
            minimizations.append(
                minimize_schedule(
                    page,
                    run.trace(),
                    next(
                        fp
                        for fp in run.fingerprints
                        if fp == args.minimize or fp.startswith(args.minimize)
                    ),
                    seed=args.seed,
                    hb_backend=args.hb_backend,
                    obs=obs,
                )
            )
        except ValueError as exc:
            return _fail(str(exc))
    document = assemble_explore_document(report, minimizations=minimizations)
    print(render_explore_text(document))
    if args.json:
        error = _write_output(
            args.json, lambda: write_explore_json(document, args.json)
        )
        if error:
            return _fail(error)
        print(f"explore report written to {args.json}")
    if args.traces_dir:
        saved = 0
        for page_exploration in report.pages:
            stem = os.path.splitext(os.path.basename(page_exploration.url))[0]
            for run in page_exploration.runs:
                if run.trace_dict is None:
                    continue
                trace_path = os.path.join(
                    args.traces_dir, f"{stem}.{run.sid}.trace.json"
                )
                error = _write_output(
                    trace_path,
                    lambda t=run.trace_dict, p=trace_path: ScheduleTrace.from_dict(
                        t
                    ).save(p),
                )
                if error:
                    return _fail(error)
                saved += 1
        for entry in minimizations:
            stem = os.path.splitext(os.path.basename(entry.page))[0]
            trace_path = os.path.join(
                args.traces_dir,
                f"{stem}.minimized.{entry.fingerprint}.trace.json",
            )
            error = _write_output(
                trace_path, lambda p=trace_path: entry.minimized.save(p)
            )
            if error:
                return _fail(error)
            saved += 1
        print(f"{saved} schedule trace(s) written to {args.traces_dir}")
    error = _emit_profile(args, obs, extra={"totals": document["totals"]})
    if error:
        return _fail(error)
    error = _append_ledger(
        args,
        "explore",
        config={
            "path": args.path,
            "schedules": args.schedules,
            "seed": args.seed,
            "hb_backend": args.hb_backend,
            **_network_config(args),
        },
        races=_explore_ledger_races(document),
        totals=document["totals"],
        obs=obs,
        started=started,
    )
    if error:
        return _fail(error)
    return 0


def _explore_ledger_races(document) -> List[dict]:
    """Ledger race entries from the explore document (verdict ``stable``
    or ``schedule-sensitive`` — the matrix's own classification)."""
    entries = []
    for page in document["pages"]:
        for race in page["races"]:
            entries.append(
                {
                    "fingerprint": race["fingerprint"],
                    "verdict": (
                        "stable" if race["stable"] else "schedule-sensitive"
                    ),
                    "race_type": race.get("race_type", ""),
                    "harmful": bool(race.get("harmful", False)),
                    "location": race.get("location", ""),
                    "description": race.get("description", ""),
                    "page": page["url"],
                }
            )
    return entries


def cmd_predict(args) -> int:
    """Single-trace race prediction (the `predict` subcommand)."""
    from .explain.schedule_report import (
        assemble_predict_document,
        render_predict_text,
        write_predict_json,
    )
    from .predict import predict_pages
    from .schedule_runner import load_page_inputs

    path_error = _validate_output_paths(args)
    if path_error:
        return _fail(path_error)
    if args.budget < 1:
        return _fail(f"--budget must be >= 1, got {args.budget}")
    network_error = _network_args_error(args)
    if network_error:
        return _fail(network_error)
    if args.ledger:
        ledger_error = _ledger_dir_error(args.ledger)
        if ledger_error:
            return _fail(ledger_error)
    started = time.perf_counter()
    resources, resource_error = _parse_resources(args.resource)
    if resource_error:
        return _fail(resource_error)
    from .har import HarError

    try:
        pages = load_page_inputs(args.path, resources)
    except HarError as exc:
        return _fail(f"bad HAR under {args.path!r}: {exc}")
    except OSError as exc:
        return _fail(str(exc))
    page_network = _page_network(args)
    if page_network:
        for page in pages:
            page.network = dict(page_network)
    obs = _make_obs(args)
    reports = predict_pages(
        pages,
        seed=args.seed,
        hb_backend=args.hb_backend,
        budget=args.budget,
        minimize=args.minimize,
        obs=obs,
    )
    document = assemble_predict_document(
        reports, with_evidence=not args.no_evidence
    )
    print(render_predict_text(document))
    if args.json:
        error = _write_output(
            args.json, lambda: write_predict_json(document, args.json)
        )
        if error:
            return _fail(error)
        print(f"predict report written to {args.json}")
    error = _emit_profile(args, obs, extra={"totals": document["totals"]})
    if error:
        return _fail(error)
    failed = [report for report in reports if not report.ok]
    if failed:
        return _fail(
            f"{len(failed)} of {len(reports)} page(s) failed: "
            f"{failed[0].page}: {failed[0].error}"
        )
    error = _append_ledger(
        args,
        "predict",
        config={
            "path": args.path,
            "seed": args.seed,
            "budget": args.budget,
            "minimize": bool(args.minimize),
            "hb_backend": args.hb_backend,
            **_network_config(args),
        },
        races=_predict_ledger_races(document),
        totals=document["totals"],
        obs=obs,
        started=started,
    )
    if error:
        return _fail(error)
    return 0


def _predict_ledger_races(document) -> List[dict]:
    """Ledger race entries from the predict document: the base run's
    observed races plus every prediction, with its confirmation verdict."""
    entries = []
    for page in document["pages"]:
        if page["error"] is not None:
            continue
        for fingerprint, info in sorted(page["observed"]["races"].items()):
            entries.append(
                {
                    "fingerprint": fingerprint,
                    "verdict": "observed",
                    "race_type": info.get("race_type", ""),
                    "harmful": bool(info.get("harmful", False)),
                    "location": info.get("location", ""),
                    "description": info.get("description", ""),
                    "page": page["url"],
                }
            )
        for prediction in page["predictions"]:
            entries.append(
                {
                    "fingerprint": prediction["fingerprint"],
                    "verdict": (
                        "predicted+confirmed"
                        if prediction["confirmed"]
                        else "predicted-only"
                    ),
                    "race_type": prediction.get("race_type", ""),
                    "harmful": bool(prediction.get("harmful", False)),
                    "location": prediction.get("location", ""),
                    "description": prediction.get("description", ""),
                    "page": page["url"],
                }
            )
    return entries


def cmd_analyze(args) -> int:
    """Analyse a captured trace file (the `analyze` subcommand)."""
    loaded = _load_trace_cli(args.trace, args.hb_backend)
    if loaded is None:
        return 2
    report = loaded.report(apply_filters=not args.no_filters)
    print(f"{args.trace}: {len(loaded.trace.accesses)} accesses, "
          f"{len(loaded.trace.operations.operations)} operations")
    print(render_race_report(report, title=report.summary()))
    if getattr(loaded.graph, "is_predictive", False):
        analysis = loaded.predict()
        print(f"\n{analysis.summary()}")
        _print_predictions(analysis.predictions)
    return 1 if report.harmful() else 0


def cmd_explain(args) -> int:
    """Print HB evidence for races in a captured trace (`explain`)."""
    from .explain import render_all_evidence, render_evidence

    loaded = _load_trace_cli(args.trace, args.hb_backend)
    if loaded is None:
        return 2
    report, records = loaded.explain(apply_filters=not args.no_filters)
    print(
        f"{args.trace}: {len(loaded.trace.accesses)} accesses, "
        f"{len(loaded.trace.operations.operations)} operations, "
        f"{report.total()} races"
    )
    if args.race is not None:
        if not 0 <= args.race < len(records):
            print(
                f"no race #{args.race}; trace has {len(records)} race(s)",
                file=sys.stderr,
            )
            return 2
        print(render_evidence(records[args.race], args.race))
    else:
        print(render_all_evidence(records))
    return 1 if report.harmful() else 0


def cmd_history(args) -> int:
    """List the run ledger and fingerprint lifecycle (`history`)."""
    from .explain import (
        assemble_history_document,
        render_history_json,
        render_history_text,
        write_trend_html,
    )
    from .obs.ledger import Ledger, LedgerError

    path_error = _validate_output_paths(args)
    if path_error:
        return _fail(path_error)
    ledger = Ledger(args.ledger)
    try:
        records = ledger.records()
    except LedgerError as exc:
        return _fail(str(exc))
    document = assemble_history_document(
        records,
        ledger.path,
        command=args.filter_command,
        limit=args.last,
    )
    print(render_history_text(document))
    if args.json:

        def _write_json():
            with open(args.json, "w") as handle:
                handle.write(render_history_json(document))

        error = _write_output(args.json, _write_json)
        if error:
            return _fail(error)
        print(f"history report written to {args.json}")
    if args.html:
        error = _write_output(
            args.html, lambda: write_trend_html(document, args.html)
        )
        if error:
            return _fail(error)
        print(f"trend report (HTML) written to {args.html}")
    return 0


def cmd_diff(args) -> int:
    """Diff two ledgered runs: races and per-phase perf (`diff`)."""
    from .obs.ledger import Ledger, LedgerError
    from .obs.regress import diff_records, perf_regressions, render_diff_text

    path_error = _validate_output_paths(args)
    if path_error:
        return _fail(path_error)
    if args.against is not None and args.runs:
        return _fail("give either RUN_A RUN_B or --against, not both")
    if args.against is None and len(args.runs) != 2:
        return _fail("diff needs two run references (or --against last)")
    if args.fail_on_regression is not None and args.fail_on_regression <= 0:
        return _fail(
            f"--fail-on-regression must be > 0, got {args.fail_on_regression}"
        )
    ledger = Ledger(args.ledger)
    try:
        if args.against is not None:
            record_b = ledger.find("-1")
            if args.against == "last":
                record_a = ledger.baseline_for(record_b)
                if record_a is None:
                    return _fail(
                        f"no earlier {record_b['command']!r} run with config "
                        f"digest {record_b['config_digest']} to diff against"
                    )
            else:
                record_a = ledger.find(args.against)
        else:
            record_a = ledger.find(args.runs[0])
            record_b = ledger.find(args.runs[1])
    except LedgerError as exc:
        return _fail(str(exc))
    diff = diff_records(record_a, record_b)
    regressions = (
        perf_regressions(diff, args.fail_on_regression)
        if args.fail_on_regression is not None
        else []
    )
    print(render_diff_text(diff, regressions))
    if args.json:

        def _write_json():
            with open(args.json, "w") as handle:
                json.dump(diff.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")

        error = _write_output(args.json, _write_json)
        if error:
            return _fail(error)
        print(f"diff written to {args.json}")
    if regressions:
        return 1
    return 0


def _add_hb_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hb-backend", choices=HB_BACKENDS, default="graph",
                        help="happens-before representation for CHC queries")


def _add_detector(parser: argparse.ArgumentParser) -> None:
    from .core.sampling import DETECTOR_MODES

    parser.add_argument("--detector", choices=DETECTOR_MODES,
                        default="exact",
                        help="exact: full LastRead/LastWrite detection; "
                             "sampling: budgeted screening only; two-tier: "
                             "screen every page, escalate suspicious ones "
                             "to exact detection over the recorded trace")
    parser.add_argument("--sample-budget", type=int, default=None,
                        metavar="N",
                        help="max locations the sampling reservoir tracks "
                             "(default 64; requires --detector "
                             "sampling/two-tier)")
    parser.add_argument("--sample-seed", type=int, default=None,
                        metavar="N",
                        help="seed for the sampling reservoir; per-page "
                             "seeds derive position-independently from it "
                             "(default 0; requires --detector "
                             "sampling/two-tier)")


def _add_scheduler(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheduler", choices=SCHEDULER_POLICIES,
                        default="fifo",
                        help="event-loop task scheduling policy")
    parser.add_argument("--schedule-seed", type=int, default=None,
                        metavar="N",
                        help="seed for --scheduler random; per-page seeds "
                             "derive position-independently from it")


def _add_network(parser: argparse.ArgumentParser) -> None:
    from .browser.network import NETWORK_MODELS

    parser.add_argument("--network", choices=NETWORK_MODELS,
                        default="uniform",
                        help="network model: uniform (one seeded latency "
                             "per resource) or connection (per-origin "
                             "connection pools, slow-start ramp, shared "
                             "bandwidth)")
    parser.add_argument("--bandwidth", type=float, default=None,
                        metavar="KBPS",
                        help="shared downlink in kilobytes/second "
                             "(default 1500; requires --network connection)")
    parser.add_argument("--rtt", type=float, default=None, metavar="MS",
                        help="round-trip time in virtual ms (default 40; "
                             "requires --network connection)")
    parser.add_argument("--connections-per-origin", type=int, default=None,
                        metavar="N",
                        help="parallel connections per origin (default 6; "
                             "requires --network connection)")


def _add_profiling(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing and counter table")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write a Chrome trace-event file (chrome://tracing)")
    parser.add_argument("--stats-json", metavar="FILE",
                        help="write phase timings and counters as JSON")


def _add_ledger(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ledger", metavar="DIR",
                        help="append this run's record to DIR/ledger.jsonl "
                             "(cross-run history for `repro history` and "
                             "`repro diff`)")


def _add_reports(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--report-json", metavar="FILE",
                        help="write a schema-validated race report with "
                             "per-race HB evidence")
    parser.add_argument("--report-html", metavar="FILE",
                        help="write a self-contained single-file HTML race "
                             "report")


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="WebRacer — race detection for web applications"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check",
                           help="check an HTML file (or .har capture) for races")
    check.add_argument("page", help="path to the HTML file or .har capture")
    check.add_argument("--resource", action="append", metavar="URL=PATH",
                       help="map a sub-resource URL to a local file")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--json", help="dump the trace to this file")
    _add_network(check)
    _add_scheduler(check)
    _add_hb_backend(check)
    _add_detector(check)
    _add_profiling(check)
    _add_reports(check)
    _add_ledger(check)
    check.set_defaults(func=cmd_check)

    corpus = sub.add_parser("corpus", help="run the Fortune-100 evaluation")
    corpus.add_argument("--sites", type=int, default=100)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the corpus run "
                             "(0 = one per CPU; default 1, sequential)")
    corpus.add_argument("--site-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-site wall-clock limit; an over-budget "
                             "site records an error and the run continues")
    corpus.add_argument("--json", metavar="FILE",
                        help="write Table 1 / Table 2 / totals as JSON")
    _add_network(corpus)
    _add_scheduler(corpus)
    _add_hb_backend(corpus)
    _add_detector(corpus)
    _add_profiling(corpus)
    _add_reports(corpus)
    _add_ledger(corpus)
    corpus.set_defaults(func=cmd_corpus)

    explore = sub.add_parser(
        "explore",
        help="explore a page (or directory of pages) under many schedules",
    )
    explore.add_argument("path", help="HTML file or directory of pages")
    explore.add_argument("--schedules", type=int, default=8, metavar="N",
                         help="matrix width: fifo + adversarial + N-2 "
                              "seeded-random schedules (default 8)")
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the page×schedule "
                              "matrix (0 = one per CPU; default 1)")
    explore.add_argument("--json", metavar="FILE",
                         help="write the explore report as JSON")
    explore.add_argument("--traces-dir", metavar="DIR",
                         help="save every recorded schedule trace "
                              "(replayable) into this directory")
    explore.add_argument("--minimize", metavar="FINGERPRINT",
                         help="ddmin-minimize a witnessed fingerprint's "
                              "schedule (prefix match allowed)")
    _add_network(explore)
    _add_hb_backend(explore)
    _add_profiling(explore)
    _add_ledger(explore)
    explore.set_defaults(func=cmd_explore)

    predict = sub.add_parser(
        "predict",
        help="predict races from a single recorded trace and confirm "
             "them by replaying witnessing reorderings",
    )
    predict.add_argument("path", help="HTML file or directory of pages")
    predict.add_argument("--resource", action="append", metavar="URL=PATH",
                         help="map a sub-resource URL to a local file "
                              "(file mode; directories auto-map siblings)")
    predict.add_argument("--seed", type=int, default=0)
    predict.add_argument("--budget", type=int, default=6, metavar="N",
                         help="witness schedules tried per page: "
                              "adversarial + N-1 seeded-random (default 6)")
    predict.add_argument("--minimize", action="store_true",
                         help="ddmin-minimize each confirmed prediction's "
                              "witness schedule")
    predict.add_argument("--json", metavar="FILE",
                         help="write the predict report as JSON")
    predict.add_argument("--no-evidence", action="store_true",
                         help="omit per-prediction HB evidence from --json")
    _add_network(predict)
    _add_hb_backend(predict)
    _add_profiling(predict)
    _add_ledger(predict)
    predict.set_defaults(func=cmd_predict)

    analyze = sub.add_parser("analyze", help="analyse a captured trace")
    analyze.add_argument("trace", help="path to a trace JSON file")
    analyze.add_argument("--no-filters", action="store_true")
    _add_hb_backend(analyze)
    analyze.set_defaults(func=cmd_analyze)

    explain = sub.add_parser(
        "explain", help="print HB evidence for races in a captured trace"
    )
    explain.add_argument("trace", help="path to a trace JSON file")
    explain.add_argument("--race", type=int, metavar="N",
                         help="explain only race #N (report order)")
    explain.add_argument("--no-filters", action="store_true")
    _add_hb_backend(explain)
    explain.set_defaults(func=cmd_explain)

    history = sub.add_parser(
        "history",
        help="list ledgered runs and race-fingerprint lifecycle trends",
    )
    history.add_argument("--ledger", required=True, metavar="DIR",
                         help="ledger directory (holds ledger.jsonl)")
    history.add_argument("--command", dest="filter_command",
                         choices=("check", "corpus", "explore", "predict"),
                         help="only runs of this subcommand")
    history.add_argument("--last", type=int, metavar="N",
                         help="only the N most recent runs (after filtering)")
    history.add_argument("--json", metavar="FILE",
                         help="write the schema-validated history document")
    history.add_argument("--html", metavar="FILE",
                         help="write a self-contained HTML trend report "
                              "with per-phase duration sparklines")
    history.set_defaults(func=cmd_history)

    diff = sub.add_parser(
        "diff",
        help="diff two ledgered runs: new/resolved races and per-phase "
             "perf deltas",
    )
    diff.add_argument("runs", nargs="*", metavar="RUN",
                      help="two run references: run id, unique id prefix, "
                           "or index (-1 = latest)")
    diff.add_argument("--ledger", required=True, metavar="DIR",
                      help="ledger directory (holds ledger.jsonl)")
    diff.add_argument("--against", metavar="REF",
                      help="diff the latest run against REF; 'last' picks "
                           "the most recent earlier run with the same "
                           "command and config digest")
    diff.add_argument("--fail-on-regression", type=float, metavar="PCT",
                      help="exit nonzero when any phase (or the whole run) "
                           "slowed down by more than PCT percent")
    diff.add_argument("--json", metavar="FILE",
                      help="write the diff as JSON")
    diff.set_defaults(func=cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
