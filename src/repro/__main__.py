"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``check PAGE.html [--resource url=path]... [--seed N] [--json out.json]``
    Run WebRacer on a local HTML file and print the classified report.
    ``--resource`` maps a URL referenced by the page (script src, iframe
    src, image, XHR endpoint) to a local file.  ``--json`` additionally
    dumps the full execution trace for offline analysis.

``corpus [--sites N] [--seed N]``
    Build the synthetic Fortune-100 corpus and print Table 1 / Table 2.

Both commands accept ``--hb-backend {graph,chains,crosscheck}`` to select
the happens-before representation answering CHC queries: the paper's graph
with frozen ancestor sets (default), incremental chain vector clocks, or
both cross-checked against each other (slow; raises on any disagreement).

``analyze TRACE.json``
    Re-run detection, filtering and classification on a captured trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import WebRacer
from .core.hb.backend import HB_BACKENDS
from .core.render import render_crashes, render_race_report, render_table1, render_table2
from .core.report import RACE_TYPES
from .core.serialize import dump_trace, load_trace


def _print_report(report) -> int:
    print(report.summary())
    print(render_race_report(report.classified))
    if report.trace.crashes:
        print(render_crashes(report.trace.crashes))
    return 1 if report.classified.harmful() else 0


def cmd_check(args) -> int:
    """Run WebRacer on a local HTML file (the `check` subcommand)."""
    with open(args.page) as handle:
        html = handle.read()
    resources = {}
    for mapping in args.resource or ():
        url, _sep, path = mapping.partition("=")
        if not path:
            print(f"bad --resource {mapping!r}; expected url=path", file=sys.stderr)
            return 2
        with open(path) as handle:
            resources[url] = handle.read()
    racer = WebRacer(seed=args.seed, hb_backend=args.hb_backend)
    report = racer.check_page(html, resources=resources, url=args.page)
    status = _print_report(report)
    if args.json:
        dump_trace(report.trace, report.page.monitor.graph, args.json)
        print(f"trace written to {args.json}")
    return status


def cmd_corpus(args) -> int:
    """Run the Fortune-100 evaluation (the `corpus` subcommand)."""
    from .sites import PAPER_TABLE1, PAPER_TABLE2_TOTALS, build_corpus

    sites = build_corpus(master_seed=args.seed, limit=args.sites)
    racer = WebRacer(seed=args.seed, hb_backend=args.hb_backend)
    corpus_report = racer.check_corpus(sites)

    full_run = args.sites == 100
    print("Table 1 — unfiltered (reproduced vs. paper):")
    print(render_table1(corpus_report.table1(), paper=PAPER_TABLE1))
    print()
    print("Table 2 — filtered races (harmful in parentheses):")
    print(
        render_table2(
            corpus_report.table2(),
            totals=corpus_report.table2_totals(),
            paper_totals=PAPER_TABLE2_TOTALS if full_run else None,
        )
    )
    # Paper comparisons only make sense against the full 100-site corpus
    # (same gating as the Table 2 paper_totals row above).
    line = f"sites with races: {corpus_report.sites_with_filtered_races()}"
    if full_run:
        line += " (paper 41)"
    print(line)
    return 0


def cmd_analyze(args) -> int:
    """Analyse a captured trace file (the `analyze` subcommand)."""
    loaded = load_trace(args.trace)
    report = loaded.report(apply_filters=not args.no_filters)
    print(f"{args.trace}: {len(loaded.trace.accesses)} accesses, "
          f"{len(loaded.trace.operations.operations)} operations")
    print(render_race_report(report, title=report.summary()))
    return 1 if report.harmful() else 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="WebRacer — race detection for web applications"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check an HTML file for races")
    check.add_argument("page", help="path to the HTML file")
    check.add_argument("--resource", action="append", metavar="URL=PATH",
                       help="map a sub-resource URL to a local file")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--json", help="dump the trace to this file")
    check.add_argument("--hb-backend", choices=HB_BACKENDS, default="graph",
                       help="happens-before representation for CHC queries")
    check.set_defaults(func=cmd_check)

    corpus = sub.add_parser("corpus", help="run the Fortune-100 evaluation")
    corpus.add_argument("--sites", type=int, default=100)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--hb-backend", choices=HB_BACKENDS, default="graph",
                        help="happens-before representation for CHC queries")
    corpus.set_defaults(func=cmd_corpus)

    analyze = sub.add_parser("analyze", help="analyse a captured trace")
    analyze.add_argument("trace", help="path to a trace JSON file")
    analyze.add_argument("--no-filters", action="store_true")
    analyze.set_defaults(func=cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
