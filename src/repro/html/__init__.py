"""HTML substrate: tokenizer and incremental (pausable) parser."""

from .parser import IncrementalHtmlParser, ParseUnit, parse_html
from .tokenizer import (
    Comment,
    Doctype,
    EndTag,
    HtmlTokenizer,
    RAW_TEXT_TAGS,
    StartTag,
    Text,
    Token,
    VOID_TAGS,
    tokenize_html,
)

__all__ = [
    "Comment",
    "Doctype",
    "EndTag",
    "HtmlTokenizer",
    "IncrementalHtmlParser",
    "ParseUnit",
    "RAW_TEXT_TAGS",
    "StartTag",
    "Text",
    "Token",
    "VOID_TAGS",
    "parse_html",
    "tokenize_html",
]
