"""HTML tokenizer.

Turns markup text into a flat stream of :class:`StartTag` / :class:`EndTag`
/ :class:`Text` / :class:`Comment` / :class:`Doctype` tokens.  Covers the
HTML subset real pages' structure needs: quoted/unquoted/bare attributes,
self-closing tags, comments, and raw-text handling for ``<script>`` bodies
(everything up to the matching ``</script>`` is a single text token, so
JavaScript containing ``<`` doesn't confuse the tokenizer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

#: Tags that never have content or end tags.
VOID_TAGS = frozenset(
    ["img", "input", "br", "hr", "meta", "link", "area", "base", "col", "embed",
     "source", "track", "wbr"]
)

#: Tags whose content is raw text up to the matching end tag.
RAW_TEXT_TAGS = frozenset(["script", "style"])


@dataclass
class StartTag:
    """An opening tag with its attributes."""
    name: str
    attributes: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass
class EndTag:
    """A closing tag."""
    name: str


@dataclass
class Text:
    """A run of character data."""
    data: str


@dataclass
class Comment:
    """An HTML comment."""
    data: str


@dataclass
class Doctype:
    """A doctype declaration."""
    data: str


Token = Union[StartTag, EndTag, Text, Comment, Doctype]


class HtmlTokenizer:
    """Single-pass HTML tokenizer."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0

    def tokenize(self) -> List[Token]:
        """Tokenize the whole source; whitespace-only text is dropped."""
        tokens: List[Token] = []
        while self.pos < len(self.source):
            if self.source.startswith("<!--", self.pos):
                tokens.append(self._read_comment())
            elif self.source.startswith("<!", self.pos):
                tokens.append(self._read_doctype())
            elif self.source.startswith("</", self.pos):
                tokens.append(self._read_end_tag())
            elif self.source.startswith("<", self.pos) and self._looks_like_tag():
                start_tag = self._read_start_tag()
                tokens.append(start_tag)
                if (
                    start_tag.name in RAW_TEXT_TAGS
                    and not start_tag.self_closing
                ):
                    raw, end = self._read_raw_text(start_tag.name)
                    if raw:
                        tokens.append(Text(raw))
                    if end is not None:
                        tokens.append(end)
            else:
                tokens.append(self._read_text())
        return [
            token
            for token in tokens
            if not (isinstance(token, Text) and not token.data.strip())
        ]

    # ------------------------------------------------------------------

    def _looks_like_tag(self) -> bool:
        nxt = self.source[self.pos + 1 : self.pos + 2]
        return bool(nxt) and (nxt.isalpha() or nxt == "_")

    def _read_comment(self) -> Comment:
        end = self.source.find("-->", self.pos + 4)
        if end == -1:
            data = self.source[self.pos + 4 :]
            self.pos = len(self.source)
            return Comment(data)
        data = self.source[self.pos + 4 : end]
        self.pos = end + 3
        return Comment(data)

    def _read_doctype(self) -> Doctype:
        end = self.source.find(">", self.pos)
        if end == -1:
            end = len(self.source)
        data = self.source[self.pos + 2 : end]
        self.pos = min(end + 1, len(self.source))
        return Doctype(data)

    def _read_end_tag(self) -> EndTag:
        end = self.source.find(">", self.pos)
        if end == -1:
            end = len(self.source)
        name = self.source[self.pos + 2 : end].strip().lower()
        self.pos = min(end + 1, len(self.source))
        return EndTag(name)

    def _read_start_tag(self) -> StartTag:
        pos = self.pos + 1
        start = pos
        while pos < len(self.source) and (
            self.source[pos].isalnum() or self.source[pos] in "-_"
        ):
            pos += 1
        name = self.source[start:pos].lower()
        attributes: Dict[str, str] = {}
        self_closing = False
        while pos < len(self.source):
            while pos < len(self.source) and self.source[pos] in " \t\r\n":
                pos += 1
            if pos >= len(self.source):
                break
            ch = self.source[pos]
            if ch == ">":
                pos += 1
                break
            if ch == "/":
                pos += 1
                if pos < len(self.source) and self.source[pos] == ">":
                    self_closing = True
                    pos += 1
                    break
                continue
            # attribute name
            attr_start = pos
            while pos < len(self.source) and self.source[pos] not in " \t\r\n=/>":
                pos += 1
            attr_name = self.source[attr_start:pos].lower()
            while pos < len(self.source) and self.source[pos] in " \t\r\n":
                pos += 1
            if pos < len(self.source) and self.source[pos] == "=":
                pos += 1
                while pos < len(self.source) and self.source[pos] in " \t\r\n":
                    pos += 1
                if pos < len(self.source) and self.source[pos] in "\"'":
                    quote = self.source[pos]
                    pos += 1
                    value_start = pos
                    while pos < len(self.source) and self.source[pos] != quote:
                        pos += 1
                    value = self.source[value_start:pos]
                    pos = min(pos + 1, len(self.source))
                else:
                    value_start = pos
                    while pos < len(self.source) and self.source[pos] not in " \t\r\n>":
                        pos += 1
                    value = self.source[value_start:pos]
            else:
                # Bare attribute: present with empty value ("async", "defer").
                value = "true"
            if attr_name:
                attributes[attr_name] = _unescape(value)
        self.pos = pos
        if name in VOID_TAGS:
            self_closing = True
        return StartTag(name=name, attributes=attributes, self_closing=self_closing)

    def _read_raw_text(self, tag: str):
        """Raw content until ``</tag>``; returns (text, EndTag-or-None)."""
        close = f"</{tag}"
        lower = self.source.lower()
        index = lower.find(close, self.pos)
        if index == -1:
            data = self.source[self.pos :]
            self.pos = len(self.source)
            return data, None
        data = self.source[self.pos : index]
        end = self.source.find(">", index)
        self.pos = len(self.source) if end == -1 else end + 1
        return data, EndTag(tag)

    def _read_text(self) -> Text:
        end = self.source.find("<", self.pos + 1)
        if end == -1:
            end = len(self.source)
        data = self.source[self.pos : end]
        self.pos = end
        return Text(_unescape(data))


_ENTITIES = {
    "&amp;": "&",
    "&lt;": "<",
    "&gt;": ">",
    "&quot;": '"',
    "&#39;": "'",
    "&apos;": "'",
    "&nbsp;": " ",
}


def _unescape(text: str) -> str:
    if "&" not in text:
        return text
    for entity, char in _ENTITIES.items():
        text = text.replace(entity, char)
    return text


def tokenize_html(source: str) -> List[Token]:
    """Tokenize ``source`` markup."""
    return HtmlTokenizer(source).tokenize()
