"""Incremental HTML parser.

Builds the DOM element-by-element, *pausably*: each call to
:meth:`IncrementalHtmlParser.next_unit` produces at most one
:class:`ParseUnit` — one element, corresponding to one ``parse(E)``
operation of the paper (Section 3.2).  The page loader wraps the unit in an
operation, applies the static-HTML happens-before rules (rule 1), and then
``commit()``s it, which performs the instrumented DOM insertion.

Pausability is what models *partial page rendering* (Section 2.1): between
units the browser's event loop may run timers, network completions, or
(simulated) user input, letting the races the paper describes actually
interleave.

Structural simplifications (documented in DESIGN.md): ``html``/``head``/
``body`` tags fold into the document's implicit scaffold; iframes carry
their content via ``src`` (a separate document); scripts surface only once
their content is complete (end tag seen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dom.document import Document
from ..dom.element import Element
from ..dom.node import Node
from .tokenizer import Comment, Doctype, EndTag, StartTag, Text, Token, tokenize_html

#: Tags folded into the implicit document scaffold.
_SCAFFOLD_TAGS = frozenset(["html", "head", "body"])


@dataclass
class ParseUnit:
    """One parsed element, ready to be inserted under an operation."""

    element: Element
    parent: Node
    #: Source order index of this element within its document.
    order: int

    def commit(self, document: Document) -> Element:
        """Perform the (instrumented) insertion of the element."""
        document.insert(self.element, parent=self.parent)
        return self.element


class IncrementalHtmlParser:
    """Pull-based tree builder over the token stream."""

    def __init__(self, document: Document, source: str):
        self.document = document
        self.tokens: List[Token] = tokenize_html(source)
        self.index = 0
        document.ensure_root()
        self._stack: List[Node] = [document.body]
        self._order = 0

    @property
    def finished(self) -> bool:
        """Has the whole token stream been consumed?"""
        return self.index >= len(self.tokens)

    def next_unit(self) -> Optional[ParseUnit]:
        """Produce the next element to parse, or None when input ends.

        Non-element tokens (text, comments, end tags) are consumed along
        the way: text attaches to the innermost open element, end tags pop
        the open-element stack.
        """
        while self.index < len(self.tokens):
            token = self.tokens[self.index]
            self.index += 1
            if isinstance(token, (Comment, Doctype)):
                continue
            if isinstance(token, Text):
                owner = self._stack[-1]
                if isinstance(owner, Element):
                    owner.text += token.data
                continue
            if isinstance(token, EndTag):
                self._pop(token.name)
                continue
            if isinstance(token, StartTag):
                if token.name in _SCAFFOLD_TAGS:
                    continue
                element = self.document.create_element(token.name, token.attributes)
                parent = self._stack[-1]
                unit = ParseUnit(element=element, parent=parent, order=self._order)
                self._order += 1
                if token.name == "script" and not token.self_closing:
                    # Collect the script body before surfacing the unit, so
                    # exe(E) has its source.  Script elements never nest.
                    self._absorb_script_body(element)
                elif not token.self_closing:
                    self._stack.append(element)
                return unit
        return None

    def remaining_units(self) -> List[ParseUnit]:
        """Drain the parser (used by tests; the page loader pulls one at a
        time so other tasks can interleave)."""
        units = []
        while True:
            unit = self.next_unit()
            if unit is None:
                return units
            units.append(unit)

    # ------------------------------------------------------------------

    def _absorb_script_body(self, element: Element) -> None:
        while self.index < len(self.tokens):
            token = self.tokens[self.index]
            self.index += 1
            if isinstance(token, Text):
                element.text += token.data
            elif isinstance(token, EndTag) and token.name == "script":
                return
            else:
                # Malformed nesting inside a script: tokenizer guarantees
                # this doesn't happen, but stay robust.
                return

    def _pop(self, name: str) -> None:
        if name in _SCAFFOLD_TAGS:
            return
        for index in range(len(self._stack) - 1, 0, -1):
            node = self._stack[index]
            if isinstance(node, Element) and node.tag == name:
                del self._stack[index:]
                return
        # Unmatched end tag: ignored, like browsers do.


def parse_html(document: Document, source: str) -> List[Element]:
    """Parse ``source`` into ``document`` eagerly (no interleaving).

    Convenience for tests and for building iframe documents whose parsing
    the experiment doesn't need to interleave.  Returns the inserted
    elements in parse order.
    """
    parser = IncrementalHtmlParser(document, source)
    elements = []
    while True:
        unit = parser.next_unit()
        if unit is None:
            return elements
        elements.append(unit.commit(document))
