"""repro — reproduction of "Race Detection for Web Applications" (PLDI 2012).

The package implements WebRacer, the paper's dynamic race detector, together
with every substrate it needs: a mini-JavaScript engine (:mod:`repro.js`), a
DOM (:mod:`repro.dom`), an incremental HTML parser (:mod:`repro.html`), and
a single-threaded browser engine simulator with virtual time
(:mod:`repro.browser`).  The paper's contribution lives in
:mod:`repro.core` (happens-before relation, logical memory model, race
detector, filters) and the top-level facade :mod:`repro.webracer`.

Typical use::

    from repro import WebRacer

    racer = WebRacer(seed=7)
    report = racer.check_page(html_text)
    for race in report.races:
        print(race)
"""

from __future__ import annotations

__version__ = "1.0.0"

# Re-exported lazily to keep `import repro` light; the facade pulls in the
# whole engine.


def __getattr__(name):
    if name in ("WebRacer", "PageReport", "CorpusReport", "SiteResult"):
        from . import webracer

        return getattr(webracer, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["WebRacer", "PageReport", "CorpusReport", "SiteResult", "__version__"]
