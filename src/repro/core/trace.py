"""Execution traces.

A :class:`Trace` is the complete observable record of one page execution:
the operations that ran, every logical memory access they performed, and the
script crashes that were hidden from the user.  WebRacer's detector runs
*online* (it sees each access as it happens, like the paper's
instrumentation communicating directly with the detector rather than
generating a separate event trace — Section 5.2.1), but the trace is kept
anyway: the full-history detector, the filters, and the experiment harness
all consume it after the fact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .access import Access
from .locations import Location
from .operations import Operation, OperationFactory


class AccessIndex:
    """Per-``(op_id, location)`` access index over one trace.

    Built in one pass; answers the filters' "did this operation read the
    location before/write it after seq N?" questions in O(1) instead of
    rescanning the whole trace per race.  Lookups compare recorded ``seq``
    values, never list positions, so traces whose seqs are non-contiguous
    (reconstructed, sliced, or merged traces) are handled correctly.
    """

    def __init__(self, accesses: List[Access]):
        self.count = len(accesses)
        #: (op_id, location) -> sorted seqs of that operation's reads there.
        self._reads: Dict[Tuple[int, Location], List[int]] = {}
        #: (op_id, location) -> sorted seqs of that operation's writes there.
        self._writes: Dict[Tuple[int, Location], List[int]] = {}
        for access in accesses:
            bucket = self._reads if access.is_read else self._writes
            bucket.setdefault((access.op_id, access.location), []).append(access.seq)
        for seqs in self._reads.values():
            seqs.sort()
        for seqs in self._writes.values():
            seqs.sort()

    def read_before(self, op_id: int, location: Location, seq: int) -> bool:
        """Did ``op_id`` read ``location`` at a seq strictly before ``seq``?"""
        seqs = self._reads.get((op_id, location))
        return bool(seqs) and seqs[0] < seq

    def write_after(self, op_id: int, location: Location, seq: int) -> bool:
        """Did ``op_id`` write ``location`` at a seq strictly after ``seq``?"""
        seqs = self._writes.get((op_id, location))
        return bool(seqs) and seqs[-1] > seq


class Trace:
    """Operations + accesses + crashes of one execution."""

    def __init__(self, operations: Optional[OperationFactory] = None):
        self.operations = operations if operations is not None else OperationFactory()
        self.accesses: List[Access] = []
        self.crashes: List = []  # repro.js.errors.ScriptCrash values
        self._listeners: List[Callable[[Access], None]] = []
        self._access_index: Optional[AccessIndex] = None

    # ------------------------------------------------------------------
    # recording

    def subscribe(self, listener: Callable[[Access], None]) -> None:
        """Register an online consumer (e.g. the race detector)."""
        self._listeners.append(listener)

    def record(self, access: Access) -> Access:
        """Append an access, stamping its sequence index, and fan out."""
        access.seq = len(self.accesses)
        self.accesses.append(access)
        for listener in self._listeners:
            listener(access)
        return access

    def record_crash(self, crash) -> None:
        """Append a hidden-crash record."""
        self.crashes.append(crash)

    # ------------------------------------------------------------------
    # queries

    def access_index(self) -> AccessIndex:
        """The per-``(op_id, location)`` index, built lazily and cached.

        Rebuilt automatically when the access list has grown (or was
        reconstructed in place) since the last build.
        """
        index = self._access_index
        if index is None or index.count != len(self.accesses):
            index = AccessIndex(self.accesses)
            self._access_index = index
        return index

    def operation(self, op_id: int) -> Operation:
        """Look up an operation by id."""
        return self.operations.get(op_id)

    def accesses_to(self, location: Location) -> List[Access]:
        """All accesses to one location, in order."""
        return [access for access in self.accesses if access.location == location]

    def locations(self) -> List[Location]:
        """Distinct locations accessed, in first-touch order."""
        seen: Dict[Location, None] = {}
        for access in self.accesses:
            seen.setdefault(access.location)
        return list(seen.keys())

    def accesses_by_operation(self, op_id: int) -> List[Access]:
        """All accesses performed by one operation."""
        return [access for access in self.accesses if access.op_id == op_id]

    def __len__(self) -> int:
        return len(self.accesses)

    def summary(self) -> str:
        """One-line trace statistics."""
        return (
            f"Trace: {len(self.operations)} operations, "
            f"{len(self.accesses)} accesses, {len(self.crashes)} hidden crashes"
        )
