"""Logical memory locations (paper, Section 4).

The web platform has no natural machine-level notion of memory access:
operations touch JavaScript heap locations, browser-internal DOM structures,
or both.  The paper therefore defines *logical* locations, and this module
gives them concrete, hashable identities:

* :class:`VarLocation` / :class:`PropLocation` — the ``JSVar`` family
  (Section 4.1): closure cells and object properties (globals are properties
  of the global object).
* :class:`DomPropLocation` — DOM-node attributes mirrored into the JS heap
  (``value`` of an input, ``checked`` of a checkbox, ``parentNode`` /
  ``childNodes[i]`` writes on insertion/removal).  These are ``JSVar``
  locations in the paper's taxonomy but carry enough structure for the form
  filter (Section 5.3) to recognise form-field values.
* :class:`HElemLocation` — an HTML element in a document (Section 4.2).
  Identity is by ``id`` attribute when the element has one, so a failed
  ``getElementById("dw")`` and the later parsing of ``<div id=dw>`` collide
  on the same location — the HTML race of Fig. 3.
* :class:`CollectionLocation` — a document-level element collection
  (``document.forms``, ``document.images``, tag-name queries).  Reading the
  collection races with inserting a member.
* :class:`HandlerLocation` — ``Eloc`` (Section 4.3): a (target, event,
  handler) triple.  The handler component is either a function identity (so
  disjoint ``addEventListener`` handlers do not interfere) or the special
  :data:`ATTR_SLOT` marker for the element's ``on<event>`` attribute slot,
  whose read at dispatch time is the hidden racing access of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

#: Handler-slot marker for `on<event>` attributes (vs. addEventListener).
ATTR_SLOT = "<attr>"


@dataclass(frozen=True)
class VarLocation:
    """A closure/local variable cell (shared between operations)."""

    cell_id: int
    name: str = ""

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"var {self.name or '?'}#{self.cell_id}"


@dataclass(frozen=True)
class PropLocation:
    """A property of a JavaScript object (including globals)."""

    object_id: int
    name: str

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"prop #{self.object_id}.{self.name}"


#: Element identity: ("id", document_id, id_value) for elements with an
#: ``id`` attribute, ("node", node_id) otherwise.
ElementKey = Union[Tuple[str, int, str], Tuple[str, int]]


def id_key(document_id: int, element_id: str) -> ElementKey:
    """Identity of an element addressed by its ``id`` attribute."""
    return ("id", document_id, element_id)


def node_key(node_id: int) -> ElementKey:
    """Identity of an anonymous element (no ``id`` attribute)."""
    return ("node", node_id)


def describe_key(key: ElementKey) -> str:
    """Short printable form of an element key."""
    if key[0] == "id":
        return f"#{key[2]}"
    return f"<node {key[1]}>"


@dataclass(frozen=True)
class DomPropLocation:
    """A DOM-node attribute modelled as a JS heap write (Section 4.1)."""

    element: ElementKey
    name: str
    #: Tag of the owning element; lets the form filter check input/textarea.
    tag: str = ""

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{describe_key(self.element)}.{self.name}"

    @property
    def is_form_field_value(self) -> bool:
        """True for the locations the form filter retains (Section 5.3)."""
        return (
            self.name in ("value", "checked", "selectedIndex")
            and self.tag in ("input", "textarea", "select")
        )


@dataclass(frozen=True)
class HElemLocation:
    """An HTML element in a document (Section 4.2)."""

    element: ElementKey

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"element {describe_key(self.element)}"


@dataclass(frozen=True)
class CollectionLocation:
    """A document-level element collection (forms, images, tag buckets)."""

    document_id: int
    kind: str  # "tag", "name", "forms", "images", "links", "anchors", "scripts"
    key: str = ""

    def describe(self) -> str:
        """Human-readable one-line description."""
        if self.key:
            return f"document.{self.kind}[{self.key!r}]"
        return f"document.{self.kind}"


@dataclass(frozen=True)
class TimerSlotLocation:
    """A pending-timer slot (extension beyond the paper).

    Section 7 lists uninstrumented ``clearTimeout``/``clearInterval`` as a
    WebRacer gap: a clear may race with the execution of the handler it
    targets.  We model the pending timer as a logical location: creating
    the timer writes it, firing reads it, clearing writes it.  The rule-16/
    17 edges order creation before firing, so the only races exposed are
    the genuinely unordered clear-vs-fire pairs.
    """

    timer_id: int

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"timer slot #{self.timer_id}"


@dataclass(frozen=True)
class HandlerLocation:
    """``Eloc``: (target element, event type, handler) (Section 4.3)."""

    element: ElementKey
    event: str
    #: ``ATTR_SLOT`` for the on-attribute slot, else a handler identity
    #: (function object id as a string).
    handler: str = ATTR_SLOT

    def describe(self) -> str:
        """Human-readable one-line description."""
        where = describe_key(self.element)
        if self.handler == ATTR_SLOT:
            return f"{where}.on{self.event}"
        return f"({where}, {self.event}, handler {self.handler})"


Location = Union[
    VarLocation,
    PropLocation,
    DomPropLocation,
    HElemLocation,
    CollectionLocation,
    HandlerLocation,
    TimerSlotLocation,
]


def location_family(location: Location) -> str:
    """The paper's taxonomy bucket for a location.

    Returns ``"jsvar"``, ``"helem"``, or ``"eloc"`` — used when classifying
    races into the four types of Section 2 (variable / HTML / function /
    event dispatch).  Timer slots (our Section 7 extension) classify as
    ``jsvar``: a clear-vs-fire race is a variable-style race on browser
    state.
    """
    if isinstance(
        location, (VarLocation, PropLocation, DomPropLocation, TimerSlotLocation)
    ):
        return "jsvar"
    if isinstance(location, (HElemLocation, CollectionLocation)):
        return "helem"
    if isinstance(location, HandlerLocation):
        return "eloc"
    raise TypeError(f"not a location: {location!r}")
