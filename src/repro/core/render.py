"""Plain-text rendering of reports and evaluation tables.

Shared by the CLI, the examples, and the benchmark harness so the paper's
tables always print in one consistent format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .report import RACE_TYPES, RaceReport

#: Printable names for the race-type columns.
TYPE_TITLES = {
    "html": "HTML",
    "function": "Function",
    "variable": "Variable",
    "event_dispatch": "EventDisp",
}


def render_race_report(report: RaceReport, title: str = "") -> str:
    """Multi-line text for a classified race report."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not report.races:
        lines.append("  no races")
        return "\n".join(lines)
    for classified in report.races:
        marker = "!!" if classified.harmful else "  "
        lines.append(f" {marker} {classified.describe()}")
    counts = report.counts()
    harmful = report.harmful_counts()
    summary = ", ".join(
        f"{TYPE_TITLES[t]} {counts[t]} ({harmful[t]})"
        for t in RACE_TYPES
        if counts[t]
    )
    lines.append(f"  total: {report.total()} — {summary}")
    return "\n".join(lines)


def render_table1(
    rows: Mapping[str, Mapping[str, float]],
    paper: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """Text table for the Table-1 statistics dict (type -> mean/median/max)."""
    lines = [f"{'Race type':16s} {'Mean':>8s} {'Median':>8s} {'Max':>7s}"
             + ("   {:>7s} {:>7s} {:>7s}".format("p.Mean", "p.Med", "p.Max") if paper else "")]
    for race_type in list(RACE_TYPES) + ["all"]:
        row = rows[race_type]
        line = (
            f"{TYPE_TITLES.get(race_type, 'All'):16s} "
            f"{row['mean']:8.1f} {row['median']:8.1f} {row['max']:7.0f}"
        )
        if paper:
            p = paper[race_type]
            line += f"   {p['mean']:7.1f} {p['median']:7.1f} {p['max']:7.0f}"
        lines.append(line)
    return "\n".join(lines)


def render_table2(
    rows: Sequence[Mapping[str, Any]],
    totals: Optional[Mapping[str, Tuple[int, int]]] = None,
    paper_totals: Optional[Mapping[str, Tuple[int, int]]] = None,
) -> str:
    """Text table for per-site Table-2 rows (harmful in parentheses)."""

    def cell(value: Tuple[int, int]) -> str:
        count, harmful = value
        return f"{count} ({harmful})" if count else ""

    header = f"{'Website':20s}" + "".join(
        f"{TYPE_TITLES[t]:>14s}" for t in RACE_TYPES
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['site']:20s}"
            + "".join(f"{cell(row[t]):>14s}" for t in RACE_TYPES)
        )
    if totals is not None:
        lines.append("-" * len(header))
        lines.append(
            f"{'Total':20s}"
            + "".join(f"{cell(totals[t]):>14s}" for t in RACE_TYPES)
        )
    if paper_totals is not None:
        lines.append(
            f"{'Paper':20s}"
            + "".join(f"{cell(paper_totals[t]):>14s}" for t in RACE_TYPES)
        )
    return "\n".join(lines)


def render_crashes(crashes: Sequence[Any]) -> str:
    """Text list of hidden crashes."""
    if not crashes:
        return "  no hidden crashes"
    lines = [f"  {len(crashes)} hidden crash(es):"]
    for crash in crashes:
        lines.append(f"    op {crash.operation}: {crash.kind} — {crash.error!r}")
    return "\n".join(lines)
