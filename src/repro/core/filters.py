"""Post-processing race filters (paper, Section 5.3).

WebRacer supports pluggable filters that heuristically suppress races
unlikely to reflect application bugs.  The two filters the paper found
valuable on production sites:

* **Focus on form races** — keep only the *variable* races that involve the
  value of an HTML form field, and among those drop races where the writing
  operation read the field before writing it (such reads typically check
  whether the user already typed something, which makes the race harmless).

* **Focus on single-dispatch events** — keep only the *event dispatch*
  races on events that fire at most once (``load``, ``DOMContentLoaded``,
  ``readystatechange``, ...): miss the registration window for those and
  the handler never runs.  A lost ``click`` handler, by contrast, usually
  gets another chance.

HTML and function races pass through untouched — Table 2's HTML/function
columns are unchanged by filtering.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .access import Access
from .detector import Race
from .locations import DomPropLocation, HandlerLocation
from ..obs import NULL
from .report import (
    EVENT_DISPATCH,
    FUNCTION,
    HTML,
    SINGLE_DISPATCH_EVENTS,
    VARIABLE,
    classify_race,
)
from .trace import Trace

#: A filter takes (race, race_type, trace) and returns True to *keep* it.
RaceFilter = Callable[[Race, str, Trace], bool]


def form_race_filter(race: Race, race_type: str, trace: Trace) -> bool:
    """Keep variable races only when they endanger a form-field value."""
    if race_type != VARIABLE:
        return True
    location = race.location
    if not isinstance(location, DomPropLocation):
        return False
    if not location.is_form_field_value:
        return False
    # Enhancement from the paper: drop the race if the operation writing
    # the field value read it first (a "did the user type?" guard).  The
    # guard manifests on either side: as a write access whose operation
    # read the location earlier, or as the guard *read* itself racing with
    # the user's write (the same operation writes the location afterwards).
    for access in (race.prior, race.current):
        if access.is_write and _read_preceded_write(access, trace):
            return False
        if access.is_read and _write_follows_read(access, trace):
            return False
    return True


def _read_preceded_write(write: Access, trace: Trace) -> bool:
    """Did ``write``'s operation read the same location before writing?

    Answered from the trace's per-``(op_id, location)`` access index by
    ``seq`` comparison — O(1) per race instead of a full trace rescan, and
    immune to traces whose seqs are not contiguous list indices.
    """
    if write.detail.get("read_before_write"):
        return True
    return trace.access_index().read_before(write.op_id, write.location, write.seq)


def _write_follows_read(read: Access, trace: Trace) -> bool:
    """Does ``read``'s operation write the same location later on?"""
    return trace.access_index().write_after(read.op_id, read.location, read.seq)


def single_dispatch_filter(race: Race, race_type: str, trace: Trace) -> bool:
    """Keep event-dispatch races only for at-most-once events."""
    if race_type != EVENT_DISPATCH:
        return True
    location = race.location
    if not isinstance(location, HandlerLocation):
        return False
    return location.event in SINGLE_DISPATCH_EVENTS


DEFAULT_FILTERS: List[RaceFilter] = [form_race_filter, single_dispatch_filter]


class FilterChain:
    """Applies a list of filters and remembers what each one removed."""

    def __init__(self, filters: Optional[List[RaceFilter]] = None, obs=None):
        self.filters = list(filters) if filters is not None else list(DEFAULT_FILTERS)
        self.obs = obs if obs is not None else NULL
        self.removed: Dict[str, List[Race]] = {}

    def apply(self, races: List[Race], trace: Trace) -> List[Race]:
        """Run every filter over ``races``; returns the survivors."""
        self.removed = {}
        with self.obs.span("filters", cat="pipeline", races=len(races)):
            # Build the access index once up front; the per-race helpers then
            # answer from it in O(1) (quadratic rescans otherwise dominate on
            # race-heavy pages).
            with self.obs.span("filters.access_index", cat="pipeline"):
                trace.access_index()
            kept: List[Race] = []
            for race in races:
                race_type = classify_race(race)
                dropped_by = None
                for race_filter in self.filters:
                    if not race_filter(race, race_type, trace):
                        dropped_by = getattr(race_filter, "__name__", repr(race_filter))
                        break
                if dropped_by is None:
                    kept.append(race)
                else:
                    self.removed.setdefault(dropped_by, []).append(race)
            if self.obs.enabled:
                self.obs.count("filter.kept", len(kept))
                for name, dropped in self.removed.items():
                    self.obs.count("filter.removed." + name, len(dropped))
        return kept

    def removed_count(self) -> int:
        """How many races the chain removed in the last apply()."""
        return sum(len(races) for races in self.removed.values())

    def removed_counts(self) -> Dict[str, int]:
        """Per-filter suppression tally of the last apply().

        Every configured filter appears in the result, including those
        that removed nothing — so machine-readable corpus output always
        carries the full filter inventory.
        """
        counts = {
            getattr(race_filter, "__name__", repr(race_filter)): 0
            for race_filter in self.filters
        }
        for name, dropped in self.removed.items():
            counts[name] = len(dropped)
        return counts


def apply_default_filters(races: List[Race], trace: Trace) -> List[Race]:
    """Convenience: run the paper's two filters over ``races``."""
    return FilterChain().apply(races, trace)
