"""WebRacer's dynamic race detector (paper, Section 5.1).

The detector keeps exactly two cells of auxiliary state per logical
location — the last read and the last write — so it scales with the number
of locations, not the number of operations.  On each access it asks the
happens-before relation whether the stored operation *Can Happen
Concurrently* (CHC) with the current one and reports a race if so:

* on a **read**: race if CHC(LastWrite[l], op) — a read-write race;
* on a **write**: race if CHC(LastWrite[l], op) (write-write) or
  CHC(LastRead[l], op) (read-write).

The paper notes (and we reproduce in ``full_detector``/E10) that keeping
only the most recent access per slot can miss races.  Like the paper's
tool, at most one race is reported per location per run (footnote 13);
``report_all_per_location=True`` lifts that for experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .access import Access
from .hb.backend import HBBackend
from .locations import Location
from ..obs import NULL

READ_WRITE = "read-write"
WRITE_WRITE = "write-write"


@dataclass
class Race:
    """A reported race: two CHC-unordered accesses, one of them a write."""

    location: Location
    prior: Access
    current: Access
    kind: str  # READ_WRITE or WRITE_WRITE

    def op_pair(self) -> tuple:
        """The two racing operation ids as a tuple."""
        return (self.prior.op_id, self.current.op_id)

    def pair_key(self) -> tuple:
        """Order-independent identity ``(location, low op, high op)``.

        The key both the full-history deduplicator and the SHB
        prediction sweep match races on: the same conflicting pair
        reported in either access order compares equal.
        """
        a, b = self.prior.op_id, self.current.op_id
        return (self.location, min(a, b), max(a, b))

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (
            f"{self.kind} race on {self.location.describe()}: "
            f"op {self.prior.op_id} ({self.prior.kind}) vs "
            f"op {self.current.op_id} ({self.current.kind})"
        )

    def __repr__(self) -> str:
        return f"Race({self.describe()})"


class RaceDetector:
    """The constant-memory LastRead/LastWrite detector."""

    def __init__(
        self,
        hb: HBBackend,
        report_all_per_location: bool = False,
        obs=None,
        backend: str = "",
    ):
        self.hb = hb
        self.report_all_per_location = report_all_per_location
        self.obs = obs if obs is not None else NULL
        #: Counter names precomputed so the hot path never builds strings.
        self._query_counter = f"chc.query.{backend or 'graph'}"
        self.last_read: Dict[Location, Access] = {}
        self.last_write: Dict[Location, Access] = {}
        self.races: List[Race] = []
        self._reported_locations: Set[Location] = set()
        #: Number of CHC queries issued — the cost metric for E9.
        self.chc_queries = 0

    # ------------------------------------------------------------------

    def _chc(self, prior: Optional[Access], current: Access) -> bool:
        """CHC with ⊥ handling: an empty slot can never race."""
        if prior is None:
            return False
        if prior.op_id == current.op_id:
            # Same-operation pairs are settled without consulting the HB
            # relation, so they must not count toward the E9 query metric.
            return False
        self.chc_queries += 1
        concurrent = self.hb.concurrent(prior.op_id, current.op_id)
        if self.obs.enabled:
            self.obs.count(self._query_counter)
            self.obs.count("chc.hit" if concurrent else "chc.miss")
        return concurrent

    def _report(self, prior: Access, current: Access, kind: str) -> None:
        if (
            not self.report_all_per_location
            and current.location in self._reported_locations
        ):
            return
        self._reported_locations.add(current.location)
        if self.obs.enabled:
            self.obs.count("race.reported")
            self.obs.instant(
                "race", kind=kind, location=current.location.describe()
            )
        self.races.append(
            Race(location=current.location, prior=prior, current=current, kind=kind)
        )

    def on_access(self, access: Access) -> None:
        """Process one access (subscribe this to the trace)."""
        location = access.location
        if access.is_read:
            prior_write = self.last_write.get(location)
            if self._chc(prior_write, access):
                self._report(prior_write, access, READ_WRITE)
            self.last_read[location] = access
            return
        # write
        prior_write = self.last_write.get(location)
        prior_read = self.last_read.get(location)
        write_races = self._chc(prior_write, access)
        read_races = self._chc(prior_read, access)
        if write_races:
            self._report(prior_write, access, WRITE_WRITE)
        if read_races and (not write_races or self.report_all_per_location):
            self._report(prior_read, access, READ_WRITE)
        self.last_write[location] = access

    # ------------------------------------------------------------------

    def races_at(self, location: Location) -> List[Race]:
        """Races reported on one location."""
        return [race for race in self.races if race.location == location]

    def race_count(self) -> int:
        """Total races reported so far."""
        return len(self.races)
