"""Atomicity-violation (lost update) checking.

The paper's footnote 2: "Apart from dynamic race detection, our models are
also a suitable basis for other concurrency analyses, e.g., static race
detection or atomicity checking."  This module implements the dynamic
atomicity half on top of the same trace and happens-before relation.

The target pattern is the *lost update*: an operation ``A`` reads a
location, computes with the value, and writes it back — while an unordered
operation ``B`` writes the same location in between.  ``B``'s update is
silently overwritten even though each individual pair of accesses might
look benign.  The classic web instance is two scripts doing
``counter = counter + 1`` or appending to a shared list/string: under one
schedule both updates land, under another one vanishes — strictly more
information than the race report alone (which flags the location but not
the atomicity of the read-modify-write).

Detection is offline over a finished trace: for every location, find
triples ``read_A … write_B … write_A`` (in observed order) where ``B`` is
CHC-concurrent with ``A`` and the read/write of ``A`` bracket ``B``'s
write.  Bracketing uses the operation's access window, which is sound for
the web model because operations are atomic (never preempted) — any
*observed* interleaving ``r_A < w_B < w_A`` can only happen when segments
of ``A`` surround ``B``, i.e. when ``A`` was an inline-dispatch split; for
unsplit operations the interesting case is ``B`` unordered with ``A``
entirely, which we also report (the schedule could serialize ``B`` into
``A``'s read-to-write window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .access import Access
from .hb.graph import HBGraph
from .locations import Location
from .trace import Trace


@dataclass
class AtomicityViolation:
    """A potential lost update on ``location``."""

    location: Location
    #: The read-modify-write operation's read and write.
    read: Access
    write_back: Access
    #: The concurrent intervening write.
    intervening: Access

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (
            f"lost update on {self.location.describe()}: op "
            f"{self.read.op_id} read (seq {self.read.seq}) and wrote back "
            f"(seq {self.write_back.seq}) around concurrent write by op "
            f"{self.intervening.op_id} (seq {self.intervening.seq})"
        )

    def __repr__(self) -> str:
        return f"AtomicityViolation({self.describe()})"


class AtomicityChecker:
    """Offline lost-update detector over a trace + HB graph."""

    def __init__(self, trace: Trace, graph: HBGraph):
        self.trace = trace
        self.graph = graph
        self.violations: List[AtomicityViolation] = []

    def check(self) -> List[AtomicityViolation]:
        """Scan the trace; returns (and stores) all violations."""
        by_location: Dict[Location, List[Access]] = {}
        for access in self.trace.accesses:
            by_location.setdefault(access.location, []).append(access)
        self.violations = []
        reported: set = set()
        for location, accesses in by_location.items():
            self._check_location(location, accesses, reported)
        return self.violations

    def _check_location(
        self, location: Location, accesses: List[Access], reported: set
    ) -> None:
        # Read-modify-write windows per operation: first read -> last write
        # after it, within one operation.
        windows: List[Tuple[Access, Access]] = []
        first_read: Dict[int, Access] = {}
        last_write_after_read: Dict[int, Access] = {}
        for access in accesses:
            if access.is_read and access.op_id not in first_read:
                first_read[access.op_id] = access
            elif access.is_write and access.op_id in first_read:
                last_write_after_read[access.op_id] = access
        for op_id, read in first_read.items():
            write_back = last_write_after_read.get(op_id)
            if write_back is not None:
                windows.append((read, write_back))

        if not windows:
            return
        writes = [access for access in accesses if access.is_write]
        for read, write_back in windows:
            for write in writes:
                if write.op_id == read.op_id:
                    continue
                if not self.graph.concurrent(write.op_id, read.op_id):
                    continue
                key = (location, read.op_id, write.op_id)
                if key in reported:
                    continue
                reported.add(key)
                self.violations.append(
                    AtomicityViolation(
                        location=location,
                        read=read,
                        write_back=write_back,
                        intervening=write,
                    )
                )

    def observed_interleavings(self) -> List[AtomicityViolation]:
        """The subset where the intervening write *landed inside* the
        read-to-write window in the observed schedule — updates that were
        demonstrably lost in this very run."""
        return [
            violation
            for violation in self.violations
            if violation.read.seq
            < violation.intervening.seq
            < violation.write_back.seq
        ]


def check_atomicity(trace: Trace, graph: HBGraph) -> List[AtomicityViolation]:
    """Convenience wrapper: run the checker and return the violations."""
    return AtomicityChecker(trace, graph).check()
