"""Trace serialization and offline analysis.

WebRacer's instrumentation "communicates events directly to the race
detector, rather than generating a separate event trace" (Section 5.2.1) —
but a persisted trace enables workflows the in-browser tool cannot: capture
once on a machine that can run pages, analyse anywhere; diff traces across
page versions; re-run alternative detectors (full-history, vector-clock)
without re-executing; archive evidence for a bug report.

This module round-trips the complete observable record — operations, the
labeled happens-before edges, every logical access, and hidden crashes —
through plain JSON.  ``analyze`` replays a loaded trace through any
detector and rebuilds the standard classified report, producing *exactly*
the races the online run produced (a property the tests pin down).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .access import Access
from .detector import RaceDetector
from .filters import FilterChain
from .full_detector import FullHistoryDetector
from .hb.backend import make_backend
from .hb.graph import HBGraph
from .locations import (
    CollectionLocation,
    DomPropLocation,
    HandlerLocation,
    HElemLocation,
    Location,
    PropLocation,
    TimerSlotLocation,
    VarLocation,
)
from .report import RaceReport, build_report
from .trace import Trace

FORMAT_VERSION = 1

_LOCATION_TYPES = {
    "var": VarLocation,
    "prop": PropLocation,
    "domprop": DomPropLocation,
    "helem": HElemLocation,
    "collection": CollectionLocation,
    "handler": HandlerLocation,
}


def _location_to_json(location: Location) -> Dict[str, Any]:
    if isinstance(location, VarLocation):
        return {"t": "var", "cell_id": location.cell_id, "name": location.name}
    if isinstance(location, PropLocation):
        return {"t": "prop", "object_id": location.object_id, "name": location.name}
    if isinstance(location, DomPropLocation):
        return {
            "t": "domprop",
            "element": list(location.element),
            "name": location.name,
            "tag": location.tag,
        }
    if isinstance(location, HElemLocation):
        return {"t": "helem", "element": list(location.element)}
    if isinstance(location, CollectionLocation):
        return {
            "t": "collection",
            "document_id": location.document_id,
            "kind": location.kind,
            "key": location.key,
        }
    if isinstance(location, HandlerLocation):
        return {
            "t": "handler",
            "element": list(location.element),
            "event": location.event,
            "handler": location.handler,
        }
    if isinstance(location, TimerSlotLocation):
        return {"t": "timer", "timer_id": location.timer_id}
    raise TypeError(f"cannot serialize location {location!r}")


def _location_from_json(data: Dict[str, Any]) -> Location:
    kind = data["t"]
    if kind == "var":
        return VarLocation(cell_id=data["cell_id"], name=data["name"])
    if kind == "prop":
        return PropLocation(object_id=data["object_id"], name=data["name"])
    if kind == "domprop":
        return DomPropLocation(
            element=tuple(data["element"]), name=data["name"], tag=data["tag"]
        )
    if kind == "helem":
        return HElemLocation(element=tuple(data["element"]))
    if kind == "collection":
        return CollectionLocation(
            document_id=data["document_id"], kind=data["kind"], key=data["key"]
        )
    if kind == "handler":
        return HandlerLocation(
            element=tuple(data["element"]),
            event=data["event"],
            handler=data["handler"],
        )
    if kind == "timer":
        return TimerSlotLocation(timer_id=data["timer_id"])
    raise ValueError(f"unknown location type {kind!r}")


def trace_to_dict(trace: Trace, graph: HBGraph) -> Dict[str, Any]:
    """Serialize a trace + happens-before graph to a JSON-able dict."""
    return {
        "version": FORMAT_VERSION,
        "operations": [
            {
                "op_id": op.op_id,
                "kind": op.kind,
                "label": op.label,
                "meta": _jsonable_meta(op.meta),
                "parent": op.parent,
            }
            for op in trace.operations
        ],
        "edges": [
            {"src": edge.src, "dst": edge.dst, "rule": edge.rule}
            for edge in graph.edges
        ],
        "accesses": [
            {
                "kind": access.kind,
                "op_id": access.op_id,
                "location": _location_to_json(access.location),
                "is_call": access.is_call,
                "is_function_decl": access.is_function_decl,
                "detail": _jsonable_meta(access.detail),
            }
            for access in trace.accesses
        ],
        "crashes": [
            {
                "operation": crash.operation,
                "kind": crash.kind,
                "message": str(crash.error),
                "where": crash.where,
            }
            for crash in trace.crashes
        ],
    }


def _jsonable_meta(meta: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in meta.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, tuple):
            out[key] = list(value)
        else:
            out[key] = str(value)
    return out


class LoadedTrace:
    """A trace + graph reconstructed from serialized form."""

    def __init__(self, trace: Trace, graph: HBGraph, hb_backend: str = "graph"):
        self.trace = trace
        self.graph = graph
        self.hb_backend = hb_backend

    def detect(self, full_history: bool = False):
        """Replay all accesses through a fresh detector; returns it."""
        detector: Any
        if full_history:
            detector = FullHistoryDetector(self.graph)
        else:
            detector = RaceDetector(self.graph)
        for access in self.trace.accesses:
            detector.on_access(access)
        return detector

    def report(self, apply_filters: bool = True) -> RaceReport:
        """Full offline pipeline: detect, filter, classify, judge."""
        detector = self.detect()
        races = detector.races
        if apply_filters:
            races = FilterChain().apply(races, self.trace)
        return build_report(races, self.trace)

    def predict(self):
        """Offline SHB prediction over the loaded trace.

        Returns a :class:`~repro.core.hb.shb.ShbAnalysis`: the exact
        detector's races for this trace (``observed``) plus every
        conflicting rule-concurrent pair it missed, classified
        ``schedulable``/``conditional`` against the schedulable
        happens-before relation.  The loaded graph retains rule labels,
        so a captured trace predicts exactly what the live run would.
        """
        from .hb.shb import predict_races

        return predict_races(self.trace, self.graph, self.detect().races)

    def explain(self, apply_filters: bool = True):
        """Re-detect and attach HB evidence to every race.

        Returns ``(report, evidence_records)`` — the classified
        :class:`RaceReport` with a :class:`repro.explain.RaceEvidence`
        attached to each race, plus the record list in report order.  The
        loaded graph retains rule labels, so witness paths from a captured
        trace are as precise as from a live run.
        """
        from ..explain import attach_evidence

        report = self.report(apply_filters=apply_filters)
        records = attach_evidence(report, self.trace, self.graph)
        return report, records


def trace_from_dict(data: Dict[str, Any], hb_backend: str = "graph") -> LoadedTrace:
    """Reconstruct a :class:`LoadedTrace` from :func:`trace_to_dict` output.

    ``hb_backend`` selects the happens-before representation that answers
    CHC queries during re-detection (``graph``, ``chains``, ``crosscheck``
    or ``shb``), so captured traces can be re-checked under either
    representation.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    trace = Trace()
    for op_data in data["operations"]:
        trace.operations.operations[op_data["op_id"]] = _make_operation(op_data)
        trace.operations._next = max(trace.operations._next, op_data["op_id"] + 1)
    graph = make_backend(hb_backend, assert_forward=False)
    for op_id in trace.operations.operations:
        graph.add_operation(op_id)
    for edge in data["edges"]:
        graph.add_edge(edge["src"], edge["dst"], edge["rule"])
    for access_data in data["accesses"]:
        trace.record(
            Access(
                kind=access_data["kind"],
                op_id=access_data["op_id"],
                location=_location_from_json(access_data["location"]),
                is_call=access_data["is_call"],
                is_function_decl=access_data["is_function_decl"],
                detail=dict(access_data["detail"]),
            )
        )
    for crash_data in data["crashes"]:
        trace.record_crash(_LoadedCrash(crash_data))
    return LoadedTrace(trace, graph, hb_backend=hb_backend)


def _make_operation(op_data: Dict[str, Any]):
    from .operations import Operation

    return Operation(
        op_id=op_data["op_id"],
        kind=op_data["kind"],
        label=op_data["label"],
        meta=dict(op_data["meta"]),
        parent=op_data["parent"],
    )


class _LoadedCrash:
    """Crash record reconstructed from JSON (error text only)."""

    def __init__(self, data: Dict[str, Any]):
        self.operation = data["operation"]
        self.error = data["message"]
        self.where = data["where"]
        self._kind = data["kind"]

    @property
    def kind(self) -> str:
        """The recorded error class name."""
        return self._kind

    def __repr__(self) -> str:
        return f"LoadedCrash(op={self.operation}, {self._kind}: {self.error})"


def dump_trace(trace: Trace, graph: HBGraph, path: str) -> None:
    """Write a trace + graph to a JSON file."""
    with open(path, "w") as handle:
        json.dump(trace_to_dict(trace, graph), handle)


def load_trace(path: str, hb_backend: str = "graph") -> LoadedTrace:
    """Read a trace file written by :func:`dump_trace`."""
    with open(path) as handle:
        return trace_from_dict(json.load(handle), hb_backend=hb_backend)


def dumps_trace(trace: Trace, graph: HBGraph) -> str:
    """Serialize a trace + graph to a JSON string."""
    return json.dumps(trace_to_dict(trace, graph))


def loads_trace(text: str, hb_backend: str = "graph") -> LoadedTrace:
    """Load a trace from a JSON string."""
    return trace_from_dict(json.loads(text), hb_backend=hb_backend)
