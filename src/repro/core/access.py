"""Memory-access records.

An :class:`Access` is one read or write of a logical location by an
operation.  Accesses carry two classification flags used to tell the
paper's *function races* (Section 2.4) apart from ordinary variable races:

* ``is_call`` — the read resolved an identifier in order to invoke it;
* ``is_function_decl`` — the write was the hoisted initialization of a
  ``function f() {...}`` declaration (the paper models declarations as
  scope-initial writes, Section 4.1).

A race between an ``is_call`` read and an ``is_function_decl`` write (or a
CHC-unordered pair involving a declaration write) is a function race: the
invocation may happen before the declaring script is parsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from .locations import Location

READ = "read"
WRITE = "write"


@dataclass
class Access:
    """One memory access in the execution trace."""

    kind: str  # READ or WRITE
    op_id: int
    location: Location
    #: Monotone index in the global trace (assigned by the Trace).
    seq: int = -1
    is_call: bool = False
    is_function_decl: bool = False
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_read(self) -> bool:
        """True for read accesses."""
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        """True for write accesses."""
        return self.kind == WRITE

    def describe(self) -> str:
        """Human-readable one-line description."""
        extra = ""
        if self.is_call:
            extra = " [call]"
        elif self.is_function_decl:
            extra = " [function-decl]"
        return f"{self.kind} {self.location.describe()} by op {self.op_id}{extra}"

    def __repr__(self) -> str:
        return f"Access({self.describe()})"
